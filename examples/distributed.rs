//! The paper's three-host deployment (Table III), wired over real sockets:
//! the collector writes to the storage service over HTTP (line protocol),
//! and consumers query it over HTTP — nothing shares an address space with
//! the database.
//!
//! ```text
//! cargo run --release --example distributed
//! ```

use monster::collector::{Collector, CollectorConfig};
use monster::redfish::bmc::BmcConfig;
use monster::redfish::cluster::{ClusterConfig, SimulatedCluster};
use monster::scheduler::{Qmaster, QmasterConfig, WorkloadConfig, WorkloadGenerator};
use monster::tsdb::http_api::{router, RemoteDb};
use monster::tsdb::{Db, DbConfig};
use std::sync::Arc;

fn main() {
    const NODES: usize = 10;
    println!("== distributed deployment: storage served over HTTP ==\n");

    // --- storage host ---
    let db = Arc::new(Db::new(DbConfig::default()));
    let storage =
        monster::http::Server::spawn(0, router(Arc::clone(&db))).expect("bind storage service");
    println!("storage service listening on {}", storage.base_url());

    // --- collector host: talks to BMCs + qmaster locally, to storage
    //     remotely ---
    let cluster = SimulatedCluster::new(ClusterConfig {
        nodes: NODES,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..ClusterConfig::small(NODES, 3)
    });
    let qm_config = QmasterConfig { nodes: NODES, ..QmasterConfig::default() };
    let t0 = qm_config.start_time;
    let mut qm = Qmaster::new(qm_config);
    let mut gen = WorkloadGenerator::new(WorkloadConfig {
        mpi_users: 1,
        array_users: 1,
        serial_users: 3,
        submissions_per_user_day: 24.0,
        seed: 3,
    });
    gen.drive(&mut qm, t0, t0 + 3600);

    let mut collector = Collector::new(CollectorConfig::default());
    let mut remote = RemoteDb::connect(storage.addr());
    remote.ping().expect("storage reachable");

    let mut now = t0;
    let mut shipped = 0usize;
    for _ in 0..15 {
        now = now + 60;
        qm.run_until(now);
        cluster.step(60.0, |n| qm.utilization(n));
        let points = collector.collect_interval_direct(&cluster, &qm, now);
        shipped += points.len();
        remote.write_batch(&points).expect("remote write");
    }
    println!(
        "collector shipped {shipped} points over HTTP in 15 intervals \
         (server now holds {} points, {} series)",
        db.stats().points,
        db.stats().cardinality
    );

    // --- consumer host: queries over the same wire ---
    let (doc, cost) = remote
        .query_str(&format!(
            "SELECT max(Reading) FROM Power WHERE Label='NodePower' AND \
             time >= {} AND time < {} GROUP BY time(5m)",
            t0.as_secs(),
            now.as_secs()
        ))
        .expect("remote query");
    let series = doc.get("results").and_then(|r| r.as_array()).map(|a| a.len()).unwrap_or(0);
    println!(
        "\nremote query: {series} series; server-side cost: {} points scanned, {} bytes, {} blocks",
        cost.points, cost.bytes, cost.blocks
    );
    let (measurements, _) = remote.query_str("SHOW MEASUREMENTS").expect("meta query");
    println!(
        "measurements on the storage host: {}",
        measurements
            .get("results")
            .and_then(|r| r.as_array())
            .map(|a| a.iter().filter_map(|v| v.as_str()).collect::<Vec<_>>().join(", "))
            .unwrap_or_default()
    );
    println!("\nthree-host data flow verified: BMC/UGE → collector —HTTP→ storage ←HTTP— consumer");
}
