//! Replay a Standard Workload Format (SWF) trace through the full
//! monitoring pipeline: parse → schedule → collect → query.
//!
//! Pass a trace path as the first argument, or run without arguments to
//! use the embedded sample (a synthetic morning on a small cluster).
//!
//! ```text
//! cargo run --release --example trace_replay [path/to/trace.swf]
//! ```

use monster::analysis::timeline::build_timeline;
use monster::builder::{BuilderRequest, ExecMode};
use monster::redfish::bmc::BmcConfig;
use monster::scheduler::trace::Trace;
use monster::tsdb::Aggregation;
use monster::{Monster, MonsterConfig};

/// Eight synthetic jobs: a morning mix of MPI, array-ish and serial work.
const SAMPLE_SWF: &str = "\
; Version: 2.2
; Computer: sample cluster (32 nodes x 36 cores)
; Note: synthetic sample shipped with the MonSTer reproduction
1  0     12 7200  72  -1 -1 72  -1 -1 1 201 1 1 1 -1 -1 -1
2  300    5 3600  1   -1 -1 1   -1 -1 1 202 1 1 1 -1 -1 -1
3  600    0 1800  36  -1 -1 36  -1 -1 1 203 1 1 1 -1 -1 -1
4  900    0 5400  144 -1 -1 144 -1 -1 1 201 1 1 1 -1 -1 -1
5  1200   0 900   4   -1 -1 4   -1 -1 1 204 1 1 1 -1 -1 -1
6  1800   0 2700  8   -1 -1 8   -1 -1 1 202 1 1 1 -1 -1 -1
7  2400   0 10800 288 -1 -1 288 -1 -1 1 205 1 1 1 -1 -1 -1
8  3600   0 600   1   -1 -1 1   -1 -1 1 204 1 1 1 -1 -1 -1
";

fn main() {
    let trace = match std::env::args().nth(1) {
        Some(path) => Trace::load(&path).unwrap_or_else(|e| {
            eprintln!("failed to load {path}: {e}");
            std::process::exit(1);
        }),
        None => Trace::parse(SAMPLE_SWF).expect("embedded sample parses"),
    };
    println!("== SWF trace replay ==");
    println!(
        "trace: {} jobs, {:.1} core-hours\n",
        trace.jobs.len(),
        trace.core_seconds() as f64 / 3600.0
    );

    let mut m = Monster::new(MonsterConfig {
        nodes: 32,
        workload: None, // the trace is the workload
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..MonsterConfig::default()
    });
    let t0 = m.now();
    let horizon = 4 * 3600;
    let submitted = trace.drive(m.qmaster_mut(), t0, horizon);
    println!("replaying {submitted} submissions over {} h of simulated time...", horizon / 3600);

    // Collect through four hours.
    m.run_intervals_bulk((horizon / 60) as usize);

    println!("\nper-user outcome (Fig. 6 style):");
    println!("{:<8} {:>5} {:>6} {:>11}", "user", "jobs", "hosts", "mean wait");
    for tl in build_timeline(m.qmaster().jobs(), t0, t0 + horizon) {
        println!(
            "{:<8} {:>5} {:>6} {:>9.1} m",
            tl.user.as_str(),
            tl.job_count(),
            tl.hosts_used,
            tl.mean_wait_secs(m.now()) / 60.0
        );
    }

    // The monitoring view: cluster-wide power over the replay.
    let req = BuilderRequest::new(t0, m.now(), 900, Aggregation::Mean).expect("window");
    let out = m.builder_query(&req, ExecMode::Concurrent { workers: 8 }).expect("query");
    let mut per_window: std::collections::BTreeMap<i64, (f64, usize)> =
        std::collections::BTreeMap::new();
    if let Some(doc) = out.document.as_object() {
        for (_, node) in doc.iter() {
            if let Some(power) = node.get("power").and_then(|p| p.as_array()) {
                for p in power {
                    let t = p.get("time").and_then(|v| v.as_i64()).unwrap_or(0);
                    let w = p.get("value").and_then(|v| v.as_f64()).unwrap_or(0.0);
                    let e = per_window.entry(t).or_insert((0.0, 0));
                    e.0 += w;
                    e.1 += 1;
                }
            }
        }
    }
    println!("\ncluster power during the replay (15 m means):");
    let series: Vec<f64> = per_window.values().map(|(sum, _)| *sum / 1000.0).collect();
    let lo = series.iter().cloned().fold(f64::MAX, f64::min);
    let hi = series.iter().cloned().fold(f64::MIN, f64::max);
    let strip: String = series
        .iter()
        .map(|v| {
            let level = if hi > lo { ((v - lo) / (hi - lo) * 7.0) as u32 } else { 0 };
            char::from_u32(0x2581 + level).unwrap()
        })
        .collect();
    println!("  {strip}   ({lo:.1} .. {hi:.1} kW)");
    println!(
        "\nfinished {} / running {} / pending {} at the end of the window",
        m.qmaster().finished_jobs().len(),
        m.qmaster().running_jobs().len(),
        m.qmaster().pending_jobs().len()
    );
}
