//! The Telemetry Service upgrade (the paper's §VI future work): compare
//! 60-second polling against 10-second BMC-side telemetry sampling on a
//! workload with intra-interval load spikes.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use monster::builder::{BuilderRequest, ExecMode};
use monster::redfish::bmc::BmcConfig;
use monster::redfish::telemetry::{TelemetryConfig, TelemetryService};
use monster::scheduler::{JobShape, JobSpec};
use monster::tsdb::Aggregation;
use monster::util::UserName;
use monster::{Monster, MonsterConfig};

/// Submit a bursty workload: short 20-second jobs every other minute, which
/// per-interval polling can never catch in the act.
fn bursty_jobs(m: &mut Monster, minutes: i64) {
    let t0 = m.now();
    for k in 0..(minutes / 2) {
        m.qmaster_mut().submit_at(
            t0 + k * 120 + 20,
            JobSpec {
                user: UserName::new("bursty"),
                name: format!("burst{k}.sh"),
                shape: JobShape::Serial { slots: 36 },
                runtime_secs: 20,
                priority: 0,
                mem_per_slot_gib: 1.0,
            },
        );
    }
}

fn deployment() -> Monster {
    Monster::new(MonsterConfig {
        nodes: 4,
        workload: None,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..MonsterConfig::default()
    })
}

fn power_series(m: &Monster, minutes: i64) -> Vec<f64> {
    let req = BuilderRequest::new(m.now() - minutes * 60, m.now() + 60, 10, Aggregation::Max)
        .expect("request");
    let out = m.builder_query(&req, ExecMode::Sequential).expect("query");
    out.document
        .get("10.101.1.1")
        .and_then(|n| n.get("power"))
        .and_then(|p| p.as_array())
        .map(|a| a.iter().filter_map(|p| p.get("value").and_then(|v| v.as_f64())).collect())
        .unwrap_or_default()
}

fn sparkline(series: &[f64]) -> String {
    let lo = series.iter().cloned().fold(f64::MAX, f64::min);
    let hi = series.iter().cloned().fold(f64::MIN, f64::max);
    series
        .iter()
        .map(|v| {
            let level = if hi > lo { ((v - lo) / (hi - lo) * 7.0) as u32 } else { 0 };
            char::from_u32(0x2581 + level).unwrap()
        })
        .collect()
}

fn main() {
    const MINUTES: i64 = 20;
    println!("== Telemetry Service vs per-interval polling ==");
    println!("(bursty workload: 20 s full-load jobs every other minute)\n");

    // A: classic 60 s polling.
    let mut poll = deployment();
    bursty_jobs(&mut poll, MINUTES);
    poll.run_intervals(MINUTES as usize);

    // B: telemetry at 10 s.
    let mut tele = deployment();
    bursty_jobs(&mut tele, MINUTES);
    let mut service = TelemetryService::new(TelemetryConfig::default());
    tele.run_intervals_telemetry(&mut service, MINUTES as usize).expect("telemetry run");

    let p_poll = power_series(&poll, MINUTES);
    let p_tele = power_series(&tele, MINUTES);
    let spread = |s: &[f64]| {
        let lo = s.iter().cloned().fold(f64::MAX, f64::min);
        let hi = s.iter().cloned().fold(f64::MIN, f64::max);
        hi - lo
    };

    println!(
        "polling   (60 s): {:3} samples, power swing observed {:6.1} W",
        p_poll.len(),
        spread(&p_poll)
    );
    println!("  {}", sparkline(&p_poll));
    println!(
        "telemetry (10 s): {:3} samples, power swing observed {:6.1} W",
        p_tele.len(),
        spread(&p_tele)
    );
    println!("  {}", sparkline(&p_tele));

    println!(
        "\nresolution gain: {}x more samples per node for the same one-request-per-interval cost",
        if p_poll.is_empty() { 0 } else { p_tele.len() / p_poll.len().max(1) }
    );
    println!("the 20-second bursts are invisible at 60 s and obvious at 10 s.");

    // Streaming detectors watch every reading at ingest, and the alert
    // engine turns their transitions into paging decisions. Inject a
    // fault no workload explains — +450 W on one node's power rail, past
    // the slew bound — and let the pipeline catch it in the act.
    let victim = poll.node_ids()[1];
    poll.cluster().set_power_offset(victim, 450.0).expect("known node");
    for _ in 0..4 {
        poll.run_interval().expect("interval");
    }

    // Seal the polled history and replay the dashboard aggregation once:
    // sealed blocks fully inside the window are answered from their
    // zone-map summaries instead of being decompressed, which shows up in
    // the blocks_decoded / blocks_summarized counters below.
    poll.db().compact();
    let window = MINUTES * 60;
    let agg =
        monster::tsdb::Query::select("Power", "Reading", poll.now() - window, poll.now() + 60)
            .aggregate(Aggregation::Mean)
            .group_by_time(86_400);
    poll.db().query(&agg).expect("sealed aggregation");

    // The polling run went through the instrumented wire path, so the
    // self-monitoring registry saw every sweep. This is the same exposition
    // the Metrics Builder serves at `GET /metrics`.
    println!("\n== Self-monitoring (monster-obs) ==");
    let text = monster::obs::global().text_exposition();
    for name in [
        "monster_redfish_sweeps_total",
        "monster_redfish_requests_total",
        "monster_redfish_retries_total",
        "monster_collector_points_total",
        "monster_tsdb_points_written_total",
        "monster_tsdb_blocks_decoded_total",
        "monster_tsdb_blocks_summarized_total",
    ] {
        println!("{name:36} {}", monster::obs::sample(&text, name).unwrap_or(0.0));
    }
    let sweep_latency = monster::obs::histo("monster_redfish_request_seconds");
    if let Some(mean) = sweep_latency.mean_secs() {
        println!("mean simulated request latency          {mean:.2}s");
    }

    // The detectors flagged the shorted rail above; the engine graded and
    // deduplicated it. `GET /v1/alerts` serves the same list.
    println!("\n== Alerting (GET /v1/alerts) ==");
    for name in ["monster_anomaly_events_total", "monster_alert_transitions_total"] {
        println!("{name:36} {}", monster::obs::sample(&text, name).unwrap_or(0.0));
    }
    if let Some(engine) = poll.alerts() {
        for alert in engine.active() {
            println!("  [{:8}] {}", alert.severity.to_string(), alert.description);
        }
    }

    // The storage engine's shard locks report how contended they were:
    // wait = time spent queueing for a lock, hold = critical-section
    // length. Both are recorded *after* the guard drops, so the
    // instrumentation never lengthens the critical sections it measures.
    let wait = monster::obs::histo("monster_tsdb_lock_wait_seconds");
    let hold = monster::obs::histo("monster_tsdb_lock_hold_seconds");
    println!(
        "shard-lock acquisitions                 {} (wait mean {:.1} us, hold mean {:.1} us)",
        wait.count(),
        wait.mean_secs().unwrap_or(0.0) * 1e6,
        hold.mean_secs().unwrap_or(0.0) * 1e6,
    );
    // Per-shard occupancy gauges show where the written points landed.
    for line in text.lines().filter(|l| l.starts_with("monster_tsdb_shard_points{")) {
        println!("  {line}");
    }

    // Batched ingest now rides a WriteStager: points accumulate in
    // per-(shard, series, field) run buffers outside any lock, then
    // publish whole runs under a short shard-lock critical section. The
    // depth gauge counts points currently staged (zero again after every
    // flush); the flush histogram records how many points each publish
    // moved in one lock acquisition.
    {
        let mut stager = poll.db().stager();
        let t0 = poll.now();
        let demo: Vec<monster::tsdb::DataPoint> = (0..240)
            .map(|i| {
                monster::tsdb::DataPoint::new("StagingDemo", t0 + i)
                    .tag("NodeId", "10.101.1.1")
                    .field_f64("Reading", 250.0 + (i % 40) as f64)
            })
            .collect();
        for chunk in demo.chunks(60) {
            stager.stage_batch(chunk).expect("stage");
        }
        let depth = monster::obs::gauge("monster_tsdb_staging_depth");
        println!("\n== Ingest staging (WriteStager) ==");
        println!("staged before flush                     {} points", depth.get());
        stager.flush().expect("flush");
        println!("staged after flush                      {} points", depth.get());
    }
    let text = monster::obs::global().text_exposition();
    for name in ["monster_tsdb_staging_flushes_total", "monster_tsdb_staging_flush_points_sum"] {
        println!("{name:40} {}", monster::obs::sample(&text, name).unwrap_or(0.0));
    }

    // Latency histograms carry OpenMetrics exemplars: the bucket line
    // remembers the trace id of the last observation that landed in it,
    // so a dashboard spike links straight to the sweep or request that
    // caused it (`GET /debug/trace` exports the spans).
    println!("\n== Exemplars (histogram bucket -> trace) ==");
    for line in text
        .lines()
        .filter(|l| l.starts_with("monster_sweep_duration_seconds_bucket") && l.contains(" # "))
        .take(2)
    {
        println!("  {line}");
    }

    // The freshness SLO engine watches per-(node, metric) ingest
    // watermarks; `GET /debug/pipeline` serves this same report.
    let report = monster::obs::freshness().report();
    let f = |path: &[&str]| {
        let mut v = Some(&report);
        for k in path {
            v = v.and_then(|v| v.get(k));
        }
        v.and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
    };
    println!("\n== Freshness SLO (/debug/pipeline) ==");
    println!("  tracked series     {}", f(&["tracked_series"]));
    println!("  attainment         {:.4} (target {})", f(&["attainment"]), f(&["slo", "target"]));
    println!("  error budget used  {:.4}", f(&["error_budget_used"]));
    println!(
        "  staleness p50/p99  {}s / {}s",
        f(&["staleness_secs", "p50"]),
        f(&["staleness_secs", "p99"])
    );
    // The serving layer in front of the Metrics Builder: a watermark-
    // validity response cache (closed historical windows never expire),
    // request coalescing, and cost-based admission. Drive one dashboard
    // URL through miss -> hit, a malformed URL through the negative
    // cache, and an expensive request into a 429 — every outcome lands
    // in the monster_builder_cache_* counters below.
    {
        use monster::builder::service::{router, ServiceConfig};
        use monster::builder::AdmissionConfig;
        use monster::http::Request;
        let serving = router(poll.db().clone(), poll.node_ids().to_vec(), ServiceConfig::default());
        let url = "/v1/metrics?start=1970-01-01T00:05:00Z&end=1970-01-01T00:20:00Z&interval=5m";
        println!("\n== Serving layer (cache / coalescing / admission) ==");
        for _ in 0..3 {
            let resp = serving.dispatch(&Request::get(url));
            println!(
                "  GET /v1/metrics -> {} (X-Cache: {})",
                resp.status.0,
                resp.headers.get("X-Cache").unwrap_or("-")
            );
        }
        // Deterministic 400s are cached too (negative cache).
        let bad =
            "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&aggregation=median";
        for _ in 0..2 {
            serving.dispatch(&Request::get(bad));
        }
        // An admission controller with a zero budget rejects everything
        // non-trivial with 429 + Retry-After.
        let strict = router(
            poll.db().clone(),
            poll.node_ids().to_vec(),
            ServiceConfig {
                admission: AdmissionConfig {
                    cheap_secs: 0.0,
                    reject_secs: 0.0,
                    ..AdmissionConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let rejected = strict.dispatch(&Request::get(url));
        println!(
            "  rogue tenant    -> {} (Retry-After: {}s)",
            rejected.status.0,
            rejected.headers.get("Retry-After").unwrap_or("-")
        );
    }
    let text = monster::obs::global().text_exposition();
    for name in [
        "monster_builder_cache_hits_total",
        "monster_builder_cache_misses_total",
        "monster_builder_cache_coalesced_total",
        "monster_builder_cache_evictions_total",
        "monster_builder_cache_admission_rejected_total",
        "monster_builder_inflight_queries",
    ] {
        println!("{name:46} {}", monster::obs::sample(&text, name).unwrap_or(0.0));
    }

    // The query flight recorder: every /v1/metrics request leaves one
    // wide event in a pre-allocated lock-free ring — disposition,
    // per-stage wall+vtime timings, estimated-vs-actual cost, admission
    // math. `?explain=true` returns the record inline with the payload
    // byte-identical (base64 in the envelope); `GET /debug/requests`
    // serves the recent ring plus the pinned slow-query log.
    {
        use monster::builder::service::{router, QlogConfig, ServiceConfig};
        use monster::http::Request;
        let observed = router(
            poll.db().clone(),
            poll.node_ids().to_vec(),
            ServiceConfig {
                qlog: QlogConfig { slow_ms: 5.0, ..QlogConfig::default() },
                ..ServiceConfig::default()
            },
        );
        let url = "/v1/metrics?start=1970-01-01T00:05:00Z&end=1970-01-01T00:20:00Z&interval=5m";
        println!("\n== Query flight recorder (?explain=true, /debug/requests) ==");
        let num = |v: &monster::json::Value, k: &str| {
            v.get(k).and_then(|x| x.as_f64()).unwrap_or(f64::NAN)
        };
        // First sighting executes: the explain envelope carries the
        // estimate the admission controller priced next to what the
        // scans actually cost.
        let miss = observed.dispatch(&Request::get(&format!("{url}&explain=true")));
        let envelope = miss.json_body().expect("explain envelope");
        let record = envelope.get("explain").expect("record in envelope");
        println!(
            "  explain(first): disposition={} modelled {:.2} ms, \
             actual/estimated seconds {:.3}x",
            record.get("disposition").unwrap().as_str().unwrap_or("-"),
            num(record.get("vtime_ms").unwrap(), "total"),
            record.get("cost").map_or(f64::NAN, |c| num(c.get("ratio").unwrap(), "seconds")),
        );
        // The repeat is a cache hit; both land in the ring.
        observed.dispatch(&Request::get(url));
        let debug = observed.dispatch(&Request::get("/debug/requests?limit=4"));
        let doc = debug.json_body().expect("debug requests");
        for r in doc.get("requests").unwrap().as_array().unwrap() {
            println!(
                "  [{:9}] {} wall {:.3} ms  {}",
                r.get("disposition").unwrap().as_str().unwrap_or("-"),
                r.get("status").unwrap().as_i64().unwrap_or(0),
                num(r.get("wall_ms").unwrap(), "total"),
                r.get("url").unwrap().as_str().unwrap_or("-"),
            );
        }
        // The executed miss crossed the 5 ms modelled threshold above, so
        // it is also pinned in the slow log, safe from ring recycling.
        let slow = doc.get("slow").unwrap().as_array().unwrap();
        println!("  slow log: {} record(s) pinned over the 5 ms modelled threshold", slow.len());
    }
    let text = monster::obs::global().text_exposition();
    for name in [
        "monster_builder_qlog_records_total",
        "monster_builder_slow_queries_total",
        "monster_builder_cost_estimate_ratio{stage=\"seconds\"}_count",
    ] {
        println!("{name:52} {}", monster::obs::sample(&text, name).unwrap_or(0.0));
    }

    println!("\n(serve these live: `deployment.serve_api(port)` then GET /metrics,");
    println!(" /debug/trace, /debug/requests, /debug/pipeline)");
}
