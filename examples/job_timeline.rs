//! The Fig. 6 job-scheduling timeline: one simulated day of Quanah-style
//! workload, rendered per user as waiting/running bars.
//!
//! ```text
//! cargo run --release --example job_timeline
//! ```

use monster::analysis::timeline::build_timeline;
use monster::scheduler::{Qmaster, QmasterConfig, WorkloadConfig, WorkloadGenerator};

fn main() {
    // A day on a 128-node cluster with the paper-cast user population.
    let cfg = QmasterConfig { nodes: 128, ..QmasterConfig::default() };
    let t0 = cfg.start_time;
    let t_end = t0 + 86_400;
    let mut qm = Qmaster::new(cfg);
    let mut gen = WorkloadGenerator::new(WorkloadConfig::default());
    let submitted = gen.drive(&mut qm, t0, t_end);
    qm.run_until(t_end);

    println!("== 1-day job scheduling timeline (Fig. 6) ==");
    println!(
        "{} jobs submitted; {} finished, {} running, {} still pending at day end\n",
        submitted,
        qm.finished_jobs().len(),
        qm.running_jobs().len(),
        qm.pending_jobs().len()
    );

    let timelines = build_timeline(qm.jobs(), t0, t_end);

    // Render each user as a row: #jobs, #hosts, and a 96-column day strip
    // where '.'=idle, '-'=waiting, '#'=running (15-minute resolution).
    const COLS: i64 = 96;
    let bucket = 86_400 / COLS;
    println!(
        "{:10} {:>5} {:>6}  timeline (24 h, '-' waiting, '#' running)",
        "user", "jobs", "hosts"
    );
    for tl in &timelines {
        let mut strip = vec![b'.'; COLS as usize];
        for bar in &tl.bars {
            let submit = bar.submit - t0;
            let start = bar.start.map(|s| s - t0).unwrap_or(86_400);
            let end = bar.end.map(|e| e - t0).unwrap_or(86_400);
            for c in 0..COLS {
                let bin_start = c * bucket;
                let bin_end = bin_start + bucket;
                let cell = &mut strip[c as usize];
                if start < bin_end && bin_start < end && *cell != b'#' {
                    *cell = b'#';
                } else if submit < bin_end && bin_start < start && *cell == b'.' {
                    *cell = b'-';
                }
            }
        }
        println!(
            "{:10} {:>5} {:>6}  {}",
            tl.user.as_str(),
            tl.job_count(),
            tl.hosts_used,
            String::from_utf8(strip).unwrap()
        );
    }

    // The Fig. 6 observations, recomputed: the MPI user with few jobs on
    // many hosts vs the array user with many jobs on few hosts.
    println!();
    if let Some(mpi) = timelines.iter().find(|t| t.user.as_str() == "jieyao") {
        println!(
            "jieyao (MPI):    {} jobs across {} hosts — few big allocations",
            mpi.job_count(),
            mpi.hosts_used
        );
    }
    if let Some(arr) = timelines.iter().find(|t| t.user.as_str() == "abdumal") {
        println!(
            "abdumal (array): {} jobs across {} hosts — many tasks sharing nodes",
            arr.job_count(),
            arr.hosts_used
        );
    }
    let horizon = t_end;
    let mut waits: Vec<(f64, &str)> =
        timelines.iter().map(|t| (t.mean_wait_secs(horizon), t.user.as_str())).collect();
    waits.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("\nlongest mean queue waits:");
    for (w, u) in waits.iter().take(5) {
        println!("  {u:10} {:.0} min", w / 60.0);
    }
}
