//! Quickstart: stand up a small MonSTer deployment, collect a few
//! intervals, and query it back through the Metrics Builder.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use monster::builder::{BuilderRequest, ExecMode};
use monster::redfish::bmc::BmcConfig;
use monster::tsdb::Aggregation;
use monster::{Monster, MonsterConfig};

fn main() {
    // A 16-node deployment with the default synthetic workload. The BMCs
    // keep their stochastic failure behaviour — watch the retry counters.
    let mut deployment = Monster::new(MonsterConfig {
        nodes: 16,
        bmc: BmcConfig::default(),
        ..MonsterConfig::default()
    });

    println!("== MonSTer quickstart: 16 nodes, 60 s interval ==\n");

    // Ten collection intervals through the full Redfish path.
    for summary in deployment.run_intervals(10) {
        println!(
            "interval @ {}  points={:5}  sweep={}  bmc_failures={}",
            summary.time, summary.points, summary.collection_time, summary.bmc_failures,
        );
    }

    let stats = deployment.db().stats();
    println!(
        "\nstored: {} points, {} series, {} measurements, {} raw wire bytes, {} at rest",
        stats.points,
        stats.cardinality,
        stats.measurements,
        monster::util::bytesize::ByteSize(stats.wire_bytes as u64),
        monster::util::bytesize::ByteSize(stats.encoded_bytes as u64),
    );

    // The paper's §III-D example request: a day window, 5-minute max
    // downsampling — scaled here to the 10 minutes we collected.
    let t0 = deployment.now() - 600;
    let req =
        BuilderRequest::new(t0, deployment.now(), 120, Aggregation::Max).expect("valid request");
    let outcome =
        deployment.builder_query(&req, ExecMode::Concurrent { workers: 8 }).expect("query");
    println!(
        "\nMetrics Builder: {} points in the response document, simulated query+processing {}",
        outcome.points_out,
        outcome.query_processing_time(),
    );

    // Show one node's power series — the Fig. 4 data, queried back.
    let node = deployment.node_ids()[0];
    if let Some(power) = outcome
        .document
        .get(&node.bmc_addr())
        .and_then(|n| n.get("power"))
        .and_then(|p| p.as_array())
    {
        println!("\npower(max, 2m windows) for {}:", node.bmc_addr());
        for point in power {
            let t = point.get("time").and_then(|v| v.as_i64()).unwrap_or(0);
            let w = point.get("value").and_then(|v| v.as_f64()).unwrap_or(0.0);
            println!("  {}  {:6.1} W", monster::util::EpochSecs::new(t), w);
        }
    }

    // And the Fig. 5 data: which jobs were on that node.
    let (rs, _) = deployment
        .db()
        .query_str(&format!(
            "SELECT JobList FROM NodeJobs WHERE NodeId='{}' AND time >= {} AND time < {}",
            node.bmc_addr(),
            t0.as_secs(),
            deployment.now().as_secs()
        ))
        .expect("job query");
    if let Some(series) = rs.series.first() {
        if let Some((t, v)) = series.points.last() {
            println!("\njobs on {} at {}: {}", node.bmc_addr(), t, v);
        }
    }
}
