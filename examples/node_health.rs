//! Node-health analytics: the Fig. 7/8/9 pipeline.
//!
//! Runs a loaded cluster, clusters the fleet's nine-dimensional health
//! profiles with (modified) k-means into the paper's seven host groups,
//! prints radar profiles for a normal and a hot node, and renders one
//! node's historical status trend with cluster bands.
//!
//! ```text
//! cargo run --release --example node_health
//! ```

use monster::analysis::kmeans::{KMeans, KMeansConfig};
use monster::analysis::radar::RadarProfile;
use monster::analysis::trend::NodeTrend;
use monster::redfish::bmc::BmcConfig;
use monster::util::EpochSecs;
use monster::{Monster, MonsterConfig};

fn nine_metrics(m: &Monster, node: monster::util::NodeId) -> [f64; 9] {
    let s = m.cluster().sensors(node).expect("node");
    let mem =
        m.qmaster().load_report(node).map(|r| r.mem_used_gib / r.mem_total_gib).unwrap_or(0.0);
    [
        s.cpu_temps[0],
        s.cpu_temps[1],
        s.inlet,
        s.fans[0],
        s.fans[1],
        s.fans[2],
        s.fans[3],
        s.power,
        mem,
    ]
}

fn main() {
    let mut m = Monster::new(MonsterConfig {
        nodes: 64,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..MonsterConfig::default()
    });

    // Warm the cluster up: 3 hours of workload, collecting trends as we go.
    println!("== node health analytics (64 nodes, 3 h of workload) ==\n");
    let tracked = m.node_ids()[30]; // an arbitrary node to trend, "1-31"-ish
    let mut history: Vec<(EpochSecs, [f64; 9])> = Vec::new();
    for _ in 0..36 {
        m.run_intervals_bulk(5); // 5-minute strides
        history.push((m.now(), nine_metrics(&m, tracked)));
    }

    // Fleet snapshot → k-means with the paper's k = 7.
    let snapshot: Vec<Vec<f64>> =
        m.node_ids().iter().map(|&n| nine_metrics(&m, n).to_vec()).collect();
    let km = KMeans::fit(&snapshot, &KMeansConfig { k: 7, ..KMeansConfig::default() });
    println!("host groups (k=7, like Fig. 9):");
    let sizes = km.cluster_sizes();
    for (g, size) in sizes.iter().enumerate() {
        println!("  group {}: {:3} nodes", g + 1, size);
    }
    let largest = sizes.iter().enumerate().max_by_key(|(_, &s)| s).unwrap().0;
    println!("  → group {} is the 'blue cluster': the normal operating state\n", largest + 1);

    // Radar profiles: the coolest and hottest nodes by CPU temperature.
    let by_temp = |i: usize| snapshot[i][0].max(snapshot[i][1]);
    let coolest =
        (0..snapshot.len()).min_by(|&a, &b| by_temp(a).partial_cmp(&by_temp(b)).unwrap()).unwrap();
    let hottest =
        (0..snapshot.len()).max_by(|&a, &b| by_temp(a).partial_cmp(&by_temp(b)).unwrap()).unwrap();
    for (title, idx) in [("normal status", coolest), ("hottest node", hottest)] {
        let node = m.node_ids()[idx];
        let raw: [f64; 9] = nine_metrics(&m, node);
        let profile = RadarProfile::new(node.label(), raw);
        println!("radar: {} ({title}), critical={}", node.label(), profile.is_critical());
        for (name, (r, n)) in monster::analysis::METRIC_NAMES
            .iter()
            .zip(profile.raw.iter().zip(profile.normalized.iter()))
        {
            let bar = "#".repeat((n * 30.0) as usize);
            println!("  {name:12} {r:9.1}  |{bar}");
        }
        println!();
    }

    // Fig. 8: historical trend of the tracked node with cluster bands.
    let trend = NodeTrend::build(tracked.label(), &history, &km);
    println!("historical trend for node {} (cluster bands):", tracked.label());
    for (start, end, cluster) in trend.bands() {
        println!("  {} .. {}  group {}", start, end, cluster + 1);
    }
    let power = trend.metric_series(7);
    let max_power = power.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let min_power = power.iter().map(|(_, v)| *v).fold(f64::MAX, f64::min);
    println!(
        "\npower on {}: min {:.0} W, max {:.0} W over {} samples",
        tracked.label(),
        min_power,
        max_power,
        power.len()
    );
}
