//! End-to-end deployment over real sockets: Redfish gateway + Metrics
//! Builder API, exercised by an HTTP consumer — the full Fig. 1 data flow
//! on localhost.
//!
//! ```text
//! cargo run --release --example api_server
//! ```

use monster::http::{Client, Request};
use monster::redfish::bmc::BmcConfig;
use monster::redfish::gateway;
use monster::{Monster, MonsterConfig};
use std::sync::Arc;

fn main() {
    let mut m = Monster::new(MonsterConfig {
        nodes: 12,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..MonsterConfig::default()
    });
    println!("== end-to-end HTTP deployment (12 nodes) ==\n");
    m.run_intervals_bulk(60); // one hour of history

    // 1. Redfish gateway: the BMC fleet served over TCP.
    let cluster = Arc::new(monster::redfish::SimulatedCluster::new(
        monster::redfish::cluster::ClusterConfig {
            nodes: 12,
            bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
            ..monster::redfish::cluster::ClusterConfig::small(12, 99)
        },
    ));
    let bmc_server = gateway::router(Arc::clone(&cluster));
    let bmc_server = monster::http::Server::spawn(0, bmc_server).expect("bind BMC gateway");
    println!("Redfish gateway listening on {}", bmc_server.base_url());

    let client = Client::new();
    let resp = client
        .send_ok(
            bmc_server.addr(),
            &Request::get("/nodes/10.101.1.1/redfish/v1/Chassis/System.Embedded.1/Thermal/"),
        )
        .expect("thermal fetch");
    let thermal = resp.json_body().expect("json");
    let cpu1 =
        thermal.pointer("Temperatures/0/ReadingCelsius").and_then(|v| v.as_f64()).unwrap_or(0.0);
    println!(
        "GET .../Thermal/ → CPU1 {:.1} °C (simulated BMC latency {} ms)\n",
        cpu1,
        resp.headers.get("X-Simulated-Latency-Ms").unwrap_or("?")
    );

    // 2. Metrics Builder API over TCP.
    let api = m.serve_api(0).expect("bind builder API");
    println!("Metrics Builder API listening on {}", api.base_url());

    let start = (m.now() - 3600).to_rfc3339();
    let end = m.now().to_rfc3339();
    let url =
        format!("/v1/metrics?start={start}&end={end}&interval=5m&aggregation=max&compress=true");
    let resp = client.send_ok(api.addr(), &Request::get(&url)).expect("metrics fetch");
    let compressed_len = resp.body.len();
    let doc = resp.json_body().expect("inflate + parse");
    let raw_len = doc.to_string_compact().len();
    println!(
        "GET /v1/metrics (1 h, 5 m, max, compressed) → {} compressed / {} raw ({:.1}%)",
        compressed_len,
        raw_len,
        compressed_len as f64 / raw_len as f64 * 100.0,
    );
    println!(
        "server-side query+processing: {} ms",
        resp.headers.get("X-Query-Processing-Ms").unwrap_or("?")
    );

    let nodes = doc.as_object().map(|o| o.len()).unwrap_or(0);
    let power_points = doc
        .get("10.101.1.1")
        .and_then(|n| n.get("power"))
        .and_then(|p| p.as_array())
        .map(|a| a.len())
        .unwrap_or(0);
    println!("document: {nodes} nodes, {power_points} power windows for 10.101.1.1");
    println!("\nend-to-end data flow verified: BMC → collector → TSDB → builder → consumer");
}
