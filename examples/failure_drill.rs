//! Failure drill: kill BMCs and execution daemons mid-run and watch the
//! monitoring pipeline degrade gracefully — the operational story behind
//! the paper's timeout/retry machinery (§III-B1) and UGE's lost-host
//! handling (§III-B2).
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```

use monster::redfish::bmc::BmcConfig;
use monster::scheduler::{JobShape, JobSpec};
use monster::util::UserName;
use monster::{Monster, MonsterConfig};

fn main() {
    let mut m = Monster::new(MonsterConfig {
        nodes: 16,
        // Realistic flaky BMCs.
        bmc: BmcConfig::default(),
        workload: None, // we drive our own jobs
        ..MonsterConfig::default()
    });
    println!("== failure drill: 16 nodes ==\n");

    // A long-running victim job on every node.
    let t0 = m.now();
    for i in 0..16 {
        m.qmaster_mut().submit_at(
            t0 + 1 + i,
            JobSpec {
                user: UserName::new("victim"),
                name: format!("work{i}.sh"),
                shape: JobShape::Serial { slots: 36 },
                runtime_secs: 100_000,
                priority: 0,
                mem_per_slot_gib: 2.0,
            },
        );
    }

    // Phase 1: healthy baseline.
    let s = m.run_intervals(2);
    println!(
        "baseline:        sweep={}  failures={}/{}  running jobs={}",
        s[1].collection_time,
        s[1].bmc_failures,
        16 * 4,
        m.qmaster().running_jobs().len()
    );

    // Phase 2: two BMCs die. Sweeps keep working; those nodes' requests
    // burn the timeout+retry budget and fail.
    let dead_bmcs = [m.node_ids()[2], m.node_ids()[5]];
    for n in dead_bmcs {
        m.cluster().set_bmc_alive(n, false).expect("node exists");
    }
    let s = m.run_intervals(2);
    println!(
        "2 BMCs down:     sweep={}  failures={}/{}  (expect ≈8: 2 nodes x 4 categories)",
        s[1].collection_time,
        s[1].bmc_failures,
        16 * 4
    );

    // Phase 3: an execd dies. The qmaster declares the host lost after
    // three missed 40 s reports and kills its job.
    let dead_execd = m.node_ids()[9];
    let now = m.now();
    m.qmaster_mut().fail_execd_at(now + 10, dead_execd);
    let before = m.qmaster().running_jobs().len();
    m.run_intervals(4); // > 120 s: the lost-host timeout elapses
    let after = m.qmaster().running_jobs().len();
    println!(
        "execd lost:      running jobs {before} → {after}; host {} available={}",
        dead_execd.label(),
        m.qmaster().host_available(dead_execd)
    );
    let failed = m
        .qmaster()
        .finished_jobs()
        .iter()
        .filter(|j| matches!(j.state, monster::scheduler::JobState::Failed { .. }))
        .count();
    println!("                 failed jobs recorded in accounting: {failed}");

    // Phase 4: recovery.
    for n in dead_bmcs {
        m.cluster().set_bmc_alive(n, true).expect("node exists");
    }
    let now = m.now();
    m.qmaster_mut().recover_execd_at(now + 10, dead_execd);
    let s = m.run_intervals(2);
    println!(
        "recovered:       sweep={}  failures={}  host {} available={}",
        s[1].collection_time,
        s[1].bmc_failures,
        dead_execd.label(),
        m.qmaster().host_available(dead_execd)
    );

    // The health data tells the story: query abnormal health codes.
    let (rs, _) = m
        .db()
        .query_str(&format!(
            "SELECT count(Code) FROM Health WHERE time >= {} AND time < {}",
            t0.as_secs(),
            m.now().as_secs()
        ))
        .expect("health query");
    let abnormal: f64 =
        rs.series.iter().flat_map(|s| s.points.iter()).filter_map(|(_, v)| v.as_f64()).sum();
    println!("\nabnormal health samples stored (abnormal-only retention): {abnormal}");
    println!("total points stored: {}", m.db().stats().points);
}
