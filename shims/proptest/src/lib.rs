//! Workspace-local shim providing the subset of the `proptest` API the
//! workspace uses: the `proptest!` test macro (with `proptest_config`),
//! `prop_assert*` assertions, and a strategy algebra — `any`, `Just`,
//! numeric ranges, regex-like string patterns, tuples, `prop_map` /
//! `prop_filter` / `prop_recursive`, `prop_oneof!`, `collection::vec`,
//! and `sample::select`. Cases are generated deterministically from the
//! test name and case index, so failures reproduce; there is no
//! shrinking. See `shims/` for why these exist.

#![warn(missing_docs)]

/// Test-case plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use std::fmt;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// A failed property assertion (no shrinking: reported as-is).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator (SplitMix64) feeding strategy sampling.
    #[derive(Debug, Clone)]
    pub struct Prng {
        state: u64,
    }

    impl Prng {
        /// Seed a stream; same seed, same draws.
        pub fn new(seed: u64) -> Prng {
            Prng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Derive the per-case seed for `(test name, case index)`.
        pub fn case_seed(name: &str, case: u64) -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^ case.wrapping_mul(0xA24B_AED4_963E_E407)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            let cutoff = u64::MAX - u64::MAX % n;
            loop {
                let v = self.next_u64();
                if v < cutoff {
                    return v % n;
                }
            }
        }
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use crate::test_runner::Prng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// Something that can produce values for a property test.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut Prng) -> Self::Value;

        /// Transform every drawn value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values passing `pred` (rejection sampling; panics
        /// with `reason` if the predicate almost never passes).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason, pred }
        }

        /// Build a recursive strategy: `recurse` receives the strategy
        /// for the next level down, bottoming out at `self` (the leaf)
        /// after `depth` levels. Sizing hints are accepted for API
        /// compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = BoxedStrategy::new(self);
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = BoxedStrategy::new(recurse(current));
                current = BoxedStrategy::new(LeafOrBranch { leaf: leaf.clone(), branch });
            }
            current
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(self)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> BoxedStrategy<V> {
        /// Erase `s`.
        pub fn new<S: Strategy<Value = V> + 'static>(s: S) -> BoxedStrategy<V> {
            BoxedStrategy(Rc::new(s))
        }
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut Prng) -> V {
            self.0.sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut Prng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut Prng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive draws: {}", self.reason);
        }
    }

    /// One level of [`Strategy::prop_recursive`]: half leaves, half
    /// recursion into the next level.
    struct LeafOrBranch<V> {
        leaf: BoxedStrategy<V>,
        branch: BoxedStrategy<V>,
    }

    impl<V> Strategy for LeafOrBranch<V> {
        type Value = V;
        fn sample(&self, rng: &mut Prng) -> V {
            if rng.next_u64() & 1 == 0 {
                self.leaf.sample(rng)
            } else {
                self.branch.sample(rng)
            }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut Prng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Prng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Prng) -> $t {
                    assert!(self.start() <= self.end(), "cannot sample empty range");
                    let width = (*self.end() as i128 - *self.start() as i128) as u64 + 1;
                    (*self.start() as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut Prng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String strategies from a regex-like pattern: a concatenation of
    /// character classes (`[a-z0-9_]`, `[ -~&&[^\r\n]]`, `\PC`) and
    /// literals, each with an optional `{n}` / `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut Prng) -> String {
            crate::pattern::sample(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut Prng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    }

    /// Types with a whole-domain strategy via [`any`].
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value (for floats: raw bit patterns,
        /// so NaN and the infinities occur naturally).
        fn arbitrary(rng: &mut Prng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Prng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Prng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut Prng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut Prng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// Strategy over the full domain of `T` (see [`any`]).
    #[derive(Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// Full-domain strategy for `T`: `any::<f64>()` etc.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut Prng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniform choice among several strategies with one value type
    /// (built by [`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from the erased arms; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut Prng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Prng;

    /// `Vec` strategy: length drawn from `len`, elements from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec strategy needs a non-empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Prng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(width) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Pick-from-a-list strategies (`proptest::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::Prng;

    /// Uniform choice from a fixed list (see [`select`]).
    pub struct Select<T: Clone>(Vec<T>);

    /// Strategy yielding a uniformly chosen element of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut Prng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Sampler for the regex-like string patterns used as strategies.
pub mod pattern {
    use crate::test_runner::Prng;

    /// Printable characters outside Unicode category C, sampled by
    /// `\PC`: the printable ASCII range plus a spread of multi-byte
    /// letters and symbols so UTF-8 handling gets exercised.
    const PC_EXTRAS: &[char] = &[
        '£', 'é', 'ß', 'ñ', 'Ω', 'λ', 'й', 'Ж', 'ü', 'ç', '√', '°', '…', '中', '文', '日', '本',
        '한', '𝄞', '🚀',
    ];

    /// Draw one string matching `pat`.
    pub fn sample(pat: &str, rng: &mut Prng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut out = String::new();
        while i < chars.len() {
            let candidates = parse_element(&chars, &mut i, pat);
            let (lo, hi) = parse_quantifier(&chars, &mut i, pat);
            let n = if lo == hi { lo } else { lo + rng.below((hi - lo + 1) as u64) as usize };
            for _ in 0..n {
                out.push(candidates[rng.below(candidates.len() as u64) as usize]);
            }
        }
        out
    }

    fn parse_element(chars: &[char], i: &mut usize, pat: &str) -> Vec<char> {
        match chars[*i] {
            '[' => {
                *i += 1;
                let (set, negated) = parse_class(chars, i, pat);
                assert!(!negated, "top-level negated classes are not supported: {pat}");
                set
            }
            '\\' => {
                *i += 1;
                match chars.get(*i) {
                    Some('P') if chars.get(*i + 1) == Some(&'C') => {
                        *i += 2;
                        let mut set: Vec<char> = (' '..='~').collect();
                        set.extend_from_slice(PC_EXTRAS);
                        set
                    }
                    Some(&c) => {
                        *i += 1;
                        vec![unescape(c)]
                    }
                    None => panic!("dangling escape in pattern: {pat}"),
                }
            }
            c => {
                *i += 1;
                vec![c]
            }
        }
    }

    /// Parse the inside of `[...]` starting just past the `[`; consumes
    /// the closing `]`. Supports ranges, escapes, leading `^`, and
    /// Java-style `&&[^...]` subtraction.
    fn parse_class(chars: &[char], i: &mut usize, pat: &str) -> (Vec<char>, bool) {
        let mut set: Vec<char> = Vec::new();
        let negated = chars.get(*i) == Some(&'^');
        if negated {
            *i += 1;
        }
        loop {
            match chars.get(*i) {
                None => panic!("unterminated character class in pattern: {pat}"),
                Some(']') => {
                    *i += 1;
                    break;
                }
                Some('&') if chars.get(*i + 1) == Some(&'&') => {
                    *i += 2;
                    assert_eq!(
                        chars.get(*i),
                        Some(&'['),
                        "`&&` must be followed by a class: {pat}"
                    );
                    *i += 1;
                    let (inner, inner_negated) = parse_class(chars, i, pat);
                    if inner_negated {
                        set.retain(|c| !inner.contains(c));
                    } else {
                        set.retain(|c| inner.contains(c));
                    }
                    // The subtraction must close the outer class too.
                    assert_eq!(chars.get(*i), Some(&']'), "`&&[...]` must end the class: {pat}");
                    *i += 1;
                    break;
                }
                Some(&c) => {
                    let c = if c == '\\' {
                        *i += 1;
                        unescape(
                            *chars
                                .get(*i)
                                .unwrap_or_else(|| panic!("dangling escape in class: {pat}")),
                        )
                    } else {
                        c
                    };
                    *i += 1;
                    // A `-` between two chars (not before `]`) is a range.
                    if chars.get(*i) == Some(&'-') && chars.get(*i + 1).is_some_and(|&n| n != ']') {
                        *i += 1;
                        let hi = if chars[*i] == '\\' {
                            *i += 1;
                            unescape(chars[*i])
                        } else {
                            chars[*i]
                        };
                        *i += 1;
                        set.extend(c..=hi);
                    } else {
                        set.push(c);
                    }
                }
            }
        }
        assert!(!set.is_empty() || negated, "empty character class in pattern: {pat}");
        (set, negated)
    }

    fn unescape(c: char) -> char {
        match c {
            'r' => '\r',
            'n' => '\n',
            't' => '\t',
            '0' => '\0',
            other => other,
        }
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pat: &str) -> (usize, usize) {
        if chars.get(*i) != Some(&'{') {
            return (1, 1);
        }
        *i += 1;
        let mut lo = 0usize;
        while chars[*i].is_ascii_digit() {
            lo = lo * 10 + chars[*i].to_digit(10).unwrap() as usize;
            *i += 1;
        }
        let hi = if chars[*i] == ',' {
            *i += 1;
            let mut h = 0usize;
            while chars[*i].is_ascii_digit() {
                h = h * 10 + chars[*i].to_digit(10).unwrap() as usize;
                *i += 1;
            }
            h
        } else {
            lo
        };
        assert_eq!(chars[*i], '}', "unterminated quantifier in pattern: {pat}");
        *i += 1;
        assert!(lo <= hi, "bad quantifier bounds in pattern: {pat}");
        (lo, hi)
    }
}

/// The usual imports: strategies, config, and the test and assertion
/// macros — plus `prop` as an alias for this crate so nested paths like
/// `prop::collection::vec` resolve.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in STRATEGY, ...) { body }`
/// becomes a `#[test]` running deterministic cases (256 by default, or
/// the count from a leading `#![proptest_config(...)]`); `prop_assert*!`
/// failures report the failing case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::__proptest_body! { cfg = ($cfg); $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::__proptest_body! {
            cfg = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)+
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = ($cfg).cases as u64;
            for case in 0..cases {
                let mut prop_rng = $crate::test_runner::Prng::new(
                    $crate::test_runner::Prng::case_seed(stringify!($name), case),
                );
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )+};
}

/// Assert a condition inside [`proptest!`]; failure fails the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside [`proptest!`]; failure fails the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::BoxedStrategy::new($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::Prng;

    #[test]
    fn union_draws_from_every_arm() {
        let s = prop_oneof![Just(1.0f64), Just(2.0), -10.0..10.0f64];
        let mut rng = Prng::new(3);
        let (mut ones, mut twos, mut ranged) = (0, 0, 0);
        for _ in 0..300 {
            let x = s.sample(&mut rng);
            if x == 1.0 {
                ones += 1;
            } else if x == 2.0 {
                twos += 1;
            } else {
                assert!((-10.0..10.0).contains(&x));
                ranged += 1;
            }
        }
        assert!(ones > 50 && twos > 50 && ranged > 50);
    }

    #[test]
    fn any_f64_hits_specials_eventually() {
        let s = any::<f64>();
        let mut rng = Prng::new(11);
        let non_finite = (0..100_000).filter(|_| !s.sample(&mut rng).is_finite()).count();
        // ~1/2048 of bit patterns have an all-ones exponent.
        assert!(non_finite > 10, "saw {non_finite} non-finite draws");
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let s = crate::collection::vec(0.0..1.0f64, 2..5);
        let mut rng = Prng::new(5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn string_patterns_match_their_classes() {
        let mut rng = Prng::new(9);
        for _ in 0..500 {
            let s = "[a-zA-Z][a-zA-Z0-9_]{0,8}".sample(&mut rng);
            assert!((1..=9).contains(&s.chars().count()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s:?}");
        }
        for _ in 0..500 {
            let s = "[ -~&&[^\r\n]]{1,40}".sample(&mut rng);
            assert!((1..=40).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
        for _ in 0..500 {
            let s = "\\PC{0,16}".sample(&mut rng);
            assert!(s.chars().count() <= 16);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn filter_and_map_compose() {
        let s = any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(|f| f.abs());
        let mut rng = Prng::new(21);
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!(v.is_finite() && v >= 0.0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let s = any::<u8>().prop_map(Tree::Leaf).prop_recursive(4, 64, 8, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = Prng::new(33);
        for _ in 0..200 {
            assert!(depth(&s.sample(&mut rng)) <= 5);
        }
    }

    #[test]
    fn select_only_yields_listed_items() {
        let s = crate::sample::select(vec![b'a', b'b', b'c']);
        let mut rng = Prng::new(41);
        for _ in 0..100 {
            assert!([b'a', b'b', b'c'].contains(&s.sample(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: config is honoured, tuple + range strategies
        /// sample, and assertions pass through.
        #[test]
        fn macro_generates_in_range(
            (x, n) in (0.25..0.75f64, 1u8..=4),
            v in prop::collection::vec(any::<u8>(), 0..8),
        ) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..=4).contains(&n));
            prop_assert!(v.len() < 8);
            prop_assert_eq!(x.is_finite(), true);
        }
    }
}
