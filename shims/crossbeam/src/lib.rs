//! Workspace-local shim providing the subset of the `crossbeam` API the
//! workspace uses: multi-producer **multi-consumer** channels (std's
//! `mpsc` receivers cannot be cloned, which the worker-pool fan-out
//! requires). See `shims/` for why these exist.

#![warn(missing_docs)]

/// MPMC channels (`crossbeam::channel` subset).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the rejected value, like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like crossbeam: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half; clonable for multi-producer use.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clonable for multi-consumer use.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Enqueue a value. Fails (returning the value) once every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner).senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Wake blocked receivers so they can observe disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking while the channel is empty and at
        /// least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeue without blocking; `None` when empty (regardless of
        /// sender liveness).
        pub fn try_recv(&self) -> Option<T> {
            self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner).items.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner).receivers += 1;
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner).receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<i32>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(channel::SendError(5)));
    }

    #[test]
    fn multi_consumer_drains_everything_once() {
        let (tx, rx) = channel::unbounded();
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen: Vec<i32> = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = channel::unbounded();
        let t = thread::spawn(move || rx.recv());
        thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(t.join().unwrap(), Ok(42));
    }
}
