//! Workspace-local shim providing the subset of the `criterion` API the
//! workspace's `harness = false` benches use. It times each routine over
//! a configurable number of samples and prints `min / median / max` per
//! benchmark in a criterion-like format — enough to compare runs by eye
//! and to keep `cargo bench` green without the real crate. See `shims/`
//! for why these exist.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units used to annotate a group's throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output [`Bencher::iter_batched`] may buffer between
/// timed runs. The shim times one batch per sample regardless; the
/// variant only documents intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large inputs that should not be pre-built in bulk.
    LargeInput,
    /// Rebuild the input for every single iteration.
    PerIteration,
}

/// Benchmark harness entry point; one per process.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None }
    }
}

/// A named set of benchmarks sharing sample-count and throughput config.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput for this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up pass, then `sample_size` timed passes.
        let mut b = Bencher { elapsed: Duration::ZERO };
        f(&mut b);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort_unstable();
        let min = samples[0];
        let med = samples[samples.len() / 2];
        let max = samples[samples.len() - 1];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if med > Duration::ZERO => {
                format!("  thrpt: {:.4e} elem/s", n as f64 / med.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
                format!("  thrpt: {:.4e} B/s", n as f64 / med.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} time: [{} {} {}]{}",
            self.name,
            id,
            fmt_duration(min),
            fmt_duration(med),
            fmt_duration(max),
            rate
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.4} s", nanos as f64 / 1e9)
    }
}

/// Passed to each benchmark closure to time the routine under test.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `routine` (the sample's measurement).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        black_box(out);
    }

    /// Time `routine` on a fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        black_box(out);
    }
}

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running each group produced by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut calls = 0;
        g.bench_function("counting", |b| {
            calls += 1;
            b.iter(|| 1 + 1)
        });
        g.finish();
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn iter_batched_feeds_setup_output() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2).throughput(Throughput::Elements(3));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.iter().sum::<i32>(), BatchSize::LargeInput)
        });
        g.finish();
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(7)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
