//! Workspace-local shim providing the subset of the `parking_lot` API the
//! workspace uses, implemented over `std::sync` primitives.
//!
//! The build environment has no access to an external crate registry, so
//! the few third-party crates the workspace leans on are provided as
//! source-compatible shims under `shims/`. Semantics match `parking_lot`
//! where it differs from `std`: locks are not poisoned — a panic while
//! holding a guard simply unlocks (`PoisonError::into_inner`), so one
//! failed worker cannot wedge every later reader.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock. `lock()` returns the guard directly (no
/// `Result`): the lock is never poisoned.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock. `read()`/`write()` return guards directly (no
/// `Result`): the lock is never poisoned.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
