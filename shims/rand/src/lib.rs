//! Workspace-local shim providing the subset of the `rand` API the
//! workspace uses: `rngs::SmallRng` plus the `Rng` and `SeedableRng`
//! traits, backed by xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets) seeded through SplitMix64. See `shims/` for
//! why these exist.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a single `u64`, expanding it into full
    /// state with SplitMix64 so similar seeds give unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an `Rng` via [`Rng::gen`]
/// (the `Standard` distribution in real `rand`).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    // Rejection sampling: discard the biased tail of the u64 space.
    let cutoff = u64::MAX - u64::MAX % width;
    loop {
        let v = rng.next_u64();
        if v < cutoff {
            return v % width;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + uniform_below(rng, width) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level draw methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range (half-open, unbiased).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_uniform_on_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            min = min.min(x);
            max = max.max(x);
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn gen_range_covers_all_values_without_bias() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow 5% slack.
            assert!((9_500..10_500).contains(&c), "counts {counts:?}");
        }
    }
}
