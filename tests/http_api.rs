//! Integration over real sockets: the Redfish gateway and the Metrics
//! Builder API, exercised exactly as external consumers would.

use monster::http::{Client, Request, Status};
use monster::redfish::bmc::BmcConfig;
use monster::redfish::cluster::{ClusterConfig, SimulatedCluster};
use monster::redfish::gateway;
use monster::{Monster, MonsterConfig};
use std::sync::Arc;

fn reliable_bmc() -> BmcConfig {
    BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() }
}

#[test]
fn redfish_tree_serves_all_four_categories() {
    let cluster = Arc::new(SimulatedCluster::new(ClusterConfig {
        nodes: 4,
        bmc: reliable_bmc(),
        ..ClusterConfig::small(4, 31)
    }));
    let server = monster::http::Server::spawn(0, gateway::router(cluster)).unwrap();
    let client = Client::new();
    for (path, expect_key) in [
        ("Chassis/System.Embedded.1/Thermal/", "Temperatures"),
        ("Chassis/System.Embedded.1/Power/", "PowerControl"),
        ("Managers/iDRAC.Embedded.1", "FirmwareVersion"),
        ("Systems/System.Embedded.1", "ProcessorSummary"),
    ] {
        let resp = client
            .send_ok(server.addr(), &Request::get(&format!("/nodes/10.101.1.2/redfish/v1/{path}")))
            .unwrap_or_else(|e| panic!("{path}: {e}"));
        let v = resp.json_body().unwrap();
        assert!(v.get(expect_key).is_some(), "{path} missing {expect_key}");
    }
}

#[test]
fn builder_api_full_consumer_flow() {
    let mut m =
        Monster::new(MonsterConfig { nodes: 5, bmc: reliable_bmc(), ..MonsterConfig::default() });
    m.run_intervals_bulk(30);
    let server = m.serve_api(0).unwrap();
    let client = Client::new();

    // Discover nodes.
    let nodes =
        client.send_ok(server.addr(), &Request::get("/v1/nodes")).unwrap().json_body().unwrap();
    let node_list = nodes.get("nodes").unwrap().as_array().unwrap().len();
    assert_eq!(node_list, 5);

    // Pull metrics, compressed and not; both must decode identically.
    let start = (m.now() - 1500).to_rfc3339();
    let end = m.now().to_rfc3339();
    let base = format!("/v1/metrics?start={start}&end={end}&interval=5m&aggregation=max");
    let plain = client.send_ok(server.addr(), &Request::get(&base)).unwrap();
    let packed =
        client.send_ok(server.addr(), &Request::get(&format!("{base}&compress=true"))).unwrap();
    assert!(packed.body.len() < plain.body.len());
    assert_eq!(plain.json_body().unwrap(), packed.json_body().unwrap());

    // Timing headers present (the observability contract).
    assert!(plain.headers.get("X-Query-Processing-Ms").is_some());

    // Distributed-tracing contract: every /v1/metrics response carries a
    // well-formed W3C traceparent and the freshness-lag header.
    let tp = plain.headers.get("traceparent").expect("traceparent header");
    assert!(monster::obs::TraceContext::parse_traceparent(tp).is_some(), "bad traceparent: {tp}");
    let lag: f64 = plain
        .headers
        .get("X-Freshness-Lag-Seconds")
        .expect("freshness header")
        .parse()
        .expect("freshness header must be numeric");
    assert!(lag >= 0.0);
}

#[test]
fn builder_api_rejects_bad_requests_cleanly() {
    let mut m =
        Monster::new(MonsterConfig { nodes: 2, bmc: reliable_bmc(), ..MonsterConfig::default() });
    m.run_intervals_bulk(5);
    let server = m.serve_api(0).unwrap();
    let client = Client::new();
    let resp = client.send(server.addr(), &Request::get("/v1/metrics?start=bogus")).unwrap();
    assert_eq!(resp.status, Status::BAD_REQUEST);
    let resp = client.send(server.addr(), &Request::get("/v1/nope")).unwrap();
    assert_eq!(resp.status, Status::NOT_FOUND);
}

#[test]
fn repeated_requests_hit_the_response_cache() {
    let mut m =
        Monster::new(MonsterConfig { nodes: 3, bmc: reliable_bmc(), ..MonsterConfig::default() });
    m.run_intervals_bulk(10);
    let server = m.serve_api(0).unwrap();
    let client = Client::new();
    let url = format!(
        "/v1/metrics?start={}&end={}&interval=5m&aggregation=max",
        (m.now() - 600).to_rfc3339(),
        m.now().to_rfc3339()
    );
    let first = client.send_ok(server.addr(), &Request::get(&url)).unwrap();
    assert_eq!(first.headers.get("X-Cache"), Some("miss"));
    let second = client.send_ok(server.addr(), &Request::get(&url)).unwrap();
    assert_eq!(second.headers.get("X-Cache"), Some("hit"));
    assert_eq!(first.json_body().unwrap(), second.json_body().unwrap());
    // A new collection interval does NOT invalidate this entry: its
    // window closed at the ingest watermark, and in-order appends land
    // strictly above it (watermark validity), so the bytes cannot change.
    m.run_intervals_bulk(1);
    let third = client.send_ok(server.addr(), &Request::get(&url)).unwrap();
    assert_eq!(third.headers.get("X-Cache"), Some("hit"));
    assert_eq!(first.json_body().unwrap(), third.json_body().unwrap());

    // An OPEN window — end beyond the watermark — is invalidated by the
    // next interval's writes, which land inside it.
    let open_url = format!(
        "/v1/metrics?start={}&end={}&interval=5m&aggregation=max",
        (m.now() - 600).to_rfc3339(),
        (m.now() + 3600).to_rfc3339()
    );
    let a = client.send_ok(server.addr(), &Request::get(&open_url)).unwrap();
    assert_eq!(a.headers.get("X-Cache"), Some("miss"));
    let b = client.send_ok(server.addr(), &Request::get(&open_url)).unwrap();
    assert_eq!(b.headers.get("X-Cache"), Some("hit"));
    m.run_intervals_bulk(1);
    let c = client.send_ok(server.addr(), &Request::get(&open_url)).unwrap();
    assert_eq!(c.headers.get("X-Cache"), Some("miss"));
}

#[test]
fn concurrent_consumers_get_consistent_answers() {
    let mut m =
        Monster::new(MonsterConfig { nodes: 3, bmc: reliable_bmc(), ..MonsterConfig::default() });
    m.run_intervals_bulk(20);
    let server = m.serve_api(0).unwrap();
    let addr = server.addr();
    let start = (m.now() - 1200).to_rfc3339();
    let end = m.now().to_rfc3339();
    let url = format!("/v1/metrics?start={start}&end={end}&interval=5m&aggregation=mean");

    let answers: Vec<_> = std::thread::scope(|s| {
        (0..6)
            .map(|_| {
                let url = url.clone();
                s.spawn(move || {
                    Client::new().send_ok(addr, &Request::get(&url)).unwrap().json_body().unwrap()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for a in &answers[1..] {
        assert_eq!(a, &answers[0]);
    }
}
