//! End-to-end integration: simulate a cluster, collect through the full
//! Redfish path, store, query through Metrics Builder, and verify the data
//! round-trips faithfully.

use monster::builder::{BuilderRequest, ExecMode};
use monster::redfish::bmc::BmcConfig;
use monster::scheduler::{JobShape, JobSpec};
use monster::tsdb::Aggregation;
use monster::util::UserName;
use monster::{Monster, MonsterConfig};

fn reliable(nodes: usize) -> MonsterConfig {
    MonsterConfig {
        nodes,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..MonsterConfig::default()
    }
}

#[test]
fn collected_power_matches_ground_truth() {
    let mut m = Monster::new(reliable(6));
    m.run_intervals(3);

    // Ground truth from the sensor model at the last interval.
    let node = m.node_ids()[2];
    let truth = m.cluster().sensors(node).unwrap().power;

    // Query the last stored sample back through the builder.
    let req = BuilderRequest::new(m.now() - 60, m.now() + 60, 60, Aggregation::Last).unwrap();
    let out = m.builder_query(&req, ExecMode::Sequential).unwrap();
    let stored = out
        .document
        .get(&node.bmc_addr())
        .and_then(|n| n.get("power"))
        .and_then(|p| p.as_array())
        .and_then(|a| a.last())
        .and_then(|p| p.get("value"))
        .and_then(|v| v.as_f64())
        .expect("stored power value");
    // Rounded to 0.1 W by the Redfish payload.
    assert!((stored - truth).abs() < 0.06, "stored {stored}, ground truth {truth}");
}

#[test]
fn job_lifecycle_visible_through_storage() {
    let mut m = Monster::new(MonsterConfig { workload: None, ..reliable(4) });
    let t0 = m.now();
    m.qmaster_mut().submit_at(
        t0 + 5,
        JobSpec {
            user: UserName::new("itest"),
            name: "integration.sh".into(),
            shape: JobShape::Serial { slots: 36 },
            runtime_secs: 150,
            priority: 0,
            mem_per_slot_gib: 1.0,
        },
    );
    // Interval 1: job running; interval 4+: finished.
    m.run_intervals(5);

    // NodeJobs shows the job while it ran.
    let (rs, _) = m
        .db()
        .query_str(&format!(
            "SELECT JobList FROM NodeJobs WHERE time >= {} AND time < {}",
            t0.as_secs(),
            m.now().as_secs()
        ))
        .unwrap();
    let mentions = rs
        .series
        .iter()
        .flat_map(|s| s.points.iter())
        .filter(|(_, v)| v.as_str().map(|s| s.contains("1290000")).unwrap_or(false))
        .count();
    assert!(mentions >= 1, "job never appeared in NodeJobs");

    // JobsInfo carries the final record with both times.
    let (rs, _) = m
        .db()
        .query_str(&format!(
            "SELECT FinishTime FROM JobsInfo WHERE JobId='1290000' AND time >= {} AND time < {}",
            t0.as_secs(),
            m.now().as_secs()
        ))
        .unwrap();
    let finish = rs
        .series
        .first()
        .and_then(|s| s.points.last())
        .and_then(|(_, v)| v.as_i64())
        .expect("finish time recorded");
    // Runtime 150 s after a dispatch within the first minute.
    assert!(finish >= (t0 + 150).as_secs() && finish <= (t0 + 300).as_secs());
}

#[test]
fn load_correlates_with_power_across_fleet() {
    // The monitoring pipeline must preserve the load→power correlation the
    // analysis layer (Figs. 7-9) depends on.
    let mut m = Monster::new(MonsterConfig { workload: None, ..reliable(8) });
    let t0 = m.now();
    // Load half the fleet.
    for i in 0..4 {
        m.qmaster_mut().submit_at(
            t0 + 1 + i,
            JobSpec {
                user: UserName::new("loader"),
                name: "hot.sh".into(),
                shape: JobShape::Serial { slots: 36 },
                runtime_secs: 100_000,
                priority: 0,
                mem_per_slot_gib: 2.0,
            },
        );
    }
    m.run_intervals(20); // let thermal state settle

    let req = BuilderRequest::new(m.now() - 300, m.now() + 60, 300, Aggregation::Mean).unwrap();
    let out = m.builder_query(&req, ExecMode::Concurrent { workers: 4 }).unwrap();
    let mut busy_power = Vec::new();
    let mut idle_power = Vec::new();
    for node in m.node_ids() {
        let report = m.qmaster().load_report(node).unwrap();
        let p = out
            .document
            .get(&node.bmc_addr())
            .and_then(|n| n.get("power"))
            .and_then(|p| p.as_array())
            .and_then(|a| a.last())
            .and_then(|p| p.get("value"))
            .and_then(|v| v.as_f64())
            .expect("power series");
        if report.cpu_usage > 0.5 {
            busy_power.push(p);
        } else {
            idle_power.push(p);
        }
    }
    assert_eq!(busy_power.len(), 4);
    assert_eq!(idle_power.len(), 4);
    let busy_mean = monster::util::stats::mean(&busy_power);
    let idle_mean = monster::util::stats::mean(&idle_power);
    assert!(busy_mean > idle_mean + 100.0, "busy {busy_mean:.0} W vs idle {idle_mean:.0} W");
}

#[test]
fn finish_time_estimation_then_reconciliation() {
    let mut m = Monster::new(MonsterConfig { workload: None, ..reliable(2) });
    let t0 = m.now();
    m.qmaster_mut().submit_at(
        t0 + 5,
        JobSpec {
            user: UserName::new("est"),
            name: "short.sh".into(),
            shape: JobShape::Serial { slots: 4 },
            runtime_secs: 70,
            priority: 0,
            mem_per_slot_gib: 0.5,
        },
    );
    let s1 = m.run_interval().unwrap(); // running
    let s2 = m.run_interval().unwrap(); // finished between pulls
    let _ = (s1, s2);
    // ARCo has the accurate end time; the estimator flagged it the
    // interval after it vanished.
    let job = m.qmaster().finished_jobs()[0];
    let accurate = match &job.state {
        monster::scheduler::JobState::Done { end, .. } => *end,
        other => panic!("unexpected state {other:?}"),
    };
    assert!(accurate > t0 && accurate < m.now());
}
