//! Integration: the alerting layer end-to-end — streaming detectors in
//! the collector, the rule engine fed by collection health, and
//! `GET /v1/alerts` served over a real socket.
//!
//! Assertions here stick to node-scoped alerts: the freshness tracker is
//! process-global, so cluster-scope burn alerts can reflect other tests
//! running in this binary.

use monster::alert::{AnomalyKind, RuleId, Severity, Signal};
use monster::http::{Client, Request, Status};
use monster::redfish::bmc::BmcConfig;
use monster::redfish::resilience::ResilienceConfig;
use monster::scheduler::{JobShape, JobSpec};
use monster::util::{NodeId, UserName};
use monster::{Monster, MonsterConfig};

fn deployment(nodes: usize, seed: u64) -> Monster {
    Monster::new(MonsterConfig {
        nodes,
        seed,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        resilience: Some(ResilienceConfig::default()),
        workload: None,
        horizon_secs: 0,
        ..MonsterConfig::default()
    })
}

fn submit_one_job(m: &mut Monster) {
    let t = m.now();
    m.qmaster_mut().submit_at(
        t + 1,
        JobSpec {
            user: UserName::new("alice"),
            name: "steady.sh".into(),
            shape: JobShape::Serial { slots: 36 },
            runtime_secs: 1_000_000,
            priority: 0,
            mem_per_slot_gib: 1.0,
        },
    );
}

/// Node-scoped active alerts matching `rule`.
fn active_by_rule(m: &Monster, rule: RuleId) -> Vec<monster::alert::Alert> {
    m.alerts().unwrap().active().into_iter().filter(|a| a.key.rule == rule).collect()
}

#[test]
fn dead_node_raises_one_critical_with_job_attribution() {
    let mut m = deployment(6, 41);
    submit_one_job(&mut m);
    m.run_interval().unwrap();
    let victim: NodeId = *m
        .node_ids()
        .iter()
        .find(|&&n| !m.qmaster().jobs_on(n).is_empty())
        .expect("job placed somewhere");

    // Kill the BMC; the breaker trips and live readings drop to zero.
    m.cluster().set_bmc_alive(victim, false).unwrap();
    let mut raised_total = 0;
    for _ in 0..6 {
        raised_total += m.run_interval().unwrap().alerts.raised;
    }
    let unreachable = active_by_rule(&m, RuleId::NodeUnreachable);
    assert_eq!(unreachable.len(), 1, "{unreachable:?}");
    let alert = &unreachable[0];
    assert_eq!(alert.key.node, Some(victim));
    assert_eq!(alert.severity, Severity::Critical);
    assert_eq!(alert.flaps, 0);
    assert!(!alert.jobs.is_empty(), "no job attribution on {alert:?}");
    assert_eq!(alert.jobs, m.qmaster().jobs_on(victim));
    assert!(raised_total >= 1);
    // The weaker degraded rule must not double-fire on a fully dead node.
    assert!(active_by_rule(&m, RuleId::CollectionDegraded).is_empty());

    // Recovery: the probe closes the breaker, the hold-down runs out, and
    // the alert resolves exactly once, flap-free.
    m.cluster().set_bmc_alive(victim, true).unwrap();
    for _ in 0..8 {
        m.run_interval().unwrap();
    }
    assert!(active_by_rule(&m, RuleId::NodeUnreachable).is_empty());
    let history = m.alerts().unwrap().history();
    let resolved: Vec<_> =
        history.iter().filter(|a| a.key.rule == RuleId::NodeUnreachable).collect();
    assert_eq!(resolved.len(), 1, "{history:?}");
    assert_eq!(resolved[0].flaps, 0);
    assert!(resolved[0].resolved_at.is_some());
}

#[test]
fn power_fault_fires_streaming_detectors_with_trace_link() {
    let mut m = deployment(4, 42);
    let victim = m.node_ids()[2];
    // Warm the detectors up on healthy physics.
    for _ in 0..12 {
        let s = m.run_interval().unwrap();
        assert_eq!(s.anomaly_events, 0, "false positive during warm-up");
    }
    // A fault no load change explains: +450 W on the power rail, past
    // both the 400 W slew bound and the 320 W deviation floor.
    m.cluster().set_power_offset(victim, 450.0).unwrap();
    let mut events = 0;
    for _ in 0..3 {
        events += m.run_interval().unwrap().anomaly_events;
    }
    assert!(events >= 1, "detectors missed a 450 W step");
    let anomalies: Vec<_> = m
        .alerts()
        .unwrap()
        .active()
        .into_iter()
        .filter(|a| matches!(a.key.rule, RuleId::Anomaly(..)))
        .collect();
    assert!(!anomalies.is_empty());
    for a in &anomalies {
        assert_eq!(a.key.node, Some(victim), "anomaly on the wrong node: {a:?}");
        assert!(a.trace_id.is_some(), "no exemplar trace on {a:?}");
    }
    assert!(anomalies
        .iter()
        .any(|a| a.key.rule == RuleId::Anomaly(Signal::Power, AnomalyKind::RateOfChange)));

    // Repair: the offset clears, detectors see healthy values again, and
    // after the clear hysteresis + hold-down the alerts resolve.
    m.cluster().set_power_offset(victim, 0.0).unwrap();
    for _ in 0..10 {
        m.run_interval().unwrap();
    }
    assert!(
        m.alerts().unwrap().active().iter().all(|a| !matches!(a.key.rule, RuleId::Anomaly(..))),
        "anomaly alerts did not resolve"
    );
}

#[test]
fn calm_deployment_raises_no_node_alerts() {
    let mut m = deployment(6, 43);
    submit_one_job(&mut m);
    for _ in 0..20 {
        let s = m.run_interval().unwrap();
        assert_eq!(s.anomaly_events, 0, "detector fired on healthy physics");
    }
    let node_scoped: Vec<_> =
        m.alerts().unwrap().active().into_iter().filter(|a| a.key.node.is_some()).collect();
    assert!(node_scoped.is_empty(), "{node_scoped:?}");
}

#[test]
fn alerts_api_serves_list_detail_and_silences() {
    let mut m = deployment(5, 44);
    let victim = m.node_ids()[0];
    m.run_interval().unwrap();
    m.cluster().set_bmc_alive(victim, false).unwrap();
    for _ in 0..5 {
        m.run_interval().unwrap();
    }
    let server = m.serve_api(0).unwrap();
    let client = Client::new();

    // List: the unreachable critical is there with its node address.
    let list = client.send_ok(server.addr(), &Request::get("/v1/alerts")).unwrap();
    let doc = list.json_body().unwrap();
    assert!(doc.get("counts").unwrap().get("critical").unwrap().as_f64().unwrap() >= 1.0);
    let active = doc.get("active").unwrap().as_array().unwrap();
    let unreachable = active
        .iter()
        .find(|a| a.get("rule").and_then(|r| r.as_str()) == Some("collection/unreachable"))
        .expect("unreachable alert in list");
    assert_eq!(unreachable.get("node").unwrap().as_str(), Some(victim.bmc_addr().as_str()));
    assert_eq!(unreachable.get("severity").unwrap().as_str(), Some("critical"));
    assert_eq!(unreachable.get("state").unwrap().as_str(), Some("firing"));

    // Detail: same alert by id, field-complete.
    let id = unreachable.get("id").unwrap().as_i64().unwrap();
    let detail = client
        .send_ok(server.addr(), &Request::get(&format!("/v1/alerts/{id}")))
        .unwrap()
        .json_body()
        .unwrap();
    assert_eq!(detail.get("rule").unwrap().as_str(), Some("collection/unreachable"));
    assert!(detail.get("flaps").unwrap().as_f64().unwrap() == 0.0);
    assert!(detail.get("jobs").unwrap().as_array().is_some());

    // Unknown id and non-numeric id fail cleanly.
    let missing = client.send(server.addr(), &Request::get("/v1/alerts/999999")).unwrap();
    assert_eq!(missing.status, Status::NOT_FOUND);
    let garbage = client.send(server.addr(), &Request::get("/v1/alerts/banana")).unwrap();
    assert_eq!(garbage.status, Status::BAD_REQUEST);

    // Silences: empty list, then one visible after registering.
    let silences = client.send_ok(server.addr(), &Request::get("/v1/silences")).unwrap();
    assert_eq!(silences.json_body().unwrap().get("silences").unwrap().as_array().unwrap().len(), 0);
    m.alerts().unwrap().add_silence(Some(victim), "collection/", m.now() + 3600, "maint", m.now());
    let silences = client.send_ok(server.addr(), &Request::get("/v1/silences")).unwrap();
    assert_eq!(silences.json_body().unwrap().get("silences").unwrap().as_array().unwrap().len(), 1);
}

#[test]
fn alerts_api_is_404_when_alerting_disabled() {
    let mut m = Monster::new(MonsterConfig {
        nodes: 2,
        seed: 45,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        alerting: None,
        detectors: None,
        workload: None,
        horizon_secs: 0,
        ..MonsterConfig::default()
    });
    assert!(m.alerts().is_none());
    m.run_interval().unwrap();
    let server = m.serve_api(0).unwrap();
    let client = Client::new();
    for path in ["/v1/alerts", "/v1/alerts/1", "/v1/silences"] {
        let resp = client.send(server.addr(), &Request::get(path)).unwrap();
        assert_eq!(resp.status, Status::NOT_FOUND, "{path}");
    }
}
