//! Failure-injection integration: the monitoring pipeline must degrade
//! gracefully — dead BMCs burn timeouts but don't block the sweep; lost
//! execds kill jobs and get quarantined; everything recovers.

use monster::redfish::bmc::BmcConfig;
use monster::scheduler::{JobShape, JobSpec, JobState};
use monster::util::UserName;
use monster::{Monster, MonsterConfig};

fn rig(nodes: usize) -> Monster {
    Monster::new(MonsterConfig {
        nodes,
        workload: None,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..MonsterConfig::default()
    })
}

#[test]
fn dead_bmc_only_loses_its_own_categories() {
    let mut m = rig(6);
    let victim = m.node_ids()[3];
    m.cluster().set_bmc_alive(victim, false).unwrap();
    let s = m.run_interval().unwrap();
    // Exactly 4 failed requests (one per category) after retries.
    assert_eq!(s.bmc_failures, 4);
    // Other nodes' data still landed.
    let healthy = m.node_ids()[0];
    let (rs, _) = m
        .db()
        .query_str(&format!(
            "SELECT count(Reading) FROM Power WHERE NodeId='{}' AND time >= 0 AND time < 4000000000",
            healthy.bmc_addr()
        ))
        .unwrap();
    assert!(rs.point_count() > 0);
    // And the victim's power data did not.
    let (rs, _) = m
        .db()
        .query_str(&format!(
            "SELECT count(Reading) FROM Power WHERE NodeId='{}' AND time >= 0 AND time < 4000000000",
            victim.bmc_addr()
        ))
        .unwrap();
    assert_eq!(rs.point_count(), 0);
}

#[test]
fn sweep_makespan_grows_under_failures_but_completes() {
    let mut m = rig(8);
    let baseline = m.run_interval().unwrap();
    for &n in &m.node_ids()[0..2] {
        m.cluster().set_bmc_alive(n, false).unwrap();
    }
    let degraded = m.run_interval().unwrap();
    // Dead BMCs cost 3 x 15 s of timeout each — the makespan reflects it.
    assert!(degraded.collection_time > baseline.collection_time);
    assert_eq!(degraded.bmc_failures, 8);
    // Recovery returns failure count to zero.
    for &n in &m.node_ids()[0..2] {
        m.cluster().set_bmc_alive(n, true).unwrap();
    }
    let recovered = m.run_interval().unwrap();
    assert_eq!(recovered.bmc_failures, 0);
}

#[test]
fn lost_execd_kills_jobs_and_reschedules_elsewhere() {
    // 4 nodes: 3 get whole-node jobs, one stays free for the retry.
    let mut m = rig(4);
    let t0 = m.now();
    for i in 0..3 {
        m.qmaster_mut().submit_at(
            t0 + 1 + i,
            JobSpec {
                user: UserName::new("worker"),
                name: format!("j{i}.sh"),
                shape: JobShape::Serial { slots: 36 },
                runtime_secs: 100_000,
                priority: 0,
                mem_per_slot_gib: 1.0,
            },
        );
    }
    m.run_intervals(1);
    assert_eq!(m.qmaster().running_jobs().len(), 3);
    let victim_node = m.qmaster().running_jobs()[0].hosts()[0];
    let now = m.now();
    m.qmaster_mut().fail_execd_at(now + 5, victim_node);
    // 3 missed 40 s reports => lost after ~120 s.
    m.run_intervals(4);
    assert!(!m.qmaster().host_available(victim_node));
    assert_eq!(m.qmaster().running_jobs().len(), 2);
    let failed = m
        .qmaster()
        .finished_jobs()
        .iter()
        .filter(|j| matches!(j.state, JobState::Failed { .. }))
        .count();
    assert_eq!(failed, 1);

    // A replacement job queues and must land on a *different* node.
    let now = m.now();
    m.qmaster_mut().submit_at(
        now + 5,
        JobSpec {
            user: UserName::new("worker"),
            name: "retry.sh".into(),
            shape: JobShape::Serial { slots: 36 },
            runtime_secs: 1000,
            priority: 0,
            mem_per_slot_gib: 1.0,
        },
    );
    m.run_intervals(2);
    let placed: Vec<_> = m
        .qmaster()
        .running_jobs()
        .iter()
        .filter(|j| j.spec.name == "retry.sh")
        .flat_map(|j| j.hosts().to_vec())
        .collect();
    assert_eq!(placed.len(), 1);
    assert_ne!(placed[0], victim_node);
}

#[test]
fn abnormal_health_is_stored_only_when_abnormal() {
    // Abnormal-only retention: a healthy fleet writes zero Health points.
    let mut m = rig(4);
    m.run_intervals(3);
    let (rs, _) = m
        .db()
        .query_str("SELECT count(Code) FROM Health WHERE time >= 0 AND time < 4000000000")
        .unwrap();
    assert_eq!(rs.point_count(), 0, "healthy cluster wrote Health points");
}

#[test]
fn flaky_bmcs_mostly_recovered_by_retries() {
    let mut m = Monster::new(MonsterConfig {
        nodes: 12,
        workload: None,
        bmc: BmcConfig { failure_rate: 0.10, stall_rate: 0.0, ..BmcConfig::default() },
        ..MonsterConfig::default()
    });
    let s = m.run_interval().unwrap();
    // Single-attempt failure rate would be ~10%; after two retries the
    // residual is ~0.1% (48 requests => almost always 0, rarely 1).
    assert!(s.bmc_failures <= 1, "failures {}", s.bmc_failures);
}
