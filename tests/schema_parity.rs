//! Schema and scheduler-dialect parity: both storage schemas answer the
//! same questions, and the Slurm facade exposes the same cluster state as
//! native UGE.

use monster::builder::{build_plan, exec::execute, BuilderRequest, ExecMode};
use monster::collector::SchemaVersion;
use monster::redfish::bmc::BmcConfig;
use monster::scheduler::slurm::{ResourceManager, SlurmView};
use monster::tsdb::Aggregation;
use monster::{Monster, MonsterConfig};

fn deployment(schema: SchemaVersion, nodes: usize) -> Monster {
    let mut m = Monster::new(MonsterConfig {
        nodes,
        schema,
        seed: 99,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..MonsterConfig::default()
    });
    m.run_intervals_bulk(30);
    m
}

#[test]
fn both_schemas_answer_power_queries_identically() {
    let old = deployment(SchemaVersion::Previous, 4);
    let new = deployment(SchemaVersion::Optimized, 4);
    let req = BuilderRequest::new(old.now() - 1800, old.now() + 60, 300, Aggregation::Max).unwrap();
    let out_old = execute(
        old.db(),
        &build_plan(SchemaVersion::Previous, &old.node_ids(), &req),
        ExecMode::Sequential,
    )
    .unwrap();
    let out_new = execute(
        new.db(),
        &build_plan(SchemaVersion::Optimized, &new.node_ids(), &req),
        ExecMode::Sequential,
    )
    .unwrap();

    // Same seed → same sensors → the max node power per window must agree
    // across schemas (old stores it in PowerUsage, new in Power).
    for node in old.node_ids() {
        let series = |doc: &monster::json::Value| -> Vec<f64> {
            doc.get(&node.bmc_addr())
                .and_then(|n| n.get("power"))
                .and_then(|p| p.as_array())
                .map(|a| a.iter().filter_map(|p| p.get("value").and_then(|v| v.as_f64())).collect())
                .unwrap_or_default()
        };
        let a = series(&out_old.document);
        let b = series(&out_new.document);
        assert_eq!(a.len(), b.len(), "window counts differ for {node}");
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{node}: {x} vs {y}");
        }
    }
    // And the optimized schema did it with less physical work.
    assert!(out_new.cost.bytes < out_old.cost.bytes);
    assert!(out_new.cost.queries < out_old.cost.queries);
}

#[test]
fn slurm_view_matches_uge_state() {
    let m = deployment(SchemaVersion::Optimized, 6);
    let qm = m.qmaster();
    let slurm = SlurmView::new(qm);

    let nodes = slurm.nodes_payload();
    let node_arr = nodes.get("nodes").unwrap().as_array().unwrap();
    assert_eq!(node_arr.len(), 6);
    for n in node_arr {
        let name = n.get("name").unwrap().as_str().unwrap();
        let node = monster::util::NodeId::parse(name).unwrap();
        let report = qm.load_report(node).unwrap();
        let alloc = n.get("alloc_cpus").unwrap().as_i64().unwrap();
        assert_eq!(alloc, (report.cpu_usage * 36.0).round() as i64);
    }

    let jobs = slurm.jobs_payload();
    let job_arr = jobs.get("jobs").unwrap().as_array().unwrap();
    assert_eq!(job_arr.len(), qm.job_table().len());
    let running_in_slurm =
        job_arr.iter().filter(|j| j.get("job_state").unwrap().as_str() == Some("RUNNING")).count();
    assert_eq!(running_in_slurm, qm.running_jobs().len());
    assert_eq!(qm.dialect(), "uge");
}

#[test]
fn deterministic_deployments_are_bit_identical() {
    let a = deployment(SchemaVersion::Optimized, 3);
    let b = deployment(SchemaVersion::Optimized, 3);
    let sa = a.db().stats();
    let sb = b.db().stats();
    assert_eq!(sa, sb);
    let req = BuilderRequest::new(a.now() - 900, a.now() + 60, 300, Aggregation::Mean).unwrap();
    let qa = a.builder_query(&req, ExecMode::Sequential).unwrap();
    let qb = b.builder_query(&req, ExecMode::Sequential).unwrap();
    assert_eq!(qa.document, qb.document);
    assert_eq!(qa.query_time, qb.query_time);
}
