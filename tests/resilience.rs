//! Integration: the resilient collection path end-to-end — a deployment
//! with circuit breakers and deadline-aware sweeps rides out a dead BMC
//! (stale substitution, bounded makespans, recovery), and the resilience
//! series show up in a live `/metrics` scrape over a real socket.

use monster::http::{Client, Request};
use monster::redfish::bmc::BmcConfig;
use monster::redfish::resilience::ResilienceConfig;
use monster::sim::VDuration;
use monster::{obs, Monster, MonsterConfig};

fn resilient_deployment(nodes: usize, seed: u64) -> Monster {
    Monster::new(MonsterConfig {
        nodes,
        seed,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        resilience: Some(ResilienceConfig::default()),
        workload: None,
        horizon_secs: 0,
        ..MonsterConfig::default()
    })
}

#[test]
fn dead_bmc_degrades_gracefully_and_recovers() {
    let mut m = resilient_deployment(6, 31);
    let victim = m.node_ids()[0];
    let deadline = ResilienceConfig::default().sweep_deadline;

    // Interval 1: everything healthy; the victim's readings get cached as
    // last-known-good.
    let s1 = m.run_interval().unwrap();
    assert!(!s1.degraded);
    assert_eq!(s1.stale_points, 0);
    assert_eq!(s1.breakers_open, 0);

    // The BMC dies. Interval 2: its first request burns the retry budget,
    // trips the breaker, and the collector substitutes stale
    // last-known-good values for everything the node failed to deliver.
    m.cluster().set_bmc_alive(victim, false).unwrap();
    let s2 = m.run_interval().unwrap();
    assert!(s2.degraded);
    assert_eq!(s2.breakers_open, 1);
    assert!(s2.stale_points > 0, "no last-known-good substitution");
    assert_eq!(s2.stale_nodes.len(), 1);
    assert_eq!(s2.stale_nodes[0].0, victim);
    assert!(s2.collection_time <= deadline);

    // Intervals 3-4 (breaker cooldown): the victim is skipped wholesale;
    // staleness ages count up; makespans stay bounded.
    let s3 = m.run_interval().unwrap();
    let s4 = m.run_interval().unwrap();
    for s in [&s3, &s4] {
        assert!(s.degraded);
        assert!(s.bmc_skipped >= 4);
        assert_eq!(s.stale_nodes.len(), 1);
        assert!(s.collection_time <= deadline);
    }
    assert!(s4.stale_nodes[0].1 > s3.stale_nodes[0].1, "staleness age did not grow");

    // The BMC comes back: the half-open probe closes the breaker and the
    // deployment returns to fully fresh intervals.
    m.cluster().set_bmc_alive(victim, true).unwrap();
    let s5 = m.run_interval().unwrap(); // probe sweep
    assert_eq!(s5.breakers_open, 0);
    let s6 = m.run_interval().unwrap();
    assert!(!s6.degraded);
    assert_eq!(s6.stale_points, 0);
    assert_eq!(s6.bmc_skipped, 0);
}

#[test]
fn stale_substitutes_land_in_storage_tagged() {
    let mut m = resilient_deployment(4, 32);
    let victim = m.node_ids()[1];
    m.run_interval().unwrap();
    m.cluster().set_bmc_alive(victim, false).unwrap();
    m.run_interval().unwrap();

    // Power readings substituted for the dead node carry the Stale tag;
    // an explicit tag filter pulls exactly those.
    let q = format!(
        "SELECT count(Reading) FROM Power WHERE NodeId='{}' AND Stale='true' AND \
         time >= 0 AND time < 4000000000",
        victim.bmc_addr()
    );
    let (rs, _) = m.db().query_str(&q).unwrap();
    let stale_count: f64 =
        rs.series.iter().flat_map(|s| s.points.iter()).filter_map(|(_, v)| v.as_f64()).sum();
    assert!(stale_count >= 1.0, "no Stale-tagged Power points in storage");
}

#[test]
fn resilient_sweep_holds_deadline_on_quanah_scale_fleet() {
    // The paper's fleet size through the resilient path: the deadline is
    // honored by construction even at the 1868-request pool size.
    let mut m = Monster::new(MonsterConfig {
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        resilience: Some(ResilienceConfig::default()),
        workload: None,
        horizon_secs: 0,
        ..MonsterConfig::default()
    });
    let s = m.run_interval().unwrap();
    assert!(s.collection_time <= ResilienceConfig::default().sweep_deadline);
    assert!(s.collection_time > VDuration::from_secs(10), "suspiciously fast full sweep");
    // The 150-channel / 54 s budget is deliberately tight at this scale
    // (the legacy sweep averages ~55 s): a little shedding is acceptable,
    // wholesale shedding is not.
    let lost = s.bmc_failures + s.bmc_skipped;
    assert!(lost * 10 < 1868, "lost {lost} of 1868 requests");
}

#[test]
fn metrics_endpoint_exposes_resilience_series() {
    let mut m = resilient_deployment(3, 33);
    let victim = m.node_ids()[2];
    m.run_interval().unwrap();
    m.cluster().set_bmc_alive(victim, false).unwrap();
    m.run_interval().unwrap(); // trips the breaker, writes stale points

    // Scrape the exposition exactly as a Prometheus agent would.
    let server = m.serve_api(0).unwrap();
    let client = Client::new();
    let resp = client.send_ok(server.addr(), &Request::get("/metrics")).unwrap();
    let text = String::from_utf8(resp.body.to_vec()).unwrap();
    let scrape = |name: &str| {
        obs::sample(&text, name).unwrap_or_else(|| panic!("{name} missing from exposition"))
    };

    // Breaker-state gauges: the dead node's breaker is open, the others
    // closed.
    assert!(scrape("monster_redfish_breakers_open") >= 1.0);
    assert!(scrape("monster_redfish_breakers_closed") >= 2.0);
    // The jittered-backoff histogram saw the dead node's retry delays.
    assert!(scrape("monster_redfish_backoff_seconds_count") >= 1.0);
    // Stale substitution and skip accounting reached the collector series.
    assert!(scrape("monster_collector_stale_points_total") >= 1.0);
    assert!(scrape("monster_redfish_skipped_total") >= 1.0);
}
