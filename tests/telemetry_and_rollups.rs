//! Integration: the two §VI-era upgrades working together — telemetry-rate
//! collection feeding continuous-query roll-ups — plus snapshot durability
//! across a simulated storage-host restart.

use monster::builder::{BuilderRequest, ExecMode};
use monster::redfish::bmc::BmcConfig;
use monster::redfish::telemetry::{TelemetryConfig, TelemetryService};
use monster::tsdb::{snapshot, Aggregation, DbConfig};
use monster::{Monster, MonsterConfig};

fn deployment(nodes: usize) -> Monster {
    Monster::new(MonsterConfig {
        nodes,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..MonsterConfig::default()
    })
}

#[test]
fn telemetry_collection_yields_sub_interval_samples() {
    let mut m = deployment(4);
    let mut service = TelemetryService::new(TelemetryConfig::default());
    let written = m.run_intervals_telemetry(&mut service, 10).unwrap();
    assert!(written > 0);

    // Ten 60 s intervals at a 10 s cadence: 60 thermal samples per node.
    let (rs, _) = m
        .db()
        .query_str(
            "SELECT count(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
             Label='NodePower' AND time >= 0 AND time < 4000000000",
        )
        .unwrap();
    let count = rs.series[0].points[0].1.as_f64().unwrap();
    assert_eq!(count, 60.0, "expected 6 samples per interval x 10 intervals");
}

#[test]
fn telemetry_plus_rollups_compose() {
    let mut m = deployment(3);
    m.enable_rollups(600).unwrap(); // 10-minute roll-ups
    let mut service = TelemetryService::new(TelemetryConfig::default());
    m.run_intervals_telemetry(&mut service, 30).unwrap(); // 30 minutes

    // A 10-minute-window max query routes to the rollup...
    let req = BuilderRequest::new(m.now() - 1800, m.now(), 600, Aggregation::Max).unwrap();
    let out = m.builder_query(&req, ExecMode::Sequential).unwrap();
    // ...and the answers match a raw query bypassing the rollup.
    let (raw, _) = m
        .db()
        .query_str(&format!(
            "SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
             Label='NodePower' AND time >= {} AND time < {} GROUP BY time(10m)",
            (m.now() - 1800).as_secs(),
            m.now().as_secs()
        ))
        .unwrap();
    let doc_power = out
        .document
        .get("10.101.1.1")
        .and_then(|n| n.get("power"))
        .and_then(|p| p.as_array())
        .expect("power series");
    let raw_points = &raw.series[0].points;
    assert_eq!(doc_power.len(), raw_points.len());
    for (a, (_, b)) in doc_power.iter().zip(raw_points) {
        assert_eq!(a.get("value").unwrap().as_f64(), b.as_f64());
    }
}

#[test]
fn snapshot_survives_restart_and_continues() {
    let mut m = deployment(3);
    m.run_intervals_bulk(20);
    let before = m.db().stats();

    // "Storage host restart": snapshot, new empty DB, restore.
    let dir = std::env::temp_dir().join(format!("monster-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("restart.mtsdb");
    snapshot::save_to_file(m.db(), &path).unwrap();
    let restored = snapshot::load_from_file(&path, DbConfig::default()).unwrap();
    assert_eq!(restored.stats().points, before.points);
    assert_eq!(restored.stats().cardinality, before.cardinality);

    // The restored instance answers the same queries.
    let q = format!(
        "SELECT mean(Reading) FROM Power WHERE time >= {} AND time < {} GROUP BY time(5m)",
        (m.now() - 1200).as_secs(),
        m.now().as_secs()
    );
    let (a, _) = m.db().query_str(&q).unwrap();
    let (b, _) = restored.query_str(&q).unwrap();
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).ok();
}
