//! Integration: the two §VI-era upgrades working together — telemetry-rate
//! collection feeding continuous-query roll-ups — plus snapshot durability
//! across a simulated storage-host restart, and the self-monitoring layer
//! observed end-to-end (in-process counter deltas and a live `/metrics`
//! scrape over a real socket).

use monster::builder::{BuilderRequest, ExecMode};
use monster::http::{Client, Request};
use monster::redfish::bmc::BmcConfig;
use monster::redfish::telemetry::{TelemetryConfig, TelemetryService};
use monster::tsdb::{snapshot, Aggregation, DbConfig};
use monster::{obs, Monster, MonsterConfig};
use std::sync::Mutex;

fn deployment(nodes: usize) -> Monster {
    Monster::new(MonsterConfig {
        nodes,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..MonsterConfig::default()
    })
}

/// The global registry is process-wide and the harness runs tests
/// concurrently, so tests asserting *exact* counter deltas serialise their
/// snapshot → `run_interval` → snapshot windows behind this lock. Only the
/// wire path (`run_interval`) drives the redfish/collector series; the bulk
/// and telemetry loaders used by the other tests stay uninstrumented.
static INTERVAL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn telemetry_collection_yields_sub_interval_samples() {
    let mut m = deployment(4);
    let mut service = TelemetryService::new(TelemetryConfig::default());
    let written = m.run_intervals_telemetry(&mut service, 10).unwrap();
    assert!(written > 0);

    // Ten 60 s intervals at a 10 s cadence: 60 thermal samples per node.
    let (rs, _) = m
        .db()
        .query_str(
            "SELECT count(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
             Label='NodePower' AND time >= 0 AND time < 4000000000",
        )
        .unwrap();
    let count = rs.series[0].points[0].1.as_f64().unwrap();
    assert_eq!(count, 60.0, "expected 6 samples per interval x 10 intervals");
}

#[test]
fn telemetry_plus_rollups_compose() {
    let mut m = deployment(3);
    m.enable_rollups(600).unwrap(); // 10-minute roll-ups
    let mut service = TelemetryService::new(TelemetryConfig::default());
    m.run_intervals_telemetry(&mut service, 30).unwrap(); // 30 minutes

    // A 10-minute-window max query routes to the rollup...
    let req = BuilderRequest::new(m.now() - 1800, m.now(), 600, Aggregation::Max).unwrap();
    let out = m.builder_query(&req, ExecMode::Sequential).unwrap();
    // ...and the answers match a raw query bypassing the rollup.
    let (raw, _) = m
        .db()
        .query_str(&format!(
            "SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
             Label='NodePower' AND time >= {} AND time < {} GROUP BY time(10m)",
            (m.now() - 1800).as_secs(),
            m.now().as_secs()
        ))
        .unwrap();
    let doc_power = out
        .document
        .get("10.101.1.1")
        .and_then(|n| n.get("power"))
        .and_then(|p| p.as_array())
        .expect("power series");
    let raw_points = &raw.series[0].points;
    assert_eq!(doc_power.len(), raw_points.len());
    for (a, (_, b)) in doc_power.iter().zip(raw_points) {
        assert_eq!(a.get("value").unwrap().as_f64(), b.as_f64());
    }
}

#[test]
fn snapshot_survives_restart_and_continues() {
    let mut m = deployment(3);
    m.run_intervals_bulk(20);
    let before = m.db().stats();

    // "Storage host restart": snapshot, new empty DB, restore.
    let dir = std::env::temp_dir().join(format!("monster-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("restart.mtsdb");
    snapshot::save_to_file(m.db(), &path).unwrap();
    let restored = snapshot::load_from_file(&path, DbConfig::default()).unwrap();
    assert_eq!(restored.stats().points, before.points);
    assert_eq!(restored.stats().cardinality, before.cardinality);

    // The restored instance answers the same queries.
    let q = format!(
        "SELECT mean(Reading) FROM Power WHERE time >= {} AND time < {} GROUP BY time(5m)",
        (m.now() - 1200).as_secs(),
        m.now().as_secs()
    );
    let (a, _) = m.db().query_str(&q).unwrap();
    let (b, _) = restored.query_str(&q).unwrap();
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interval_metrics_match_sweep_outcome() {
    let mut m = deployment(4);
    let sweeps = obs::counter("monster_redfish_sweeps_total");
    let requests = obs::counter("monster_redfish_requests_total");
    let failures = obs::counter("monster_redfish_failures_total");
    let intervals = obs::counter("monster_collector_intervals_total");
    let points = obs::counter("monster_collector_points_total");
    let batches = obs::counter("monster_tsdb_write_batches_total");
    let written = obs::counter("monster_tsdb_points_written_total");
    let request_histo = obs::histo("monster_redfish_request_seconds");

    let guard = INTERVAL_LOCK.lock().unwrap();
    let before = [
        sweeps.get(),
        requests.get(),
        failures.get(),
        intervals.get(),
        points.get(),
        request_histo.count(),
    ];
    let written_before = written.get();
    let batches_before = batches.get();
    let summary = m.run_interval().unwrap();
    // Exactly one sweep of nodes x 4 categories, every request timed.
    assert_eq!(sweeps.get() - before[0], 1);
    assert_eq!(requests.get() - before[1], 16);
    assert_eq!(failures.get() - before[2], summary.bmc_failures as u64);
    assert_eq!(intervals.get() - before[3], 1);
    assert_eq!(points.get() - before[4], summary.points as u64);
    assert_eq!(request_histo.count() - before[5], 16);
    drop(guard);

    // Storage counters are also fed by the bulk loaders in sibling tests,
    // so the write-path deltas are lower bounds rather than exact.
    assert!(batches.get() > batches_before);
    assert!(written.get() - written_before >= summary.points as u64);
}

#[test]
fn metrics_endpoint_serves_live_pipeline_counters() {
    let mut m = deployment(3);
    {
        let _guard = INTERVAL_LOCK.lock().unwrap();
        m.run_interval().unwrap();
    }

    let server = m.serve_api(0).unwrap();
    let client = Client::new();

    // Drive the query path so `monster_tsdb_queries_total` is non-zero
    // even if this test runs first in the process.
    let url = format!(
        "/v1/metrics?start={}&end={}&interval=1m&aggregation=max",
        (m.now() - 300).to_rfc3339(),
        m.now().to_rfc3339()
    );
    client.send_ok(server.addr(), &Request::get(&url)).unwrap();

    // Scrape the exposition exactly as a Prometheus agent would.
    let resp = client.send_ok(server.addr(), &Request::get("/metrics")).unwrap();
    let text = String::from_utf8(resp.body.to_vec()).unwrap();
    let scrape = |name: &str| {
        obs::sample(&text, name).unwrap_or_else(|| panic!("{name} missing from exposition"))
    };
    assert!(scrape("monster_redfish_sweeps_total") >= 1.0);
    assert!(scrape("monster_redfish_requests_total") >= 12.0);
    assert!(scrape("monster_collector_intervals_total") >= 1.0);
    assert!(scrape("monster_tsdb_write_batches_total") >= 1.0);
    assert!(scrape("monster_tsdb_points_written_total") >= 1.0);
    assert!(scrape("monster_tsdb_queries_total") >= 1.0);
    assert!(scrape("monster_builder_requests_total") >= 1.0);
    assert!(scrape("monster_redfish_request_seconds_count") >= 12.0);

    // The trace endpoint replays the sweep's vtime-stamped span.
    let trace =
        client.send_ok(server.addr(), &Request::get("/debug/trace")).unwrap().json_body().unwrap();
    let events = trace.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents");
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()).is_some_and(|n| n == "redfish.sweep")
        }),
        "no redfish.sweep span in /debug/trace"
    );
}
