//! Regression guards for the paper's headline results, at a reduced scale
//! that runs in seconds under `cargo test`. The full-scale numbers live in
//! EXPERIMENTS.md; these tests pin the *relationships* so refactors cannot
//! silently break them.

use monster::builder::{build_plan, exec::execute, BuilderRequest, ExecMode};
use monster::collector::SchemaVersion;
use monster::redfish::bmc::BmcConfig;
use monster::redfish::cluster::{ClusterConfig, SimulatedCluster};
use monster::redfish::RedfishClient;
use monster::scheduler::WorkloadConfig;
use monster::sim::DiskModel;
use monster::tsdb::Aggregation;
use monster::{Monster, MonsterConfig};

/// A small populated deployment: 8 nodes, one day at 5-minute cadence.
fn populated(schema: SchemaVersion, disk: DiskModel) -> Monster {
    let mut m = Monster::new(MonsterConfig {
        nodes: 8,
        seed: 1234,
        schema,
        interval_secs: 300,
        disk,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        workload: Some(WorkloadConfig {
            mpi_users: 1,
            array_users: 1,
            serial_users: 3,
            submissions_per_user_day: 4.0,
            seed: 9,
        }),
        horizon_secs: 86_400,
        amplify_to_quanah: true,
        ..MonsterConfig::default()
    });
    m.run_intervals_bulk(288);
    m
}

fn day_query(m: &Monster, mode: ExecMode) -> monster::builder::BuilderOutcome {
    let req = BuilderRequest::new(m.now() - 86_400, m.now(), 1800, Aggregation::Max).unwrap();
    let plan = build_plan(m.config().schema, &m.node_ids(), &req);
    execute(m.db(), &plan, mode).unwrap()
}

/// Fig. 12's direction: HDD strictly slower than SSD, by a bounded factor.
#[test]
fn band_hdd_slower_than_ssd() {
    let hdd = populated(SchemaVersion::Previous, DiskModel::HDD);
    let ssd = populated(SchemaVersion::Previous, DiskModel::SSD);
    let t_hdd = day_query(&hdd, ExecMode::Sequential).query_processing_time();
    let t_ssd = day_query(&ssd, ExecMode::Sequential).query_processing_time();
    let ratio = t_hdd.as_secs_f64() / t_ssd.as_secs_f64();
    assert!((1.05..6.0).contains(&ratio), "HDD/SSD ratio {ratio:.2}");
}

/// Fig. 13's direction: the optimized schema stores far less.
#[test]
fn band_schema_volume_shrinks() {
    let old = populated(SchemaVersion::Previous, DiskModel::SSD);
    let new = populated(SchemaVersion::Optimized, DiskModel::SSD);
    let ratio = new.db().stats().encoded_bytes as f64 / old.db().stats().encoded_bytes as f64;
    assert!(ratio < 0.40, "optimized/previous at-rest ratio {ratio:.3}");
    let wire = new.db().stats().wire_bytes as f64 / old.db().stats().wire_bytes as f64;
    assert!(wire < 0.45, "wire ratio {wire:.3}");
    assert!(new.db().stats().measurements < old.db().stats().measurements / 10);
}

/// Fig. 14's direction: the optimized schema queries faster on identical
/// hardware.
#[test]
fn band_schema_speeds_up_queries() {
    let old = populated(SchemaVersion::Previous, DiskModel::SSD);
    let new = populated(SchemaVersion::Optimized, DiskModel::SSD);
    let t_old = day_query(&old, ExecMode::Sequential).query_processing_time();
    let t_new = day_query(&new, ExecMode::Sequential).query_processing_time();
    let ratio = t_old.as_secs_f64() / t_new.as_secs_f64();
    assert!((1.2..4.0).contains(&ratio), "schema speedup {ratio:.2}");
}

/// Fig. 15's direction: concurrency pays off well beyond 2x but below the
/// worker count (shared storage backend).
#[test]
fn band_concurrency_speedup() {
    let m = populated(SchemaVersion::Optimized, DiskModel::SSD);
    let t_seq = day_query(&m, ExecMode::Sequential).query_processing_time();
    let t_con = day_query(&m, ExecMode::Concurrent { workers: 16 }).query_processing_time();
    let speedup = t_seq.as_secs_f64() / t_con.as_secs_f64();
    assert!((3.0..16.0).contains(&speedup), "concurrent speedup {speedup:.2}");
}

/// §III-B1's statistics: request mean near 4.29 s, sweep near 55 s, high
/// success — at the full 467-node scale (cheap: latency is simulated).
#[test]
fn band_sweep_statistics() {
    let cluster = SimulatedCluster::new(ClusterConfig::default());
    let client = RedfishClient::default();
    let sweep = client.sweep(&cluster);
    let mean = sweep.mean_request_secs();
    assert!((3.8..4.8).contains(&mean), "mean request {mean:.2} s");
    let makespan = sweep.makespan.as_secs_f64();
    assert!((40.0..75.0).contains(&makespan), "makespan {makespan:.1} s");
    assert!(sweep.successes() as f64 / sweep.results.len() as f64 > 0.95);
}

/// Fig. 18's direction: responses compress dramatically.
#[test]
fn band_compression_ratio() {
    let m = populated(SchemaVersion::Optimized, DiskModel::SSD);
    let out = day_query(&m, ExecMode::Concurrent { workers: 8 });
    let json = out.document.to_string_compact();
    let packed = monster::mzlib::compress(json.as_bytes(), monster::mzlib::Level::default());
    let ratio = packed.len() as f64 / json.len() as f64;
    assert!(ratio < 0.30, "compression ratio {ratio:.3}");
}

/// Fig. 11's direction: BMC queries dominate the middleware profile.
#[test]
fn band_bmc_dominates_profile() {
    let m = populated(SchemaVersion::Previous, DiskModel::HDD);
    let req = BuilderRequest::new(m.now() - 86_400, m.now(), 1800, Aggregation::Max).unwrap();
    let plan = build_plan(SchemaVersion::Previous, &m.node_ids(), &req);
    let total =
        execute(m.db(), &plan, ExecMode::Sequential).unwrap().query_processing_time().as_secs_f64();
    let bmc_plan: Vec<_> =
        plan.iter().filter(|p| p.group == monster::builder::QueryGroup::Bmc).cloned().collect();
    let bmc = execute(m.db(), &bmc_plan, ExecMode::Sequential)
        .unwrap()
        .query_processing_time()
        .as_secs_f64();
    assert!(bmc / total > 0.55, "BMC share {:.2}", bmc / total);
}

/// §III-C's direction: interval volume scales to ~10k points at 467 nodes.
#[test]
fn band_interval_volume() {
    // 8 nodes busy cluster: points/interval scaled by 467/8 should land in
    // the right decade.
    let mut m = populated(SchemaVersion::Optimized, DiskModel::SSD);
    let before = m.db().stats().points;
    m.run_intervals_bulk(1);
    let per_interval = m.db().stats().points - before;
    let scaled = per_interval as f64 * 467.0 / 8.0;
    assert!((4_000.0..40_000.0).contains(&scaled), "scaled interval volume {scaled:.0}");
}
