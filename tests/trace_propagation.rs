//! Integration: one distributed trace stitches a whole pipeline pass —
//! the collection interval's root span, the Redfish sweep, per-BMC
//! retry/skip children, and the TSDB write batches — and W3C
//! `traceparent` propagation round-trips through the Metrics Builder
//! HTTP API (well-formed headers join the caller's trace; malformed ones
//! start a fresh root instead of erroring).

use monster::http::{Client, Request, Status};
use monster::obs;
use monster::redfish::bmc::BmcConfig;
use monster::redfish::resilience::ResilienceConfig;
use monster::{Monster, MonsterConfig};

fn resilient_deployment(nodes: usize, seed: u64) -> Monster {
    // Room for every span these tests generate: the global ring is shared
    // across the whole test binary.
    obs::global().set_span_capacity(20_000);
    Monster::new(MonsterConfig {
        nodes,
        seed,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        resilience: Some(ResilienceConfig::default()),
        workload: None,
        horizon_secs: 0,
        ..MonsterConfig::default()
    })
}

#[test]
fn one_trace_links_interval_sweep_skips_and_storage_writes() {
    let mut m = resilient_deployment(6, 31);
    let victim = m.node_ids()[0];

    // Interval 1: healthy, caches last-known-good. Then the BMC dies:
    // interval 2 burns the retry budget and trips the breaker; interval 3
    // skips the victim wholesale (breaker open).
    m.run_interval().unwrap();
    m.cluster().set_bmc_alive(victim, false).unwrap();
    let s2 = m.run_interval().unwrap();
    let s3 = m.run_interval().unwrap();
    assert!(!s3.skipped_nodes.is_empty(), "breaker-open interval skipped nobody");

    let spans = obs::global().recent_spans();

    // Every interval runs under its own distinct trace.
    assert_ne!(s2.trace.trace, s3.trace.trace);

    // Interval 3's lineage: collector.interval (root) -> redfish.sweep ->
    // redfish.skip children carrying the node and SkipReason attributes.
    let in_trace: Vec<_> = spans.iter().filter(|s| s.trace == s3.trace.trace).collect();
    let root = in_trace
        .iter()
        .find(|s| s.name == "collector.interval" && s.parent.is_none())
        .expect("interval root span");
    let sweep = in_trace.iter().find(|s| s.name == "redfish.sweep").expect("sweep span");
    assert_eq!(sweep.parent, Some(root.span));
    for (node, reason) in &s3.skipped_nodes {
        let skip = in_trace
            .iter()
            .find(|s| s.name == "redfish.skip" && s.attr("node") == Some(&node.to_string()))
            .unwrap_or_else(|| panic!("no skip span for {node}"));
        assert_eq!(skip.parent, Some(sweep.span), "skip not a child of the sweep");
        assert_eq!(skip.attr("SkipReason"), Some(format!("{reason:?}").as_str()));
    }

    // The storage writes happened under the same trace, as children of
    // the interval root.
    let write = in_trace.iter().find(|s| s.name == "tsdb.write_batch").expect("write span");
    assert_eq!(write.parent, Some(root.span));

    // Interval 2 recorded the victim's exhausted request under *its*
    // trace, child of that interval's sweep.
    let t2: Vec<_> = spans.iter().filter(|s| s.trace == s2.trace.trace).collect();
    let sweep2 = t2.iter().find(|s| s.name == "redfish.sweep").expect("interval-2 sweep");
    let req = t2
        .iter()
        .find(|s| s.name == "redfish.request" && s.attr("node") == Some(&victim.to_string()))
        .expect("failed-request span");
    assert_eq!(req.parent, Some(sweep2.span));
    assert!(req.attr("attempts").is_some());
}

#[test]
fn traceparent_round_trips_through_the_http_api() {
    let mut m = resilient_deployment(4, 7);
    m.run_intervals(3);
    let server = m.serve_api(0).unwrap();
    let client = Client::new();
    let url = format!(
        "/v1/metrics?start={}&end={}&interval=5m&aggregation=max",
        (m.now() - 180).to_rfc3339(),
        m.now().to_rfc3339()
    );

    let inbound = obs::TraceContext::root();
    let resp = client
        .send_ok(
            server.addr(),
            &Request::get(&url).with_header("traceparent", inbound.to_traceparent()),
        )
        .unwrap();

    // The response echoes our trace with the server's own span id, plus
    // the freshness header.
    let echoed =
        obs::TraceContext::parse_traceparent(resp.headers.get("traceparent").expect("traceparent"))
            .expect("well-formed traceparent");
    assert_eq!(echoed.trace, inbound.trace);
    assert_ne!(echoed.span, inbound.span);
    let lag: f64 =
        resp.headers.get("X-Freshness-Lag-Seconds").expect("freshness header").parse().unwrap();
    assert!(lag >= 0.0);

    // Server-side spans joined the caller's trace: the API request span
    // hangs off our context, execution and the storage scans below it.
    let spans = obs::global().recent_spans();
    let ours: Vec<_> = spans.iter().filter(|s| s.trace == inbound.trace).collect();
    let api = ours.iter().find(|s| s.name == "builder.api_request").expect("api span");
    assert_eq!(api.parent, Some(inbound.span));
    let exec = ours.iter().find(|s| s.name == "builder.execute").expect("execute span");
    assert_eq!(exec.parent, Some(api.span));
    let scan = ours.iter().find(|s| s.name == "tsdb.query_scan").expect("query-scan span");
    assert_eq!(scan.parent, Some(exec.span));
}

#[test]
fn malformed_traceparent_starts_a_new_root_not_a_500() {
    let mut m = resilient_deployment(3, 11);
    m.run_intervals(2);
    let server = m.serve_api(0).unwrap();
    let client = Client::new();
    let url = format!(
        "/v1/metrics?start={}&end={}&interval=5m&aggregation=max",
        (m.now() - 120).to_rfc3339(),
        m.now().to_rfc3339()
    );

    let mut minted = Vec::new();
    for bad in [
        "garbage",
        "00-00000000000000000000000000000000-0000000000000000-01",
        "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
        "00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01",
    ] {
        let resp = client
            .send(server.addr(), &Request::get(&url).with_header("traceparent", bad))
            .unwrap();
        assert_eq!(resp.status, Status::OK, "malformed traceparent {bad:?} broke the request");
        let fresh = obs::TraceContext::parse_traceparent(
            resp.headers.get("traceparent").expect("traceparent"),
        )
        .expect("response header must still be well-formed");
        minted.push(fresh.trace);
    }
    // Each rejected header minted a distinct fresh root trace.
    minted.sort_unstable_by_key(|t| t.0);
    let before = minted.len();
    minted.dedup();
    assert_eq!(minted.len(), before, "fresh roots were not distinct");
}
