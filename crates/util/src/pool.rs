//! A bounded worker pool on crossbeam channels.
//!
//! MonSTer fans work out in two hot places: the Redfish client (1868 BMC
//! requests per sweep) and the concurrent query engine of the Metrics
//! Builder (Fig. 15). Both need the same shape: a fixed number of worker
//! threads draining a queue of jobs, with results collected in input order.
//!
//! The pool is deliberately simple — no work stealing, no dynamic sizing —
//! because the workloads are embarrassingly parallel and latency-bound, and
//! determinism matters for the reproduction harness.

use crossbeam::channel;
use std::thread;

/// A fixed-size thread pool executing closures.
///
/// Jobs are `FnOnce() + Send` closures; [`ThreadPool::scope_map`] is the
/// high-level entry point most callers want.
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// Create a pool descriptor with `workers` threads (threads are spawned
    /// per [`scope_map`](Self::scope_map) call using scoped threads, so no
    /// state outlives the call).
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        ThreadPool { workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Apply `f` to every item of `items` using the pool, returning results
    /// in input order. Items are distributed dynamically (a shared channel),
    /// so long-running items do not convoy short ones.
    pub fn scope_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        let (tx, rx) = channel::unbounded::<(usize, T)>();
        for pair in items.into_iter().enumerate() {
            tx.send(pair).expect("queue send");
        }
        drop(tx);

        let (out_tx, out_rx) = channel::unbounded::<(usize, R)>();
        thread::scope(|s| {
            for _ in 0..workers {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                let f = &f;
                s.spawn(move || {
                    while let Ok((idx, item)) = rx.recv() {
                        let r = f(item);
                        if out_tx.send((idx, r)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(out_tx);
        });

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((idx, r)) = out_rx.recv() {
            slots[idx] = Some(r);
        }
        slots.into_iter().map(|s| s.expect("worker produced every slot")).collect()
    }

    /// Like [`scope_map`](Self::scope_map) but also reports, for each item,
    /// which of the `workers` logical workers executed it. The simulation
    /// layer uses this to combine per-worker virtual time with `max()`.
    pub fn scope_map_tagged<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<(usize, R)>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        let (tx, rx) = channel::unbounded::<(usize, T)>();
        for pair in items.into_iter().enumerate() {
            tx.send(pair).expect("queue send");
        }
        drop(tx);

        let (out_tx, out_rx) = channel::unbounded::<(usize, usize, R)>();
        thread::scope(|s| {
            for w in 0..workers {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                let f = &f;
                s.spawn(move || {
                    while let Ok((idx, item)) = rx.recv() {
                        let r = f(item);
                        if out_tx.send((idx, w, r)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(out_tx);
        });

        let mut slots: Vec<Option<(usize, R)>> = (0..n).map(|_| None).collect();
        while let Ok((idx, w, r)) = out_rx.recv() {
            slots[idx] = Some((w, r));
        }
        slots.into_iter().map(|s| s.expect("worker produced every slot")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maps_in_order() {
        let pool = ThreadPool::new(4);
        let out = pool.scope_map((0..100).collect(), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = ThreadPool::new(4);
        let out: Vec<i32> = pool.scope_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_still_completes() {
        let pool = ThreadPool::new(1);
        let out = pool.scope_map(vec!["a", "bb", "ccc"], |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let pool = ThreadPool::new(8);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.scope_map((0..64).collect::<Vec<i32>>(), |_| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            concurrent.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) > 1, "expected parallel execution");
    }

    #[test]
    fn tagged_map_tags_are_valid_workers() {
        let pool = ThreadPool::new(3);
        let out = pool.scope_map_tagged((0..40).collect::<Vec<i32>>(), |x| x + 1);
        assert_eq!(out.len(), 40);
        for (i, (w, r)) in out.iter().enumerate() {
            assert!(*w < 3);
            assert_eq!(*r, i as i32 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ThreadPool::new(0);
    }
}
