//! `monster-util` — shared foundations for the MonSTer workspace.
//!
//! This crate hosts the small building blocks every other MonSTer crate
//! needs:
//!
//! * [`error`] — the workspace-wide error type and `Result` alias;
//! * [`time`] — epoch seconds, RFC 3339 parsing/formatting, and the
//!   human-readable interval grammar (`"5m"`, `"72h"`) used by the Metrics
//!   Builder API;
//! * [`stats`] — streaming and batch descriptive statistics used by the
//!   evaluation harness and the analysis crate;
//! * [`pool`] — a bounded worker pool built on crossbeam channels, used by
//!   the Redfish client fan-out and the concurrent query engine;
//! * [`bytesize`] — human byte-size formatting for the volume experiments;
//! * [`ids`] — strongly-typed identifiers (nodes, jobs, users) shared by the
//!   scheduler, collector, and storage layers.

#![warn(missing_docs)]

pub mod bytesize;
pub mod error;
pub mod ids;
pub mod pool;
pub mod stats;
pub mod time;

pub use error::{Error, Result};
pub use ids::{JobId, NodeId, UserName};
pub use time::EpochSecs;
