//! Workspace-wide error type.
//!
//! MonSTer spans many subsystems (HTTP, TSDB, scheduler, Redfish, codecs);
//! each reports failures through the same [`Error`] enum so errors can cross
//! crate boundaries without conversion boilerplate.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type shared by all MonSTer crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Malformed input to a parser (JSON, InfluxQL, line protocol, HTTP,
    /// timestamps, intervals). Carries a human-readable description.
    Parse(String),
    /// A request referenced something that does not exist (measurement,
    /// node, job, HTTP route, Redfish resource).
    NotFound(String),
    /// A request was syntactically valid but semantically unacceptable
    /// (bad aggregation for a field type, zero-length interval, ...).
    Invalid(String),
    /// A network-level failure in the simulated or real transport:
    /// connection refused, reset, dropped response.
    Network(String),
    /// An operation exceeded its deadline (BMC read timeout, HTTP timeout).
    Timeout(String),
    /// The peer answered with an HTTP error status.
    Http {
        /// The HTTP status code.
        status: u16,
        /// The response body or reason phrase.
        message: String,
    },
    /// Data failed an integrity check (corrupt compressed stream, bad
    /// Gorilla block, checksum mismatch).
    Corrupt(String),
    /// An I/O error from the host OS (real sockets, file snapshots).
    Io(String),
    /// The subsystem is shutting down or a channel was disconnected.
    Closed(String),
}

impl Error {
    /// Shorthand constructor for [`Error::Parse`].
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }

    /// Shorthand constructor for [`Error::Invalid`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::Invalid(msg.into())
    }

    /// Shorthand constructor for [`Error::NotFound`].
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }

    /// True when retrying the same operation could plausibly succeed
    /// (transient network and timeout failures). The Redfish client uses
    /// this to decide whether a request goes back into the retry queue.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Network(_) | Error::Timeout(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Invalid(m) => write!(f, "invalid: {m}"),
            Error::Network(m) => write!(f, "network error: {m}"),
            Error::Timeout(m) => write!(f, "timeout: {m}"),
            Error::Http { status, message } => write!(f, "http {status}: {message}"),
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::Closed(m) => write!(f, "closed: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                Error::Timeout(e.to_string())
            }
            _ => Error::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_variant_and_message() {
        assert_eq!(Error::parse("bad token").to_string(), "parse error: bad token");
        assert_eq!(
            Error::Http { status: 404, message: "gone".into() }.to_string(),
            "http 404: gone"
        );
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::Network("reset".into()).is_retryable());
        assert!(Error::Timeout("read".into()).is_retryable());
        assert!(!Error::parse("x").is_retryable());
        assert!(!Error::Corrupt("x".into()).is_retryable());
    }

    #[test]
    fn io_error_conversion_maps_timeouts() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::TimedOut, "t").into();
        assert!(matches!(e, Error::Timeout(_)));
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "f").into();
        assert!(matches!(e, Error::Io(_)));
    }
}
