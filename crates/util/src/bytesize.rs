//! Human-readable byte sizes for the volume experiments (Figs. 13 & 18).

use std::fmt;

/// A byte count that `Display`s with binary-ish units the way the paper's
/// figures do (KB/MB/GB with 1024 steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Construct from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Kilobytes (1024 bytes) as a float, for rate arithmetic like the
    /// paper's Table IV ("KB/s").
    pub fn kb(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Megabytes as a float.
    pub fn mb(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Gigabytes as a float.
    pub fn gb(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
        let mut v = self.0 as f64;
        let mut unit = 0;
        while v >= 1024.0 && unit < UNITS.len() - 1 {
            v /= 1024.0;
            unit += 1;
        }
        if unit == 0 {
            write!(f, "{} B", self.0)
        } else {
            write!(f, "{:.2} {}", v, UNITS[unit])
        }
    }
}

impl std::ops::Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl std::iter::Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_with_units() {
        assert_eq!(ByteSize(512).to_string(), "512 B");
        assert_eq!(ByteSize(19 * 1024).to_string(), "19.00 KB");
        assert_eq!(ByteSize(5 * 1024 * 1024).to_string(), "5.00 MB");
        assert_eq!(ByteSize(3 * 1024 * 1024 * 1024).to_string(), "3.00 GB");
    }

    #[test]
    fn unit_conversions() {
        let b = ByteSize(1024 * 1024);
        assert_eq!(b.kb(), 1024.0);
        assert_eq!(b.mb(), 1.0);
        assert!((b.gb() - 1.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn add_and_sum() {
        let total: ByteSize = [ByteSize(10), ByteSize(20), ByteSize(30)].into_iter().sum();
        assert_eq!(total, ByteSize(60));
        assert_eq!(ByteSize(1) + ByteSize(2), ByteSize(3));
    }
}
