//! Strongly-typed identifiers shared across MonSTer.
//!
//! The Quanah cluster addresses BMCs by management-network IPv4 addresses
//! (`10.101.<chassis>.<slot>`, e.g. the `"10.101.1.1"` of the paper's
//! Figs. 4–5) and labels nodes `"<chassis>-<slot>"` (e.g. node `"1-31"` of
//! Fig. 8). [`NodeId`] owns both conventions so every crate derives them the
//! same way.

use std::fmt;

/// A compute node, identified by its (chassis, slot) position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// Chassis number, 1-based.
    pub chassis: u16,
    /// Slot within the chassis, 1-based.
    pub slot: u16,
}

impl NodeId {
    /// Construct from chassis and slot numbers (both 1-based).
    pub const fn new(chassis: u16, slot: u16) -> Self {
        NodeId { chassis, slot }
    }

    /// Enumerate the node ids of a cluster laid out as `nodes` machines
    /// packed `slots_per_chassis` to a chassis, in management-network order.
    pub fn enumerate(nodes: usize, slots_per_chassis: u16) -> Vec<NodeId> {
        assert!(slots_per_chassis > 0);
        (0..nodes)
            .map(|i| {
                NodeId::new((i as u16) / slots_per_chassis + 1, (i as u16) % slots_per_chassis + 1)
            })
            .collect()
    }

    /// The BMC's management-network address, `10.101.<chassis>.<slot>`.
    pub fn bmc_addr(&self) -> String {
        format!("10.101.{}.{}", self.chassis, self.slot)
    }

    /// The human label used in dashboards: `<chassis>-<slot>` (Fig. 8's
    /// node `"1-31"`).
    pub fn label(&self) -> String {
        format!("{}-{}", self.chassis, self.slot)
    }

    /// Parse either convention: `"10.101.1.31"` or `"1-31"`.
    pub fn parse(s: &str) -> Option<NodeId> {
        if let Some(rest) = s.strip_prefix("10.101.") {
            let (c, n) = rest.split_once('.')?;
            return Some(NodeId::new(c.parse().ok()?, n.parse().ok()?));
        }
        let (c, n) = s.split_once('-')?;
        Some(NodeId::new(c.parse().ok()?, n.parse().ok()?))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bmc_addr())
    }
}

/// A batch job id, assigned sequentially by the scheduler (UGE-style
/// seven-digit ids like `1291784` in Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl JobId {
    /// The raw numeric id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A cluster user account name (e.g. the `"jieyao"` / `"abdumal"` of
/// Fig. 6's timeline).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserName(pub String);

impl UserName {
    /// Construct from any string-like value.
    pub fn new(s: impl Into<String>) -> Self {
        UserName(s.into())
    }

    /// The account name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for UserName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for UserName {
    fn from(s: &str) -> Self {
        UserName(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bmc_addr_matches_paper_convention() {
        assert_eq!(NodeId::new(1, 1).bmc_addr(), "10.101.1.1");
        assert_eq!(NodeId::new(1, 31).label(), "1-31");
    }

    #[test]
    fn parse_accepts_both_conventions() {
        assert_eq!(NodeId::parse("10.101.1.31"), Some(NodeId::new(1, 31)));
        assert_eq!(NodeId::parse("1-31"), Some(NodeId::new(1, 31)));
        assert_eq!(NodeId::parse("10.101.13.2"), Some(NodeId::new(13, 2)));
        assert_eq!(NodeId::parse("garbage"), None);
        assert_eq!(NodeId::parse("10.101.x.1"), None);
    }

    #[test]
    fn enumerate_packs_chassis() {
        // Quanah: 467 nodes, modelled as chassis of 4 C6320 sleds.
        let ids = NodeId::enumerate(467, 4);
        assert_eq!(ids.len(), 467);
        assert_eq!(ids[0], NodeId::new(1, 1));
        assert_eq!(ids[3], NodeId::new(1, 4));
        assert_eq!(ids[4], NodeId::new(2, 1));
        assert_eq!(ids[466], NodeId::new(117, 3));
        // All distinct.
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 467);
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId::new(2, 3).to_string(), "10.101.2.3");
        assert_eq!(JobId(1_291_784).to_string(), "1291784");
        assert_eq!(UserName::new("jieyao").to_string(), "jieyao");
    }
}
