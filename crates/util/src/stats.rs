//! Descriptive statistics used by the evaluation harness and analysis tools.
//!
//! Two flavours: [`OnlineStats`] (Welford's streaming algorithm, O(1) memory,
//! used while collecting latency samples) and batch helpers over slices
//! (percentiles, min/max) used when the full sample set is in hand.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable; merging two accumulators is supported so parallel
/// workers can each keep a local one and combine at the end (the pattern the
/// Rayon/crossbeam guides recommend over shared atomics).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Combine two accumulators as if all observations had been pushed into
    /// one (Chan et al. parallel merge).
    pub fn merge(&self, other: &OnlineStats) -> OnlineStats {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        OnlineStats { n, mean, m2, min: self.min.min(other.min), max: self.max.max(other.max) }
    }
}

/// Arithmetic mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation between closest
/// ranks. Panics on empty input or q outside [0, 1].
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Non-panicking [`percentile`]: `None` on an empty slice, a `q` outside
/// `[0, 1]`, or NaN among the inputs. Instrumentation paths use this so a
/// bad sample set degrades to "no statistic" instead of a panic.
pub fn try_percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    Some(percentile(xs, q))
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets; values outside
/// the range are clamped into the first/last bucket. Used for the per-user
/// symmetric histogram matrix of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// An empty histogram over `[lo, hi)` with `bins` equal-width buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "histogram needs bins > 0 and hi > lo");
        Histogram { lo, hi, counts: vec![0; bins] }
    }

    /// Record one observation. NaN is skipped: it compares false against
    /// both bounds, so it would otherwise fall through the clamp guards
    /// and be miscounted in bucket 0.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let bins = self.counts.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Counts normalised so the largest bucket is 1.0 (what the symmetric
    /// histogram glyphs render). All-zero histograms normalise to zeros.
    pub fn normalized(&self) -> Vec<f64> {
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / max as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_batch() {
        let xs = [4.29, 3.1, 5.6, 4.0, 4.8, 2.2];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        let batch_var = xs.iter().map(|x| (x - mean(&xs)).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.variance() - batch_var).abs() < 1e-12);
        assert_eq!(s.min(), 2.2);
        assert_eq!(s.max(), 5.6);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let (a_half, b_half) = xs.split_at(37);
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        a_half.iter().for_each(|&x| a.push(x));
        b_half.iter().for_each(|&x| b.push(x));
        let merged = a.merge(&b);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-9);
        assert!((merged.variance() - all.variance()).abs() < 1e-9);
        // Merging with empty is identity.
        let id = OnlineStats::new().merge(&all);
        assert!((id.mean() - all.mean()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&xs, 0.5), 2.5);
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 0.5);
    }

    #[test]
    fn try_percentile_degrades_instead_of_panicking() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(try_percentile(&xs, 0.5), Some(2.5));
        assert_eq!(try_percentile(&[], 0.5), None);
        assert_eq!(try_percentile(&xs, 1.5), None);
        assert_eq!(try_percentile(&xs, -0.1), None);
        assert_eq!(try_percentile(&[1.0, f64::NAN], 0.5), None);
    }

    #[test]
    fn histogram_skips_nan() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(f64::NAN);
        h.push(5.0);
        // NaN must not be miscounted into bucket 0.
        assert_eq!(h.counts(), &[0, 0, 1, 0, 0]);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn histogram_buckets_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 2.6, -3.0, 42.0, 9.999] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[3, 2, 0, 0, 2]);
        assert_eq!(h.total(), 7);
        let n = h.normalized();
        assert_eq!(n[0], 1.0);
        assert!((n[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_all_zero_normalizes_to_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.normalized(), vec![0.0; 4]);
    }
}
