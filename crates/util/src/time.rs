//! Time handling: epoch seconds, RFC 3339 timestamps, and interval grammar.
//!
//! The paper stresses (§III-B3, §IV-B2) that converting human-readable date
//! strings into integer epoch times is one of the schema optimizations that
//! shrank the database to 28 % of its original volume. This module is the
//! single implementation of that conversion: a proleptic-Gregorian civil
//! calendar mapping with no external dependencies.

use crate::error::{Error, Result};
use std::fmt;
use std::ops::{Add, Sub};

/// Seconds since the Unix epoch (1970-01-01T00:00:00Z), UTC only.
///
/// MonSTer stores all timestamps in this form (the paper's "binary integer
/// epoch time"). Arithmetic is provided via `+`/`-` with second counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EpochSecs(pub i64);

impl EpochSecs {
    /// Timestamp of the first Power sample in the paper's Fig. 4.
    pub const FIG4_SAMPLE: EpochSecs = EpochSecs(1_583_792_296);

    /// Construct from a raw second count.
    pub const fn new(secs: i64) -> Self {
        EpochSecs(secs)
    }

    /// The raw second count.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Parse an RFC 3339 / ISO 8601 UTC timestamp such as
    /// `"2020-04-20T12:00:00Z"`. Only the `Z` (UTC) suffix is accepted —
    /// the management network, the scheduler, and the TSDB all run in UTC.
    pub fn parse_rfc3339(s: &str) -> Result<Self> {
        let b = s.as_bytes();
        if b.len() != 20
            || b[4] != b'-'
            || b[7] != b'-'
            || b[10] != b'T'
            || b[13] != b':'
            || b[16] != b':'
            || b[19] != b'Z'
        {
            return Err(Error::parse(format!("expected YYYY-MM-DDTHH:MM:SSZ, got {s:?}")));
        }
        let num = |range: std::ops::Range<usize>| -> Result<i64> {
            let part = &s[range];
            part.parse::<i64>()
                .map_err(|_| Error::parse(format!("non-numeric field {part:?} in {s:?}")))
        };
        let (y, mo, d) = (num(0..4)?, num(5..7)?, num(8..10)?);
        let (h, mi, sec) = (num(11..13)?, num(14..16)?, num(17..19)?);
        if !(1..=12).contains(&mo) {
            return Err(Error::parse(format!("month {mo} out of range in {s:?}")));
        }
        if d < 1 || d > days_in_month(y, mo as u8) as i64 {
            return Err(Error::parse(format!("day {d} out of range in {s:?}")));
        }
        if h > 23 || mi > 59 || sec > 59 {
            return Err(Error::parse(format!("time-of-day out of range in {s:?}")));
        }
        let days = days_from_civil(y, mo as u8, d as u8);
        Ok(EpochSecs(days * 86_400 + h * 3_600 + mi * 60 + sec))
    }

    /// Format as `YYYY-MM-DDTHH:MM:SSZ`.
    pub fn to_rfc3339(self) -> String {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        format!(
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            y,
            m,
            d,
            secs / 3_600,
            (secs / 60) % 60,
            secs % 60
        )
    }

    /// Round down to a multiple of `interval` seconds (window bucketing, as
    /// InfluxDB's `GROUP BY time(...)` does).
    pub fn truncate(self, interval_secs: i64) -> EpochSecs {
        assert!(interval_secs > 0, "interval must be positive");
        EpochSecs(self.0.div_euclid(interval_secs) * interval_secs)
    }
}

impl fmt::Display for EpochSecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_rfc3339())
    }
}

impl Add<i64> for EpochSecs {
    type Output = EpochSecs;
    fn add(self, rhs: i64) -> EpochSecs {
        EpochSecs(self.0 + rhs)
    }
}

impl Sub<i64> for EpochSecs {
    type Output = EpochSecs;
    fn sub(self, rhs: i64) -> EpochSecs {
        EpochSecs(self.0 - rhs)
    }
}

impl Sub<EpochSecs> for EpochSecs {
    type Output = i64;
    fn sub(self, rhs: EpochSecs) -> i64 {
        self.0 - rhs.0
    }
}

/// Days from the epoch for a civil date (proleptic Gregorian).
///
/// Howard Hinnant's `days_from_civil` algorithm; exact over the full i64
/// year range we use.
fn days_from_civil(y: i64, m: u8, d: u8) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m as i64) + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + (d as i64) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u8, u8) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i64, m: u8) -> u8 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month validated by caller"),
    }
}

/// Parse the Metrics Builder interval grammar: an integer followed by a
/// unit — `s` (seconds), `m` (minutes), `h` (hours), `d` (days), `w`
/// (weeks) — e.g. `"5m"`, `"72h"`. Returns the length in seconds.
pub fn parse_interval(s: &str) -> Result<i64> {
    let s = s.trim();
    if s.is_empty() {
        return Err(Error::parse("empty interval"));
    }
    let unit = s.chars().last().unwrap();
    let mult = match unit {
        's' => 1,
        'm' => 60,
        'h' => 3_600,
        'd' => 86_400,
        'w' => 7 * 86_400,
        _ => return Err(Error::parse(format!("interval {s:?} must end in one of s/m/h/d/w"))),
    };
    let digits = &s[..s.len() - 1];
    let n: i64 = digits
        .parse()
        .map_err(|_| Error::parse(format!("interval {s:?} has non-numeric count")))?;
    if n <= 0 {
        return Err(Error::invalid(format!("interval {s:?} must be positive")));
    }
    Ok(n * mult)
}

/// Format a second count using the largest exact unit (`300` → `"5m"`).
pub fn format_interval(secs: i64) -> String {
    for (div, unit) in [(7 * 86_400, 'w'), (86_400, 'd'), (3_600, 'h'), (60, 'm')] {
        if secs % div == 0 && secs / div > 0 {
            return format!("{}{}", secs / div, unit);
        }
    }
    format!("{secs}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_window() {
        // The example request in §III-D of the paper.
        let start = EpochSecs::parse_rfc3339("2020-04-20T12:00:00Z").unwrap();
        let end = EpochSecs::parse_rfc3339("2020-04-21T12:00:00Z").unwrap();
        assert_eq!(end - start, 86_400);
        assert_eq!(start.as_secs(), 1_587_384_000);
    }

    #[test]
    fn round_trips_fig4_timestamp() {
        let t = EpochSecs::FIG4_SAMPLE;
        let s = t.to_rfc3339();
        assert_eq!(s, "2020-03-09T22:18:16Z");
        assert_eq!(EpochSecs::parse_rfc3339(&s).unwrap(), t);
    }

    #[test]
    fn epoch_zero_is_unix_epoch() {
        assert_eq!(EpochSecs(0).to_rfc3339(), "1970-01-01T00:00:00Z");
        assert_eq!(EpochSecs::parse_rfc3339("1970-01-01T00:00:00Z").unwrap(), EpochSecs(0));
    }

    #[test]
    fn handles_leap_days() {
        let t = EpochSecs::parse_rfc3339("2020-02-29T00:00:00Z").unwrap();
        assert_eq!(t.to_rfc3339(), "2020-02-29T00:00:00Z");
        assert!(EpochSecs::parse_rfc3339("2019-02-29T00:00:00Z").is_err());
        assert!(EpochSecs::parse_rfc3339("2100-02-29T00:00:00Z").is_err());
        assert!(EpochSecs::parse_rfc3339("2000-02-29T00:00:00Z").is_ok());
    }

    #[test]
    fn rejects_malformed_strings() {
        for bad in [
            "2020-04-20 12:00:00Z",
            "2020-04-20T12:00:00",
            "2020-13-01T00:00:00Z",
            "2020-00-01T00:00:00Z",
            "2020-01-32T00:00:00Z",
            "2020-01-01T24:00:00Z",
            "2020-01-01T00:60:00Z",
            "20xx-01-01T00:00:00Z",
            "",
        ] {
            assert!(EpochSecs::parse_rfc3339(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn truncate_buckets_to_interval() {
        let t = EpochSecs(1_587_384_123);
        assert_eq!(t.truncate(300).as_secs() % 300, 0);
        assert!(t.truncate(300) <= t);
        assert!(t - t.truncate(300) < 300);
        assert_eq!(EpochSecs(-1).truncate(60), EpochSecs(-60));
    }

    #[test]
    fn interval_grammar_round_trip() {
        assert_eq!(parse_interval("5m").unwrap(), 300);
        assert_eq!(parse_interval("120m").unwrap(), 7_200);
        assert_eq!(parse_interval("72h").unwrap(), 259_200);
        assert_eq!(parse_interval("1w").unwrap(), 604_800);
        assert_eq!(parse_interval("45s").unwrap(), 45);
        assert_eq!(format_interval(300), "5m");
        assert_eq!(format_interval(7_200), "2h");
        assert_eq!(format_interval(86_400), "1d");
        assert_eq!(format_interval(59), "59s");
    }

    #[test]
    fn interval_grammar_rejects_junk() {
        for bad in ["", "5", "m", "-5m", "0m", "5x", "fivem"] {
            assert!(parse_interval(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = EpochSecs(100);
        assert_eq!(a + 60, EpochSecs(160));
        assert_eq!(a - 60, EpochSecs(40));
        assert_eq!(EpochSecs(160) - a, 60);
        assert!(a < a + 1);
    }
}
