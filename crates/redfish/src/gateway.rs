//! HTTP facade over the simulated fleet.
//!
//! Serves the Redfish tree over real sockets so end-to-end tests exercise
//! the same wire path a production deployment would: one server multiplexes
//! the fleet under `/nodes/<bmc-addr>/redfish/v1/...` (a management-network
//! reverse proxy, in effect). Simulated latency is *reported*, not slept:
//! responses carry an `X-Simulated-Latency-Ms` header so callers can
//! account virtual time without wall-clock delays.

use crate::bmc::{BmcResponse, SimulatedBmc};
use crate::cluster::SimulatedCluster;
use crate::model::redfish_error;
use monster_http::{Method, Response, Router, Status};
use monster_json::jobj;
use monster_util::NodeId;
use std::sync::Arc;

/// Build a router exposing `cluster` Redfish endpoints behind Redfish
/// session authentication: clients log in via
/// `POST /nodes/:addr/redfish/v1/SessionService/Sessions` and present the
/// returned `X-Auth-Token` on every resource request.
pub fn router_with_auth(
    cluster: Arc<SimulatedCluster>,
    sessions: Arc<crate::auth::SessionManager>,
) -> Router {
    let login_sessions = Arc::clone(&sessions);
    let inner = router(cluster);
    let now = || {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    };
    Router::new()
        .route(
            monster_http::Method::Post,
            "/nodes/:addr/redfish/v1/SessionService/Sessions",
            move |req, _| {
                let Ok(body) = String::from_utf8(req.body.clone()) else {
                    return Response::error(Status::BAD_REQUEST, "non-UTF8 body");
                };
                let parsed = monster_json::parse(&body).unwrap_or(monster_json::Value::Null);
                let user = parsed.get("UserName").and_then(|v| v.as_str()).unwrap_or("");
                let pass = parsed.get("Password").and_then(|v| v.as_str()).unwrap_or("");
                match login_sessions.login(user, pass, now()) {
                    Ok(token) => {
                        let mut resp = Response::json(&jobj! {
                            "@odata.id" => "/redfish/v1/SessionService/Sessions/1",
                            "UserName" => user,
                        });
                        resp.headers.set("X-Auth-Token", token);
                        resp
                    }
                    Err(_) => Response::error(Status(401), "invalid credentials"),
                }
            },
        )
        .route(monster_http::Method::Get, "/nodes/:addr/redfish/v1/*rest", move |req, _| {
            let token = req.headers.get("X-Auth-Token").unwrap_or("");
            if sessions.validate(token, now()).is_err() {
                return Response::error(Status(401), "authentication required");
            }
            // Delegate to the resource router; normalize the service root
            // (empty rest) to the root route's exact path.
            let mut req = req.clone();
            if req.path.ends_with("/redfish/v1/") {
                req.path.pop();
            }
            inner.dispatch(&req)
        })
}

/// Build a router exposing `cluster` Redfish endpoints.
pub fn router(cluster: Arc<SimulatedCluster>) -> Router {
    let c1 = Arc::clone(&cluster);
    let c2 = Arc::clone(&cluster);
    Router::new()
        // Service root: lists the four resource categories.
        .route(Method::Get, "/nodes/:addr/redfish/v1", move |_, p| {
            let addr = p.get("addr").unwrap_or("");
            match NodeId::parse(addr) {
                Some(node) if c1.sensors(node).is_ok() => Response::json(&jobj! {
                    "@odata.id" => "/redfish/v1",
                    "Id" => "RootService",
                    "Chassis" => jobj! { "@odata.id" => "/redfish/v1/Chassis" },
                    "Managers" => jobj! { "@odata.id" => "/redfish/v1/Managers" },
                    "Systems" => jobj! { "@odata.id" => "/redfish/v1/Systems" },
                }),
                _ => Response::error(Status::NOT_FOUND, &format!("no BMC at {addr}")),
            }
        })
        .route(Method::Get, "/nodes/:addr/redfish/v1/*rest", move |_, p| {
            let addr = p.get("addr").unwrap_or("");
            let rest = p.get("rest").unwrap_or("");
            let Some(node) = NodeId::parse(addr) else {
                return Response::error(Status::NOT_FOUND, &format!("bad BMC address {addr}"));
            };
            let category = match SimulatedBmc::category_for_path(rest) {
                Ok(c) => c,
                Err(e) => return Response::error(Status::NOT_FOUND, &e.to_string()),
            };
            match c2.request(node, category) {
                Ok(BmcResponse::Ok(payload, latency)) => {
                    let mut resp = Response::json(&payload);
                    resp.headers
                        .set("X-Simulated-Latency-Ms", format!("{:.1}", latency.as_millis_f64()));
                    resp
                }
                Ok(BmcResponse::Refused(latency)) => {
                    let mut resp = Response::error(
                        Status::SERVICE_UNAVAILABLE,
                        &redfish_error("iDRAC busy").to_string_compact(),
                    );
                    resp.headers
                        .set("X-Simulated-Latency-Ms", format!("{:.1}", latency.as_millis_f64()));
                    resp
                }
                Ok(BmcResponse::Stalled) => {
                    let mut resp = Response::error(Status(504), "BMC did not answer");
                    resp.headers.set("X-Simulated-Timeout", "true");
                    resp
                }
                Err(e) => Response::error(Status::NOT_FOUND, &e.to_string()),
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmc::BmcConfig;
    use crate::cluster::ClusterConfig;
    use monster_http::{Client, Request, Server};

    fn reliable_cluster(nodes: usize) -> Arc<SimulatedCluster> {
        Arc::new(SimulatedCluster::new(ClusterConfig {
            nodes,
            bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
            ..ClusterConfig::small(nodes, 77)
        }))
    }

    #[test]
    fn serves_thermal_over_real_sockets() {
        let cluster = reliable_cluster(3);
        let server = Server::spawn(0, router(cluster)).unwrap();
        let client = Client::new();
        let resp = client
            .send_ok(
                server.addr(),
                &Request::get("/nodes/10.101.1.2/redfish/v1/Chassis/System.Embedded.1/Thermal/"),
            )
            .unwrap();
        let v = resp.json_body().unwrap();
        assert_eq!(v.get("Id").unwrap().as_str(), Some("Thermal"));
        assert!(resp.headers.get("X-Simulated-Latency-Ms").is_some());
    }

    #[test]
    fn service_root_lists_categories() {
        let cluster = reliable_cluster(2);
        let server = Server::spawn(0, router(cluster)).unwrap();
        let resp = Client::new()
            .send_ok(server.addr(), &Request::get("/nodes/10.101.1.1/redfish/v1"))
            .unwrap();
        let v = resp.json_body().unwrap();
        assert!(v.get("Chassis").is_some());
        assert!(v.get("Systems").is_some());
    }

    #[test]
    fn unknown_node_and_resource_are_404() {
        let cluster = reliable_cluster(2);
        let server = Server::spawn(0, router(cluster)).unwrap();
        let client = Client::new();
        let r = client.send(server.addr(), &Request::get("/nodes/10.101.9.9/redfish/v1")).unwrap();
        assert_eq!(r.status, Status::NOT_FOUND);
        let r = client
            .send(server.addr(), &Request::get("/nodes/10.101.1.1/redfish/v1/Nothing/Here"))
            .unwrap();
        assert_eq!(r.status, Status::NOT_FOUND);
    }

    #[test]
    fn authenticated_gateway_requires_token() {
        let cluster = reliable_cluster(2);
        let sessions = Arc::new(crate::auth::SessionManager::new("monster", "secret", 7));
        let server = Server::spawn(0, router_with_auth(cluster, Arc::clone(&sessions))).unwrap();
        let client = Client::new();
        let url = "/nodes/10.101.1.1/redfish/v1/Chassis/System.Embedded.1/Power/";

        // No token: 401.
        let resp = client.send(server.addr(), &Request::get(url)).unwrap();
        assert_eq!(resp.status.0, 401);

        // Bad credentials: 401.
        let bad_login = Request::post_json(
            "/nodes/10.101.1.1/redfish/v1/SessionService/Sessions",
            &jobj! { "UserName" => "monster", "Password" => "wrong" },
        );
        let resp = client.send(server.addr(), &bad_login).unwrap();
        assert_eq!(resp.status.0, 401);

        // Good credentials: token issued, resource accessible.
        let login = Request::post_json(
            "/nodes/10.101.1.1/redfish/v1/SessionService/Sessions",
            &jobj! { "UserName" => "monster", "Password" => "secret" },
        );
        let resp = client.send_ok(server.addr(), &login).unwrap();
        let token = resp.headers.get("X-Auth-Token").expect("token").to_string();
        let mut authed = Request::get(url);
        authed.headers.set("X-Auth-Token", &token);
        let resp = client.send_ok(server.addr(), &authed).unwrap();
        assert!(resp.json_body().unwrap().get("PowerControl").is_some());
        assert_eq!(sessions.active_sessions(), 1);

        // Service root is reachable once authenticated.
        let mut root = Request::get("/nodes/10.101.1.1/redfish/v1/");
        root.headers.set("X-Auth-Token", &token);
        let resp = client.send_ok(server.addr(), &root).unwrap();
        assert!(resp.json_body().unwrap().get("Chassis").is_some());

        // Garbage token: 401.
        let mut forged = Request::get(url);
        forged.headers.set("X-Auth-Token", "deadbeef");
        let resp = client.send(server.addr(), &forged).unwrap();
        assert_eq!(resp.status.0, 401);
    }

    #[test]
    fn dead_bmc_maps_to_gateway_timeout() {
        let cluster = reliable_cluster(2);
        let node = cluster.node_ids()[0];
        cluster.set_bmc_alive(node, false).unwrap();
        let server = Server::spawn(0, router(Arc::clone(&cluster))).unwrap();
        let r = Client::new()
            .send(
                server.addr(),
                &Request::get("/nodes/10.101.1.1/redfish/v1/Systems/System.Embedded.1"),
            )
            .unwrap();
        assert_eq!(r.status.0, 504);
        assert_eq!(r.headers.get("X-Simulated-Timeout"), Some("true"));
    }
}
