//! The Redfish Telemetry Service — the paper's future work, implemented.
//!
//! §VI: "MonSTer ... cannot retrieve BMC metrics within seconds. In the
//! near future, we will collect more metrics by using ... the upcoming
//! telemetry model." DMTF's TelemetryService changes the polling economics:
//! the BMC samples its own sensors on a fast internal cadence and hands the
//! collector a whole **metric report** (a batch of timestamped samples) for
//! the cost of a single request. One 4-second Redfish call then yields
//! every 10-second sample of the last minute instead of one instantaneous
//! reading per category.
//!
//! This module implements the service side ([`TelemetryService`]) — report
//! definitions, ring-buffered samples per node, Redfish `MetricReport`
//! payloads — and the parsing client side. The collector integrates it via
//! `monster-collector`'s telemetry path.

use crate::cluster::SimulatedCluster;
use monster_json::{jobj, Value};
use monster_util::{EpochSecs, Error, NodeId, Result};
use std::collections::{HashMap, VecDeque};

/// Telemetry configuration (a trimmed `MetricReportDefinition`).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Internal BMC sampling cadence in seconds (DMTF reports commonly run
    /// at 5–30 s; default 10 s — six samples per 60 s collection interval).
    pub sample_interval_secs: i64,
    /// Samples retained per node (ring buffer, like the BMC's bounded
    /// report store).
    pub samples_kept: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { sample_interval_secs: 10, samples_kept: 60 }
    }
}

/// One internally-sampled observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSample {
    /// Sample time.
    pub time: EpochSecs,
    /// Node power draw, W.
    pub power: f64,
    /// CPU temperatures, °C.
    pub cpu_temps: [f64; 2],
    /// Inlet temperature, °C.
    pub inlet: f64,
    /// Fan speeds, RPM.
    pub fans: [f64; 4],
}

/// The fleet-wide telemetry service: per-node ring buffers plus report
/// sequence numbers.
pub struct TelemetryService {
    config: TelemetryConfig,
    buffers: HashMap<NodeId, VecDeque<MetricSample>>,
    sequence: u64,
}

impl TelemetryService {
    /// A service with empty buffers.
    pub fn new(config: TelemetryConfig) -> Self {
        TelemetryService { config, buffers: HashMap::new(), sequence: 0 }
    }

    /// The active configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Record one fleet-wide sample from the cluster's current sensor
    /// state (call once per `sample_interval_secs` of simulated time,
    /// interleaved with `cluster.step`).
    pub fn record(&mut self, cluster: &SimulatedCluster, now: EpochSecs) {
        for &node in cluster.node_ids() {
            let s = cluster.sensors(node).expect("node exists");
            let buf = self
                .buffers
                .entry(node)
                .or_insert_with(|| VecDeque::with_capacity(self.config.samples_kept));
            if buf.len() == self.config.samples_kept {
                buf.pop_front();
            }
            buf.push_back(MetricSample {
                time: now,
                power: s.power,
                cpu_temps: s.cpu_temps,
                inlet: s.inlet,
                fans: s.fans,
            });
        }
    }

    /// Samples currently buffered for a node.
    pub fn buffered(&self, node: NodeId) -> usize {
        self.buffers.get(&node).map(VecDeque::len).unwrap_or(0)
    }

    /// Build the Redfish `MetricReport` payload for a node and drain the
    /// buffer (`ReportUpdates: Overwrite` semantics: one fetch consumes
    /// the window).
    pub fn take_report(&mut self, node: NodeId) -> Result<Value> {
        let buf = self
            .buffers
            .get_mut(&node)
            .ok_or_else(|| Error::not_found(format!("no telemetry for {node}")))?;
        let samples: Vec<MetricSample> = buf.drain(..).collect();
        self.sequence += 1;
        Ok(report_payload(node, self.sequence, &samples))
    }
}

fn metric_value(prop: &str, t: EpochSecs, v: f64) -> Value {
    jobj! {
        "MetricProperty" => prop,
        "Timestamp" => t.to_rfc3339(),
        "MetricValue" => format!("{v:.1}"),
    }
}

/// Render a `MetricReport` document (trimmed DMTF schema).
fn report_payload(node: NodeId, sequence: u64, samples: &[MetricSample]) -> Value {
    let mut values: Vec<Value> = Vec::with_capacity(samples.len() * 8);
    for s in samples {
        values.push(metric_value("/Power/PowerConsumedWatts", s.time, s.power));
        for (i, t) in s.cpu_temps.iter().enumerate() {
            values.push(metric_value(
                &format!("/Thermal/Temperatures/{i}/ReadingCelsius"),
                s.time,
                *t,
            ));
        }
        values.push(metric_value("/Thermal/Temperatures/2/ReadingCelsius", s.time, s.inlet));
        for (i, f) in s.fans.iter().enumerate() {
            values.push(metric_value(&format!("/Thermal/Fans/{i}/Reading"), s.time, *f));
        }
    }
    jobj! {
        "@odata.id" => format!("/redfish/v1/TelemetryService/MetricReports/Node"),
        "Id" => format!("Node-{}", node.label()),
        "Name" => format!("Metric report for {}", node.bmc_addr()),
        "ReportSequence" => sequence as i64,
        "MetricReportDefinition" => jobj! {
            "@odata.id" => "/redfish/v1/TelemetryService/MetricReportDefinitions/NodeSensors"
        },
        "MetricValues" => Value::Array(values),
    }
}

/// Parse a `MetricReport` payload back into samples (client side).
pub fn parse_report(v: &Value) -> Result<Vec<MetricSample>> {
    let values = v
        .get("MetricValues")
        .and_then(Value::as_array)
        .ok_or_else(|| Error::parse("MetricReport missing MetricValues"))?;
    // Group by timestamp, filling one sample per instant.
    let mut by_time: Vec<(EpochSecs, MetricSample)> = Vec::new();
    for mv in values {
        let prop = mv
            .get("MetricProperty")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::parse("metric value missing MetricProperty"))?;
        let t = EpochSecs::parse_rfc3339(
            mv.get("Timestamp")
                .and_then(Value::as_str)
                .ok_or_else(|| Error::parse("metric value missing Timestamp"))?,
        )?;
        let val: f64 = mv
            .get("MetricValue")
            .and_then(Value::as_str)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::parse("metric value missing MetricValue"))?;
        let sample = match by_time.iter_mut().find(|(time, _)| *time == t) {
            Some((_, s)) => s,
            None => {
                by_time.push((
                    t,
                    MetricSample {
                        time: t,
                        power: 0.0,
                        cpu_temps: [0.0; 2],
                        inlet: 0.0,
                        fans: [0.0; 4],
                    },
                ));
                &mut by_time.last_mut().expect("just pushed").1
            }
        };
        if prop == "/Power/PowerConsumedWatts" {
            sample.power = val;
        } else if let Some(rest) = prop.strip_prefix("/Thermal/Temperatures/") {
            let idx: usize = rest
                .split('/')
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| Error::parse(format!("bad property {prop:?}")))?;
            if idx < 2 {
                sample.cpu_temps[idx] = val;
            } else {
                sample.inlet = val;
            }
        } else if let Some(rest) = prop.strip_prefix("/Thermal/Fans/") {
            let idx: usize = rest
                .split('/')
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| Error::parse(format!("bad property {prop:?}")))?;
            if idx < 4 {
                sample.fans[idx] = val;
            }
        } else {
            return Err(Error::parse(format!("unknown metric property {prop:?}")));
        }
    }
    Ok(by_time.into_iter().map(|(_, s)| s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmc::BmcConfig;
    use crate::cluster::ClusterConfig;

    fn cluster(nodes: usize) -> SimulatedCluster {
        SimulatedCluster::new(ClusterConfig {
            nodes,
            bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
            ..ClusterConfig::small(nodes, 17)
        })
    }

    #[test]
    fn record_and_take_report_round_trips() {
        let c = cluster(3);
        let mut ts = TelemetryService::new(TelemetryConfig::default());
        for i in 0..6 {
            c.step(10.0, |_| 0.4);
            ts.record(&c, EpochSecs::new(i * 10));
        }
        let node = c.node_ids()[1];
        assert_eq!(ts.buffered(node), 6);
        let report = ts.take_report(node).unwrap();
        assert_eq!(ts.buffered(node), 0, "take drains the buffer");
        let samples = parse_report(&report).unwrap();
        assert_eq!(samples.len(), 6);
        // Timestamps at the 10 s cadence.
        assert_eq!(samples[0].time, EpochSecs::new(0));
        assert_eq!(samples[5].time, EpochSecs::new(50));
        // Values physical (0.1-rounded by the wire format).
        for s in &samples {
            assert!(s.power > 80.0 && s.power < 500.0);
            assert!(s.cpu_temps[0] > 15.0 && s.cpu_temps[0] < 105.0);
            assert!(s.fans[3] >= 2000.0);
        }
    }

    #[test]
    fn sub_interval_resolution_beats_polling() {
        // A load spike entirely inside one 60 s interval is invisible to
        // per-interval polling but visible in the telemetry report.
        let c = cluster(1);
        let node = c.node_ids()[0];
        let mut ts = TelemetryService::new(TelemetryConfig::default());
        for i in 0..6 {
            let load = if i == 3 { 1.0 } else { 0.0 };
            // Long dt per substep so power responds fully.
            c.step(10.0, |_| load);
            ts.record(&c, EpochSecs::new(i * 10));
        }
        let samples = parse_report(&ts.take_report(node).unwrap()).unwrap();
        let powers: Vec<f64> = samples.iter().map(|s| s.power).collect();
        let spike = powers.iter().cloned().fold(f64::MIN, f64::max);
        let baseline = powers[0];
        assert!(
            spike > baseline + 150.0,
            "spike {spike:.0} W not visible over baseline {baseline:.0} W: {powers:?}"
        );
    }

    #[test]
    fn ring_buffer_bounds_memory() {
        let c = cluster(1);
        let mut ts =
            TelemetryService::new(TelemetryConfig { sample_interval_secs: 10, samples_kept: 4 });
        for i in 0..20 {
            ts.record(&c, EpochSecs::new(i * 10));
        }
        let node = c.node_ids()[0];
        assert_eq!(ts.buffered(node), 4);
        let samples = parse_report(&ts.take_report(node).unwrap()).unwrap();
        // Oldest samples were overwritten.
        assert_eq!(samples[0].time, EpochSecs::new(160));
    }

    #[test]
    fn sequence_numbers_increase() {
        let c = cluster(2);
        let mut ts = TelemetryService::new(TelemetryConfig::default());
        ts.record(&c, EpochSecs::new(0));
        let r1 = ts.take_report(c.node_ids()[0]).unwrap();
        let r2 = ts.take_report(c.node_ids()[1]).unwrap();
        assert!(
            r2.get("ReportSequence").unwrap().as_i64().unwrap()
                > r1.get("ReportSequence").unwrap().as_i64().unwrap()
        );
    }

    #[test]
    fn unknown_node_and_garbage_rejected() {
        let mut ts = TelemetryService::new(TelemetryConfig::default());
        assert!(ts.take_report(NodeId::new(9, 9)).is_err());
        assert!(parse_report(&jobj! { "nope" => 1i64 }).is_err());
    }
}
