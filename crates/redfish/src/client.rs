//! The Redfish polling client.
//!
//! Implements §III-B1's collection mechanics: build the request pool (467
//! nodes × 4 categories = 1868 URLs), issue everything asynchronously,
//! enforce connection/read timeouts, and retry transient failures. Each
//! request's *simulated* elapsed time accumulates across attempts (a
//! stalled BMC costs a full read timeout before the retry fires); the sweep
//! makespan bin-packs request times onto the client's in-flight channel
//! budget, which is what bounds the paper's ~55 s full sweep.

use crate::bmc::BmcResponse;
use crate::cluster::SimulatedCluster;
use crate::model::parse_reading;
use crate::types::{Category, NodeReading};
use monster_sim::VDuration;
use monster_util::pool::ThreadPool;
use monster_util::NodeId;

/// Client tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Read timeout per attempt: a stalled BMC costs exactly this long.
    pub read_timeout: VDuration,
    /// Retries after the first attempt (the paper's "retry mechanisms").
    pub max_retries: usize,
    /// Simultaneous in-flight requests the collector host sustains
    /// (connection-pool limit). Default calibrated so a 1868-URL sweep
    /// lands near the paper's ~55 s.
    pub max_inflight: usize,
    /// Real worker threads used to execute the sweep.
    pub pool_workers: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: VDuration::from_secs(15),
            max_retries: 2,
            max_inflight: 150,
            pool_workers: 8,
        }
    }
}

/// Outcome of a single request (including its retries).
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Target node.
    pub node: NodeId,
    /// Category queried.
    pub category: Category,
    /// Parsed reading; `None` after exhausting retries.
    pub reading: Option<NodeReading>,
    /// Total attempts made (1 = first try succeeded).
    pub attempts: usize,
    /// Attempts that hit the read timeout (stalled BMC).
    pub timeouts: usize,
    /// Simulated elapsed time across all attempts.
    pub elapsed: VDuration,
}

/// Outcome of a full sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-request outcomes, in request-pool order.
    pub results: Vec<RequestOutcome>,
    /// Simulated wall time for the sweep under the in-flight budget.
    pub makespan: VDuration,
}

impl SweepOutcome {
    /// Requests that delivered a reading.
    pub fn successes(&self) -> usize {
        self.results.iter().filter(|r| r.reading.is_some()).count()
    }

    /// Requests that exhausted retries.
    pub fn failures(&self) -> usize {
        self.results.len() - self.successes()
    }

    /// Extra attempts beyond the first, summed.
    pub fn retries(&self) -> usize {
        self.results.iter().map(|r| r.attempts - 1).sum()
    }

    /// Read-timeout hits across all requests and attempts.
    pub fn timeouts(&self) -> usize {
        self.results.iter().map(|r| r.timeouts).sum()
    }

    /// The 99th-percentile simulated request time, or `None` for an empty
    /// sweep (uses the non-panicking percentile so a degenerate sweep
    /// cannot take the monitor down).
    pub fn p99_request_secs(&self) -> Option<f64> {
        let times: Vec<f64> = self.results.iter().map(|r| r.elapsed.as_secs_f64()).collect();
        monster_util::stats::try_percentile(&times, 0.99)
    }

    /// Mean simulated time of *successful first-attempt* requests — the
    /// statistic the paper reports as "a Redfish API request takes 4.29
    /// seconds on average".
    pub fn mean_request_secs(&self) -> f64 {
        let firsts: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.reading.is_some() && r.attempts == 1)
            .map(|r| r.elapsed.as_secs_f64())
            .collect();
        monster_util::stats::mean(&firsts)
    }
}

/// The polling client.
#[derive(Debug, Clone, Default)]
pub struct RedfishClient {
    config: ClientConfig,
}

impl RedfishClient {
    /// Client with explicit configuration.
    pub fn new(config: ClientConfig) -> Self {
        RedfishClient { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// The request pool for a fleet: every (node, category) pair.
    pub fn request_pool(cluster: &SimulatedCluster) -> Vec<(NodeId, Category)> {
        cluster
            .node_ids()
            .iter()
            .flat_map(|&n| Category::ALL.into_iter().map(move |c| (n, c)))
            .collect()
    }

    /// Execute one request with the retry policy against the simulated
    /// fleet.
    pub fn fetch(
        &self,
        cluster: &SimulatedCluster,
        node: NodeId,
        category: Category,
    ) -> RequestOutcome {
        let mut elapsed = VDuration::ZERO;
        let mut attempts = 0;
        let mut timeouts = 0;
        while attempts <= self.config.max_retries {
            attempts += 1;
            match cluster.request(node, category) {
                Ok(BmcResponse::Ok(payload, latency)) => {
                    elapsed += latency;
                    let reading = parse_reading(category, &payload).ok();
                    return RequestOutcome { node, category, reading, attempts, timeouts, elapsed };
                }
                Ok(BmcResponse::Refused(latency)) => {
                    elapsed += latency;
                }
                Ok(BmcResponse::Stalled) => {
                    timeouts += 1;
                    elapsed += self.config.read_timeout;
                }
                Err(_) => {
                    // Unknown node: not retryable.
                    return RequestOutcome {
                        node,
                        category,
                        reading: None,
                        attempts,
                        timeouts,
                        elapsed,
                    };
                }
            }
        }
        RequestOutcome { node, category, reading: None, attempts, timeouts, elapsed }
    }

    /// Sweep the whole fleet: fan the request pool out on the worker pool,
    /// then compute the simulated makespan on the in-flight budget
    /// (longest-processing-time-first onto the least loaded channel).
    pub fn sweep(&self, cluster: &SimulatedCluster) -> SweepOutcome {
        let span = monster_obs::Span::enter("redfish.sweep");
        let pool_items = Self::request_pool(cluster);
        let pool = ThreadPool::new(self.config.pool_workers);
        let results = pool.scope_map(pool_items, |(n, c)| self.fetch(cluster, n, c));

        let mut times: Vec<VDuration> = results.iter().map(|r| r.elapsed).collect();
        times.sort_unstable_by(|a, b| b.cmp(a));
        let channels = self.config.max_inflight.max(1);
        let mut bins = vec![VDuration::ZERO; channels.min(times.len().max(1))];
        for t in times {
            let min = bins.iter_mut().min().expect("non-empty bins");
            *min += t;
        }
        let makespan = bins.into_iter().max().unwrap_or(VDuration::ZERO);
        let outcome = SweepOutcome { results, makespan };
        self.report(&outcome);
        span.finish_after(makespan);
        outcome
    }

    /// Publish a sweep's health to the self-monitoring registry
    /// (`monster_redfish_*` series on `GET /metrics`). Kept out of
    /// [`Self::fetch`] so the per-request hot path stays untouched.
    fn report(&self, outcome: &SweepOutcome) {
        monster_obs::counter("monster_redfish_sweeps_total").inc();
        monster_obs::counter("monster_redfish_requests_total").add(outcome.results.len() as u64);
        monster_obs::counter("monster_redfish_failures_total").add(outcome.failures() as u64);
        monster_obs::counter("monster_redfish_retries_total").add(outcome.retries() as u64);
        monster_obs::counter("monster_redfish_timeouts_total").add(outcome.timeouts() as u64);
        let histo = monster_obs::histo("monster_redfish_request_seconds");
        for r in &outcome.results {
            histo.observe_vdur(r.elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmc::BmcConfig;
    use crate::cluster::ClusterConfig;

    fn small_cluster(nodes: usize, seed: u64) -> SimulatedCluster {
        SimulatedCluster::new(ClusterConfig::small(nodes, seed))
    }

    #[test]
    fn request_pool_covers_all_pairs() {
        let c = small_cluster(10, 1);
        let pool = RedfishClient::request_pool(&c);
        assert_eq!(pool.len(), 40);
        // Quanah-sized pool matches the paper's 1868.
        let full = SimulatedCluster::new(ClusterConfig::default());
        assert_eq!(RedfishClient::request_pool(&full).len(), 1868);
    }

    #[test]
    fn fetch_retries_through_refusals() {
        // A BMC that refuses often but never stalls: retries should lift
        // the success rate well above the single-attempt rate.
        let cfg = ClusterConfig {
            nodes: 30,
            bmc: BmcConfig { failure_rate: 0.3, stall_rate: 0.0, ..BmcConfig::default() },
            ..ClusterConfig::small(30, 2)
        };
        let cluster = SimulatedCluster::new(cfg);
        let client = RedfishClient::default();
        let outcomes: Vec<_> = cluster
            .node_ids()
            .iter()
            .map(|&n| client.fetch(&cluster, n, Category::Power))
            .collect();
        let ok = outcomes.iter().filter(|o| o.reading.is_some()).count();
        // P(fail all 3 attempts) = 0.3^3 ≈ 2.7%.
        assert!(ok >= 27, "ok {ok}/30");
        assert!(outcomes.iter().any(|o| o.attempts > 1), "no retries exercised");
    }

    #[test]
    fn stall_costs_full_read_timeout() {
        let cluster = small_cluster(1, 3);
        let node = cluster.node_ids()[0];
        cluster.set_bmc_alive(node, false).unwrap();
        let client = RedfishClient::default();
        let o = client.fetch(&cluster, node, Category::Thermal);
        assert!(o.reading.is_none());
        assert_eq!(o.attempts, 3);
        // 3 attempts x 15 s timeout.
        assert_eq!(o.elapsed, VDuration::from_secs(45));
    }

    #[test]
    fn sweep_makespan_matches_paper_scale() {
        // Full Quanah-sized sweep: mean request ≈4.3 s, 1868 requests over
        // 150 channels → makespan in the paper's ~55 s neighbourhood.
        let cluster = SimulatedCluster::new(ClusterConfig::default());
        let client = RedfishClient::default();
        let sweep = client.sweep(&cluster);
        assert_eq!(sweep.results.len(), 1868);
        assert!(sweep.successes() as f64 / 1868.0 > 0.97, "successes {}", sweep.successes());
        let mean = sweep.mean_request_secs();
        assert!((3.9..4.7).contains(&mean), "mean request {mean:.2}s");
        let makespan = sweep.makespan.as_secs_f64();
        assert!((45.0..70.0).contains(&makespan), "makespan {makespan:.1}s");
    }

    #[test]
    fn sweep_on_tiny_cluster_is_fast() {
        let cluster = small_cluster(4, 4);
        let client = RedfishClient::default();
        let sweep = client.sweep(&cluster);
        assert_eq!(sweep.results.len(), 16);
        // 16 requests over 150 channels: makespan ≈ slowest single request.
        assert!(sweep.makespan < VDuration::from_secs(50));
    }

    #[test]
    fn unknown_node_fetch_fails_cleanly() {
        let cluster = small_cluster(2, 5);
        let client = RedfishClient::default();
        let o = client.fetch(&cluster, NodeId::new(40, 1), Category::Power);
        assert!(o.reading.is_none());
        assert_eq!(o.attempts, 1);
    }
}
