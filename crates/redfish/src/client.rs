//! The Redfish polling client.
//!
//! Implements §III-B1's collection mechanics: build the request pool (467
//! nodes × 4 categories = 1868 URLs), issue everything asynchronously,
//! enforce connection/read timeouts, and retry transient failures. Each
//! request's *simulated* elapsed time accumulates across attempts (a
//! stalled BMC costs a full read timeout before the retry fires); the sweep
//! makespan bin-packs request times onto the client's in-flight channel
//! budget, which is what bounds the paper's ~55 s full sweep.

use crate::bmc::BmcResponse;
use crate::cluster::SimulatedCluster;
use crate::model::parse_reading;
use crate::resilience::{Admission, HealthRegistry};
use crate::types::{Category, NodeReading};
use monster_sim::VDuration;
use monster_util::pool::ThreadPool;
use monster_util::NodeId;

/// Client tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Read timeout per attempt: a stalled BMC costs exactly this long.
    pub read_timeout: VDuration,
    /// Retries after the first attempt (the paper's "retry mechanisms").
    pub max_retries: usize,
    /// Simultaneous in-flight requests the collector host sustains
    /// (connection-pool limit). Default calibrated so a 1868-URL sweep
    /// lands near the paper's ~55 s.
    pub max_inflight: usize,
    /// Real worker threads used to execute the sweep.
    pub pool_workers: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: VDuration::from_secs(15),
            max_retries: 2,
            max_inflight: 150,
            pool_workers: 8,
        }
    }
}

/// Why the resilient sweep scheduler skipped a request without issuing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The node's circuit breaker was open (or half-open beyond its one
    /// probe request).
    BreakerOpen,
    /// The sweep's deadline budget was exhausted before this request could
    /// be scheduled.
    Deadline,
}

/// Outcome of a single request (including its retries).
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Target node.
    pub node: NodeId,
    /// Category queried.
    pub category: Category,
    /// Parsed reading; `None` after exhausting retries or being skipped.
    pub reading: Option<NodeReading>,
    /// Total attempts made (1 = first try succeeded, 0 = skipped).
    pub attempts: usize,
    /// Attempts that hit the read timeout (stalled BMC).
    pub timeouts: usize,
    /// Simulated elapsed time across all attempts.
    pub elapsed: VDuration,
    /// Set when the resilient scheduler never issued the request.
    pub skip: Option<SkipReason>,
}

impl RequestOutcome {
    fn skipped(node: NodeId, category: Category, reason: SkipReason) -> RequestOutcome {
        RequestOutcome {
            node,
            category,
            reading: None,
            attempts: 0,
            timeouts: 0,
            elapsed: VDuration::ZERO,
            skip: Some(reason),
        }
    }
}

/// Outcome of a full sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-request outcomes, in request-pool order.
    pub results: Vec<RequestOutcome>,
    /// Simulated wall time for the sweep under the in-flight budget.
    pub makespan: VDuration,
    /// The deadline the sweep was budgeted against (resilient path only).
    pub deadline: Option<VDuration>,
}

impl SweepOutcome {
    /// Requests that delivered a reading.
    pub fn successes(&self) -> usize {
        self.results.iter().filter(|r| r.reading.is_some()).count()
    }

    /// Requests that were issued but exhausted retries.
    pub fn failures(&self) -> usize {
        self.results.len() - self.successes() - self.skipped()
    }

    /// Requests the resilient scheduler never issued.
    pub fn skipped(&self) -> usize {
        self.results.iter().filter(|r| r.skip.is_some()).count()
    }

    /// Requests skipped because a circuit breaker was open.
    pub fn skipped_breaker(&self) -> usize {
        self.results.iter().filter(|r| r.skip == Some(SkipReason::BreakerOpen)).count()
    }

    /// Requests skipped because the sweep deadline budget ran out.
    pub fn skipped_deadline(&self) -> usize {
        self.results.iter().filter(|r| r.skip == Some(SkipReason::Deadline)).count()
    }

    /// True when anything was skipped or failed — the sweep is running on
    /// partial data and staleness substitution applies downstream.
    pub fn degraded(&self) -> bool {
        self.skipped() > 0 || self.failures() > 0
    }

    /// Extra attempts beyond the first, summed.
    pub fn retries(&self) -> usize {
        self.results.iter().map(|r| r.attempts.saturating_sub(1)).sum()
    }

    /// Read-timeout hits across all requests and attempts.
    pub fn timeouts(&self) -> usize {
        self.results.iter().map(|r| r.timeouts).sum()
    }

    /// The 99th-percentile simulated request time, or `None` for an empty
    /// sweep (uses the non-panicking percentile so a degenerate sweep
    /// cannot take the monitor down).
    pub fn p99_request_secs(&self) -> Option<f64> {
        let times: Vec<f64> = self.results.iter().map(|r| r.elapsed.as_secs_f64()).collect();
        monster_util::stats::try_percentile(&times, 0.99)
    }

    /// Mean simulated time of *successful first-attempt* requests — the
    /// statistic the paper reports as "a Redfish API request takes 4.29
    /// seconds on average".
    pub fn mean_request_secs(&self) -> f64 {
        let firsts: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.reading.is_some() && r.attempts == 1)
            .map(|r| r.elapsed.as_secs_f64())
            .collect();
        monster_util::stats::mean(&firsts)
    }
}

/// The polling client.
#[derive(Debug, Clone, Default)]
pub struct RedfishClient {
    config: ClientConfig,
}

impl RedfishClient {
    /// Client with explicit configuration.
    pub fn new(config: ClientConfig) -> Self {
        RedfishClient { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// The request pool for a fleet: every (node, category) pair.
    pub fn request_pool(cluster: &SimulatedCluster) -> Vec<(NodeId, Category)> {
        cluster
            .node_ids()
            .iter()
            .flat_map(|&n| Category::ALL.into_iter().map(move |c| (n, c)))
            .collect()
    }

    /// Execute one request with the retry policy against the simulated
    /// fleet.
    pub fn fetch(
        &self,
        cluster: &SimulatedCluster,
        node: NodeId,
        category: Category,
    ) -> RequestOutcome {
        let mut elapsed = VDuration::ZERO;
        let mut attempts = 0;
        let mut timeouts = 0;
        while attempts <= self.config.max_retries {
            attempts += 1;
            match cluster.request(node, category) {
                Ok(BmcResponse::Ok(payload, latency)) => {
                    elapsed += latency;
                    let reading = parse_reading(category, &payload).ok();
                    return RequestOutcome {
                        node,
                        category,
                        reading,
                        attempts,
                        timeouts,
                        elapsed,
                        skip: None,
                    };
                }
                Ok(BmcResponse::Refused(latency)) => {
                    elapsed += latency;
                }
                Ok(BmcResponse::Stalled) => {
                    timeouts += 1;
                    elapsed += self.config.read_timeout;
                }
                Err(_) => {
                    // Unknown node: not retryable.
                    return RequestOutcome {
                        node,
                        category,
                        reading: None,
                        attempts,
                        timeouts,
                        elapsed,
                        skip: None,
                    };
                }
            }
        }
        RequestOutcome { node, category, reading: None, attempts, timeouts, elapsed, skip: None }
    }

    /// Execute one request with the resilient retry policy: jittered
    /// exponential backoff between attempts, per-attempt read timeouts
    /// trimmed to the remaining `budget`, and attempt-level failure
    /// reporting to `registry` (so a node's breaker can trip mid-request
    /// and cut the remaining retries).
    ///
    /// The total elapsed time never exceeds `budget` — that bound is what
    /// lets the sweep scheduler guarantee its deadline.
    pub fn fetch_resilient(
        &self,
        cluster: &SimulatedCluster,
        node: NodeId,
        category: Category,
        registry: &HealthRegistry,
        budget: VDuration,
        sweep: u64,
    ) -> RequestOutcome {
        let rcfg = registry.config();
        let mut elapsed = VDuration::ZERO;
        let mut attempts = 0;
        let mut timeouts = 0;
        loop {
            attempts += 1;
            let remaining = budget.saturating_sub(elapsed);
            // A real client bounds the read by both its configured timeout
            // and the time left in the sweep budget.
            let attempt_timeout = std::cmp::min(self.config.read_timeout, remaining);
            match cluster.request(node, category) {
                Ok(BmcResponse::Ok(payload, latency)) if latency <= attempt_timeout => {
                    elapsed += latency;
                    registry.record_success(node, latency);
                    let reading = parse_reading(category, &payload).ok();
                    return RequestOutcome {
                        node,
                        category,
                        reading,
                        attempts,
                        timeouts,
                        elapsed,
                        skip: None,
                    };
                }
                Ok(BmcResponse::Ok(..)) => {
                    // The payload would have arrived after the (possibly
                    // budget-trimmed) read timeout: the client hangs up.
                    timeouts += 1;
                    elapsed += attempt_timeout;
                    registry.record_failure(node);
                }
                Ok(BmcResponse::Refused(latency)) => {
                    elapsed += std::cmp::min(latency, attempt_timeout);
                    registry.record_failure(node);
                }
                Ok(BmcResponse::Stalled) => {
                    timeouts += 1;
                    elapsed += attempt_timeout;
                    registry.record_failure(node);
                }
                Err(_) => {
                    // Unknown node: not retryable.
                    return RequestOutcome {
                        node,
                        category,
                        reading: None,
                        attempts,
                        timeouts,
                        elapsed,
                        skip: None,
                    };
                }
            }
            if attempts > self.config.max_retries || registry.is_open(node) {
                break;
            }
            let delay = rcfg.backoff.delay(rcfg.seed, node, sweep, attempts as u32);
            if elapsed + delay + rcfg.min_attempt_budget > budget {
                break; // not enough budget left for a meaningful retry
            }
            elapsed += delay;
            monster_obs::histo("monster_redfish_backoff_seconds").observe_vdur(delay);
        }
        RequestOutcome { node, category, reading: None, attempts, timeouts, elapsed, skip: None }
    }

    /// Sweep the whole fleet: fan the request pool out on the worker pool,
    /// then compute the simulated makespan on the in-flight budget
    /// (longest-processing-time-first onto the least loaded channel).
    pub fn sweep(&self, cluster: &SimulatedCluster) -> SweepOutcome {
        let span = monster_obs::Span::enter("redfish.sweep");
        let pool_items = Self::request_pool(cluster);
        let pool = ThreadPool::new(self.config.pool_workers);
        let results = pool.scope_map(pool_items, |(n, c)| self.fetch(cluster, n, c));

        let mut times: Vec<VDuration> = results.iter().map(|r| r.elapsed).collect();
        times.sort_unstable_by(|a, b| b.cmp(a));
        let channels = self.config.max_inflight.max(1);
        let mut bins = vec![VDuration::ZERO; channels.min(times.len().max(1))];
        for t in times {
            let min = bins.iter_mut().min().expect("non-empty bins");
            *min += t;
        }
        let makespan = bins.into_iter().max().unwrap_or(VDuration::ZERO);
        let outcome = SweepOutcome { results, makespan, deadline: None };
        self.report(&outcome, span.context(), makespan);
        span.finish_after(makespan);
        outcome
    }

    /// Sweep the fleet with the resilience layer engaged: open-circuit
    /// nodes are skipped outright, half-open nodes get a single probe, and
    /// the remaining requests are packed cheapest-estimate-first onto the
    /// in-flight channels against the configured sweep deadline. When the
    /// budget runs out the sweep returns *degraded* — the unscheduled
    /// requests are reported as skipped instead of dragging the makespan
    /// past the collection cadence.
    ///
    /// By construction no channel is ever loaded past the deadline: a
    /// request is only admitted while its latency estimate fits, and
    /// [`Self::fetch_resilient`] trims per-attempt read timeouts to the
    /// channel's remaining budget.
    ///
    /// Runs single-threaded on purpose: breaker transitions, EWMA updates,
    /// and per-node RNG draws then happen in one deterministic order, so a
    /// seeded chaos replay is bit-identical across runs and machines (the
    /// wall-clock cost of a simulated fetch is microseconds).
    pub fn sweep_resilient(
        &self,
        cluster: &SimulatedCluster,
        registry: &HealthRegistry,
    ) -> SweepOutcome {
        let span = monster_obs::Span::enter("redfish.sweep");
        registry.begin_sweep();
        let sweep_idx = registry.sweep_index();
        let deadline = registry.config().sweep_deadline;
        let min_budget = registry.config().min_attempt_budget;

        // Breaker admission, node by node.
        let mut admitted: Vec<(NodeId, Category)> = Vec::new();
        let mut results: Vec<RequestOutcome> = Vec::new();
        for &node in cluster.node_ids() {
            match registry.admit(node) {
                Admission::Allow => admitted.extend(Category::ALL.into_iter().map(|c| (node, c))),
                Admission::Probe => {
                    // One probe request; the other categories stay skipped
                    // until the breaker closes.
                    admitted.push((node, Category::ALL[0]));
                    for &c in &Category::ALL[1..] {
                        results.push(RequestOutcome::skipped(node, c, SkipReason::BreakerOpen));
                    }
                }
                Admission::Skip => {
                    for c in Category::ALL {
                        results.push(RequestOutcome::skipped(node, c, SkipReason::BreakerOpen));
                    }
                }
            }
        }

        // Cheapest-estimate-first order: deadline exhaustion then sheds the
        // highest-latency suspects, never the healthy fleet. The sort is
        // stable, so ties keep management-network order.
        let mut order: Vec<(VDuration, NodeId, Category)> =
            admitted.into_iter().map(|(n, c)| (registry.estimate(n), n, c)).collect();
        order.sort_by_key(|&(estimate, _, _)| estimate);

        // Greedy least-loaded channel packing against the deadline.
        let channels = self.config.max_inflight.max(1).min(order.len().max(1));
        let mut bins = vec![VDuration::ZERO; channels];
        for (estimate, node, category) in order {
            // A breaker may have opened mid-sweep from this sweep's own
            // failures; skip the node's remaining requests if so.
            if registry.is_open(node) {
                results.push(RequestOutcome::skipped(node, category, SkipReason::BreakerOpen));
                continue;
            }
            let (bin_idx, load) = bins
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| **l)
                .map(|(i, l)| (i, *l))
                .expect("non-empty bins");
            let budget = deadline.saturating_sub(load);
            if load + estimate > deadline || budget < min_budget {
                results.push(RequestOutcome::skipped(node, category, SkipReason::Deadline));
                continue;
            }
            let outcome =
                self.fetch_resilient(cluster, node, category, registry, budget, sweep_idx);
            bins[bin_idx] += outcome.elapsed;
            results.push(outcome);
        }

        let makespan = bins.into_iter().max().unwrap_or(VDuration::ZERO);
        let outcome = SweepOutcome { results, makespan, deadline: Some(deadline) };
        registry.publish_gauges();
        self.report(&outcome, span.context(), makespan);
        span.finish_after(makespan);
        outcome
    }

    /// Publish a sweep's health to the self-monitoring registry
    /// (`monster_redfish_*` series on `GET /metrics`) and record the
    /// sweep's *interesting* per-BMC requests — skips, failures, retries —
    /// as child spans of the sweep span, each tagged with node/category
    /// (and `SkipReason` for skips). Healthy first-try requests stay out
    /// of the ring: at Quanah scale a sweep issues 1868 requests and the
    /// trace would be all noise. Kept out of [`Self::fetch`] so the
    /// per-request hot path stays untouched.
    fn report(
        &self,
        outcome: &SweepOutcome,
        sweep_ctx: monster_obs::TraceContext,
        makespan: VDuration,
    ) {
        monster_obs::counter("monster_redfish_sweeps_total").inc();
        monster_obs::counter("monster_redfish_requests_total").add(outcome.results.len() as u64);
        monster_obs::counter("monster_redfish_failures_total").add(outcome.failures() as u64);
        monster_obs::counter("monster_redfish_retries_total").add(outcome.retries() as u64);
        monster_obs::counter("monster_redfish_timeouts_total").add(outcome.timeouts() as u64);
        monster_obs::counter("monster_redfish_skipped_total").add(outcome.skipped() as u64);
        monster_obs::histo_help(
            "monster_sweep_duration_seconds",
            "Simulated makespan of one full-fleet Redfish sweep.",
        )
        .observe_vdur_traced(makespan, Some(sweep_ctx));
        let histo = monster_obs::histo("monster_redfish_request_seconds");
        for r in outcome.results.iter().filter(|r| r.skip.is_none()) {
            histo.observe_vdur(r.elapsed);
        }
        for r in &outcome.results {
            match r.skip {
                Some(reason) => {
                    monster_obs::Span::child_of("redfish.skip", sweep_ctx)
                        .with_attr("node", r.node.to_string())
                        .with_attr("category", r.category.to_string())
                        .with_attr("SkipReason", format!("{reason:?}"))
                        .finish_spanning(VDuration::ZERO);
                }
                None if r.reading.is_none() || r.attempts > 1 => {
                    let mut span = monster_obs::Span::child_of("redfish.request", sweep_ctx)
                        .with_attr("node", r.node.to_string())
                        .with_attr("category", r.category.to_string())
                        .with_attr("attempts", r.attempts.to_string())
                        .with_attr("timeouts", r.timeouts.to_string());
                    if r.reading.is_none() {
                        span.set_attr("outcome", "failed");
                    } else {
                        span.set_attr("outcome", "retried_ok");
                    }
                    span.finish_spanning(r.elapsed);
                }
                None => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmc::BmcConfig;
    use crate::cluster::ClusterConfig;

    fn small_cluster(nodes: usize, seed: u64) -> SimulatedCluster {
        SimulatedCluster::new(ClusterConfig::small(nodes, seed))
    }

    #[test]
    fn request_pool_covers_all_pairs() {
        let c = small_cluster(10, 1);
        let pool = RedfishClient::request_pool(&c);
        assert_eq!(pool.len(), 40);
        // Quanah-sized pool matches the paper's 1868.
        let full = SimulatedCluster::new(ClusterConfig::default());
        assert_eq!(RedfishClient::request_pool(&full).len(), 1868);
    }

    #[test]
    fn fetch_retries_through_refusals() {
        // A BMC that refuses often but never stalls: retries should lift
        // the success rate well above the single-attempt rate.
        let cfg = ClusterConfig {
            nodes: 30,
            bmc: BmcConfig { failure_rate: 0.3, stall_rate: 0.0, ..BmcConfig::default() },
            ..ClusterConfig::small(30, 2)
        };
        let cluster = SimulatedCluster::new(cfg);
        let client = RedfishClient::default();
        let outcomes: Vec<_> = cluster
            .node_ids()
            .iter()
            .map(|&n| client.fetch(&cluster, n, Category::Power))
            .collect();
        let ok = outcomes.iter().filter(|o| o.reading.is_some()).count();
        // P(fail all 3 attempts) = 0.3^3 ≈ 2.7%.
        assert!(ok >= 27, "ok {ok}/30");
        assert!(outcomes.iter().any(|o| o.attempts > 1), "no retries exercised");
    }

    #[test]
    fn stall_costs_full_read_timeout() {
        let cluster = small_cluster(1, 3);
        let node = cluster.node_ids()[0];
        cluster.set_bmc_alive(node, false).unwrap();
        let client = RedfishClient::default();
        let o = client.fetch(&cluster, node, Category::Thermal);
        assert!(o.reading.is_none());
        assert_eq!(o.attempts, 3);
        // 3 attempts x 15 s timeout.
        assert_eq!(o.elapsed, VDuration::from_secs(45));
    }

    #[test]
    fn sweep_makespan_matches_paper_scale() {
        // Full Quanah-sized sweep: mean request ≈4.3 s, 1868 requests over
        // 150 channels → makespan in the paper's ~55 s neighbourhood.
        let cluster = SimulatedCluster::new(ClusterConfig::default());
        let client = RedfishClient::default();
        let sweep = client.sweep(&cluster);
        assert_eq!(sweep.results.len(), 1868);
        assert!(sweep.successes() as f64 / 1868.0 > 0.97, "successes {}", sweep.successes());
        let mean = sweep.mean_request_secs();
        assert!((3.9..4.7).contains(&mean), "mean request {mean:.2}s");
        let makespan = sweep.makespan.as_secs_f64();
        assert!((45.0..70.0).contains(&makespan), "makespan {makespan:.1}s");
    }

    #[test]
    fn sweep_on_tiny_cluster_is_fast() {
        let cluster = small_cluster(4, 4);
        let client = RedfishClient::default();
        let sweep = client.sweep(&cluster);
        assert_eq!(sweep.results.len(), 16);
        // 16 requests over 150 channels: makespan ≈ slowest single request.
        assert!(sweep.makespan < VDuration::from_secs(50));
    }

    #[test]
    fn unknown_node_fetch_fails_cleanly() {
        let cluster = small_cluster(2, 5);
        let client = RedfishClient::default();
        let o = client.fetch(&cluster, NodeId::new(40, 1), Category::Power);
        assert!(o.reading.is_none());
        assert_eq!(o.attempts, 1);
    }

    // ---- resilient path -------------------------------------------------

    use crate::resilience::{BreakerState, ResilienceConfig};

    fn clean_cluster(nodes: usize, seed: u64) -> SimulatedCluster {
        SimulatedCluster::new(ClusterConfig {
            bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
            ..ClusterConfig::small(nodes, seed)
        })
    }

    #[test]
    fn retry_exhaustion_accounts_attempts_timeouts_elapsed() {
        // The satellite-checklist accounting test: a dead BMC exhausts
        // max_retries and the outcome reports exactly what was spent.
        let cluster = clean_cluster(1, 21);
        let node = cluster.node_ids()[0];
        cluster.set_bmc_alive(node, false).unwrap();
        let client = RedfishClient::default();
        let rcfg = ResilienceConfig::default();
        let registry = HealthRegistry::new(rcfg.clone());
        registry.begin_sweep();

        let budget = VDuration::from_secs(300); // ample: no trimming
        let o = client.fetch_resilient(&cluster, node, Category::Power, &registry, budget, 1);
        assert!(o.reading.is_none());
        assert!(o.skip.is_none());
        // Default breaker threshold is 3: the third stalled attempt trips
        // the breaker mid-request, so all 3 attempts ran.
        assert_eq!(o.attempts, client.config().max_retries + 1);
        assert_eq!(o.timeouts, 3);
        // Elapsed = 3 read timeouts + the two jittered backoff delays.
        let d1 = rcfg.backoff.delay(rcfg.seed, node, 1, 1);
        let d2 = rcfg.backoff.delay(rcfg.seed, node, 1, 2);
        assert_eq!(o.elapsed, VDuration::from_secs(45) + d1 + d2);
        assert_eq!(registry.breaker_state(node), BreakerState::Open);
    }

    #[test]
    fn budget_cuts_retries_and_bounds_elapsed() {
        let cluster = clean_cluster(1, 22);
        let node = cluster.node_ids()[0];
        cluster.set_bmc_alive(node, false).unwrap();
        let client = RedfishClient::default();
        let registry = HealthRegistry::new(ResilienceConfig::default());
        registry.begin_sweep();

        // 20 s budget: one full 15 s timeout, then no room for another
        // attempt after backoff — the request gives up inside its budget.
        let budget = VDuration::from_secs(20);
        let o = client.fetch_resilient(&cluster, node, Category::Power, &registry, budget, 1);
        assert!(o.reading.is_none());
        assert!(o.elapsed <= budget, "elapsed {} > budget {budget}", o.elapsed);
        assert!(o.attempts <= 2, "attempts {}", o.attempts);
    }

    #[test]
    fn resilient_sweep_on_clean_fleet_matches_plain_sweep_semantics() {
        let cluster = clean_cluster(6, 23);
        let client = RedfishClient::default();
        let registry = HealthRegistry::new(ResilienceConfig::default());
        let sweep = client.sweep_resilient(&cluster, &registry);
        assert_eq!(sweep.results.len(), 24);
        assert_eq!(sweep.successes(), 24);
        assert_eq!(sweep.skipped(), 0);
        assert!(!sweep.degraded());
        assert_eq!(sweep.deadline, Some(ResilienceConfig::default().sweep_deadline));
        assert!(sweep.makespan <= ResilienceConfig::default().sweep_deadline);
    }

    #[test]
    fn open_breaker_skips_node_then_probe_recovers_it() {
        let cluster = clean_cluster(3, 24);
        let victim = cluster.node_ids()[0];
        cluster.set_bmc_alive(victim, false).unwrap();
        let client = RedfishClient::default();
        let registry = HealthRegistry::new(ResilienceConfig::default());

        // Sweep 1: the victim's first request burns its attempts and trips
        // the breaker; its other 3 categories are skipped mid-sweep.
        let s1 = client.sweep_resilient(&cluster, &registry);
        assert_eq!(s1.failures(), 1);
        assert_eq!(s1.skipped_breaker(), 3);
        assert_eq!(registry.breaker_state(victim), BreakerState::Open);

        // Sweeps 2-3 (cooldown): the victim is skipped wholesale at zero
        // simulated cost.
        for _ in 0..2 {
            let s = client.sweep_resilient(&cluster, &registry);
            assert_eq!(s.skipped_breaker(), 4);
            assert_eq!(s.failures(), 0);
        }

        // The BMC comes back; the half-open probe succeeds and closes the
        // breaker, and the following sweep is fully fresh again.
        cluster.set_bmc_alive(victim, true).unwrap();
        let s4 = client.sweep_resilient(&cluster, &registry);
        assert_eq!(s4.skipped_breaker(), 3, "only the probe ran");
        assert_eq!(registry.breaker_state(victim), BreakerState::Closed);
        let s5 = client.sweep_resilient(&cluster, &registry);
        assert_eq!(s5.successes(), 12);
        assert!(!s5.degraded());
    }

    #[test]
    fn deadline_sheds_load_instead_of_overrunning() {
        // 8 nodes / 32 requests forced through 2 channels with a tight
        // deadline: the sweep must degrade, not overrun.
        let cluster = clean_cluster(8, 25);
        let client =
            RedfishClient::new(ClientConfig { max_inflight: 2, ..ClientConfig::default() });
        let rcfg = ResilienceConfig {
            sweep_deadline: VDuration::from_secs(30),
            ..ResilienceConfig::default()
        };
        let registry = HealthRegistry::new(rcfg);
        let sweep = client.sweep_resilient(&cluster, &registry);
        assert!(sweep.makespan <= VDuration::from_secs(30), "makespan {}", sweep.makespan);
        assert!(sweep.skipped_deadline() > 0, "nothing shed under a 30 s / 2-channel budget");
        assert!(sweep.successes() > 0, "everything shed");
        assert!(sweep.degraded());
    }
}
