//! Redfish resource payloads.
//!
//! Builds JSON documents shaped like real iDRAC Redfish responses (DMTF
//! Redfish 1.x schemas, trimmed to the members MonSTer reads) and parses
//! them back into [`NodeReading`]s. Keeping both directions here means the
//! collector is tested against the same payload shapes a real BMC would
//! produce.

use crate::sensors::{NodeSensors, VOLTAGE_RAILS};
use crate::types::{Category, HealthState, NodeReading};
use monster_json::{jobj, Object, Value};
use monster_util::{Error, NodeId, Result};

/// Build the JSON payload for one category from a node's sensor state.
pub fn payload(category: Category, node: NodeId, s: &NodeSensors) -> Value {
    match category {
        Category::Thermal => thermal(node, s),
        Category::Power => power(node, s),
        Category::Manager => manager(node, s),
        Category::System => system(node, s),
    }
}

fn status(health: HealthState) -> Value {
    jobj! { "State" => "Enabled", "Health" => health.as_str() }
}

fn thermal(node: NodeId, s: &NodeSensors) -> Value {
    let mut temps: Vec<Value> = Vec::new();
    for (i, t) in s.cpu_temps.iter().enumerate() {
        temps.push(jobj! {
            "Name" => format!("CPU{} Temp", i + 1),
            "ReadingCelsius" => round1(*t),
            "Status" => status(s.host_health),
        });
    }
    temps.push(jobj! {
        "Name" => "System Board Inlet Temp",
        "ReadingCelsius" => round1(s.inlet),
        "Status" => status(HealthState::Ok),
    });
    let fans: Vec<Value> = s
        .fans
        .iter()
        .enumerate()
        .map(|(i, f)| {
            jobj! {
                "Name" => format!("Fan {}", i + 1),
                "Reading" => round1(*f),
                "ReadingUnits" => "RPM",
                "Status" => status(HealthState::Ok),
            }
        })
        .collect();
    jobj! {
        "@odata.id" => format!("/redfish/v1/Chassis/System.Embedded.1/Thermal"),
        "Id" => "Thermal",
        "Name" => format!("Thermal ({})", node.bmc_addr()),
        "Temperatures" => Value::Array(temps),
        "Fans" => Value::Array(fans),
    }
}

fn power(node: NodeId, s: &NodeSensors) -> Value {
    let voltages: Vec<Value> = VOLTAGE_RAILS
        .iter()
        .map(|v| {
            jobj! {
                "Name" => format!("PS Voltage {v}V"),
                "ReadingVolts" => round2(*v),
                "Status" => status(HealthState::Ok),
            }
        })
        .collect();
    jobj! {
        "@odata.id" => "/redfish/v1/Chassis/System.Embedded.1/Power",
        "Id" => "Power",
        "Name" => format!("Power ({})", node.bmc_addr()),
        "PowerControl" => Value::Array(vec![jobj! {
            "Name" => "System Power Control",
            "PowerConsumedWatts" => round1(s.power),
        }]),
        "Voltages" => Value::Array(voltages),
    }
}

fn manager(node: NodeId, s: &NodeSensors) -> Value {
    jobj! {
        "@odata.id" => "/redfish/v1/Managers/iDRAC.Embedded.1",
        "Id" => "iDRAC.Embedded.1",
        "Name" => format!("Manager ({})", node.bmc_addr()),
        "ManagerType" => "BMC",
        "Model" => "13G DCS",
        "FirmwareVersion" => "2.63.60.61",
        "Status" => status(s.bmc_health),
    }
}

fn system(node: NodeId, s: &NodeSensors) -> Value {
    jobj! {
        "@odata.id" => "/redfish/v1/Systems/System.Embedded.1",
        "Id" => "System.Embedded.1",
        "Name" => format!("System ({})", node.label()),
        "Model" => "PowerEdge C6320",
        "Status" => status(s.host_health),
        "ProcessorSummary" => jobj! { "Count" => 2i64, "LogicalProcessorCount" => 36i64 },
    }
}

fn round1(v: f64) -> f64 {
    (v * 10.0).round() / 10.0
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Parse a category payload back into a [`NodeReading`].
pub fn parse_reading(category: Category, v: &Value) -> Result<NodeReading> {
    let bad = |what: &str| Error::parse(format!("redfish {category} payload missing {what}"));
    match category {
        Category::Thermal => {
            let temps = v
                .get("Temperatures")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("Temperatures"))?;
            let mut cpu_temps = Vec::new();
            let mut inlet = None;
            for t in temps {
                let name = t.get("Name").and_then(Value::as_str).unwrap_or("");
                let reading = t
                    .get("ReadingCelsius")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| bad("ReadingCelsius"))?;
                if name.starts_with("CPU") {
                    cpu_temps.push(reading);
                } else if name.contains("Inlet") {
                    inlet = Some(reading);
                }
            }
            let fans = v
                .get("Fans")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("Fans"))?
                .iter()
                .map(|f| f.get("Reading").and_then(Value::as_f64).ok_or_else(|| bad("Fan Reading")))
                .collect::<Result<Vec<f64>>>()?;
            Ok(NodeReading::Thermal {
                cpu_temps,
                inlet: inlet.ok_or_else(|| bad("Inlet Temp"))?,
                fans,
            })
        }
        Category::Power => {
            let usage = v
                .pointer("PowerControl/0/PowerConsumedWatts")
                .and_then(Value::as_f64)
                .ok_or_else(|| bad("PowerConsumedWatts"))?;
            let voltages = v
                .get("Voltages")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("Voltages"))?
                .iter()
                .map(|x| {
                    x.get("ReadingVolts").and_then(Value::as_f64).ok_or_else(|| bad("ReadingVolts"))
                })
                .collect::<Result<Vec<f64>>>()?;
            Ok(NodeReading::Power { usage_watts: usage, voltages })
        }
        Category::Manager => Ok(NodeReading::Manager { health: parse_health(v)? }),
        Category::System => Ok(NodeReading::System { health: parse_health(v)? }),
    }
}

fn parse_health(v: &Value) -> Result<HealthState> {
    v.pointer("Status/Health")
        .and_then(Value::as_str)
        .and_then(HealthState::parse)
        .ok_or_else(|| Error::parse("redfish payload missing Status/Health"))
}

/// An `Object` helper exported for gateway error bodies.
pub fn redfish_error(message: &str) -> Value {
    let mut o = Object::new();
    o.insert("error", jobj! { "message" => message });
    Value::Object(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_sim::SimRng;

    fn sample() -> NodeSensors {
        let mut rng = SimRng::derive(1, "model-test");
        let mut s = NodeSensors::new(&mut rng);
        for _ in 0..20 {
            s.step(0.6, 60.0, &mut rng);
        }
        s
    }

    #[test]
    fn thermal_payload_round_trips() {
        let s = sample();
        let v = payload(Category::Thermal, NodeId::new(1, 1), &s);
        match parse_reading(Category::Thermal, &v).unwrap() {
            NodeReading::Thermal { cpu_temps, inlet, fans } => {
                assert_eq!(cpu_temps.len(), 2);
                assert_eq!(fans.len(), 4);
                assert!((inlet - s.inlet).abs() < 0.06); // 0.1 rounding
                assert!((cpu_temps[0] - s.cpu_temps[0]).abs() < 0.06);
            }
            other => panic!("wrong reading {other:?}"),
        }
    }

    #[test]
    fn power_payload_round_trips() {
        let s = sample();
        let v = payload(Category::Power, NodeId::new(2, 3), &s);
        match parse_reading(Category::Power, &v).unwrap() {
            NodeReading::Power { usage_watts, voltages } => {
                assert!((usage_watts - s.power).abs() < 0.06);
                assert_eq!(voltages, vec![12.0, 5.0, 3.3]);
            }
            other => panic!("wrong reading {other:?}"),
        }
    }

    #[test]
    fn health_payloads_expose_paper_firmware() {
        let s = sample();
        let v = payload(Category::Manager, NodeId::new(1, 1), &s);
        // The firmware version quoted in §III-B1.
        assert_eq!(v.get("FirmwareVersion").unwrap().as_str(), Some("2.63.60.61"));
        assert_eq!(v.get("Model").unwrap().as_str(), Some("13G DCS"));
        assert!(matches!(
            parse_reading(Category::Manager, &v).unwrap(),
            NodeReading::Manager { .. }
        ));
        let v = payload(Category::System, NodeId::new(1, 1), &s);
        // 36 logical processors per node (Quanah's spec).
        assert_eq!(v.pointer("ProcessorSummary/LogicalProcessorCount").unwrap().as_i64(), Some(36));
    }

    #[test]
    fn parse_rejects_malformed_payloads() {
        let junk = jobj! { "nothing" => true };
        for c in Category::ALL {
            assert!(parse_reading(c, &junk).is_err(), "category {c}");
        }
    }

    #[test]
    fn payloads_serialize_to_realistic_sizes() {
        // Sanity: a thermal payload is O(1 KB), like a real trimmed
        // Redfish response.
        let s = sample();
        let v = payload(Category::Thermal, NodeId::new(1, 1), &s);
        let len = v.to_string_compact().len();
        assert!((300..4096).contains(&len), "payload {len} bytes");
    }
}
