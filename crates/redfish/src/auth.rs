//! Redfish session authentication.
//!
//! Real iDRACs gate every resource behind credentials: clients POST to
//! `/redfish/v1/SessionService/Sessions` with a username/password and
//! receive an `X-Auth-Token` to present on subsequent requests (the
//! collector's long-lived sessions avoid re-authenticating 1868 times per
//! sweep). This module implements the token store; the gateway's
//! authenticated router enforces it.

use monster_util::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Seconds a token stays valid without use (iDRAC defaults to 30 min).
pub const SESSION_IDLE_LIMIT: u64 = 1800;

#[derive(Debug, Clone)]
struct Session {
    user: String,
    /// Monotonic "last used" stamp (caller supplies the clock).
    last_used: u64,
}

/// Credential store + live session tokens.
pub struct SessionManager {
    username: String,
    password: String,
    sessions: Mutex<HashMap<String, Session>>,
    counter: std::sync::atomic::AtomicU64,
    seed: u64,
}

impl SessionManager {
    /// A manager accepting exactly one service account (how production
    /// MonSTer authenticates to every BMC).
    pub fn new(username: impl Into<String>, password: impl Into<String>, seed: u64) -> Self {
        SessionManager {
            username: username.into(),
            password: password.into(),
            sessions: Mutex::new(HashMap::new()),
            counter: std::sync::atomic::AtomicU64::new(1),
            seed,
        }
    }

    /// Attempt a login; returns the new token.
    pub fn login(&self, username: &str, password: &str, now: u64) -> Result<String> {
        if username != self.username || password != self.password {
            return Err(Error::Http { status: 401, message: "invalid credentials".into() });
        }
        let n = self.counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Deterministic per (seed, counter) but unguessable enough for the
        // simulation: FNV over the pair, hex-encoded twice.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in n.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let token = format!("{h:016x}{:016x}", h.wrapping_mul(n | 1));
        self.sessions
            .lock()
            .insert(token.clone(), Session { user: username.to_string(), last_used: now });
        Ok(token)
    }

    /// Validate a token, refreshing its idle timer. Expired tokens are
    /// removed and rejected.
    pub fn validate(&self, token: &str, now: u64) -> Result<String> {
        let mut sessions = self.sessions.lock();
        match sessions.get_mut(token) {
            Some(s) if now.saturating_sub(s.last_used) <= SESSION_IDLE_LIMIT => {
                s.last_used = now;
                Ok(s.user.clone())
            }
            Some(_) => {
                sessions.remove(token);
                Err(Error::Http { status: 401, message: "session expired".into() })
            }
            None => Err(Error::Http { status: 401, message: "unknown token".into() }),
        }
    }

    /// Explicit logout (DELETE on the session resource).
    pub fn logout(&self, token: &str) -> bool {
        self.sessions.lock().remove(token).is_some()
    }

    /// Live session count.
    pub fn active_sessions(&self) -> usize {
        self.sessions.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> SessionManager {
        SessionManager::new("monster", "hunter2", 42)
    }

    #[test]
    fn login_issues_distinct_tokens() {
        let m = mgr();
        let a = m.login("monster", "hunter2", 0).unwrap();
        let b = m.login("monster", "hunter2", 0).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.active_sessions(), 2);
        assert_eq!(m.validate(&a, 10).unwrap(), "monster");
        assert_eq!(m.validate(&b, 10).unwrap(), "monster");
    }

    #[test]
    fn bad_credentials_rejected() {
        let m = mgr();
        assert!(m.login("monster", "wrong", 0).is_err());
        assert!(m.login("root", "hunter2", 0).is_err());
        assert_eq!(m.active_sessions(), 0);
    }

    #[test]
    fn idle_expiry_enforced_and_refreshed() {
        let m = mgr();
        let t = m.login("monster", "hunter2", 0).unwrap();
        // Used at 1000: refreshes.
        assert!(m.validate(&t, 1000).is_ok());
        // 1000 + 1800 is still fine...
        assert!(m.validate(&t, 2800).is_ok());
        // ...but a gap beyond the idle limit kills it.
        assert!(m.validate(&t, 2800 + SESSION_IDLE_LIMIT + 1).is_err());
        // And it is gone for good.
        assert!(m.validate(&t, 2800).is_err());
        assert_eq!(m.active_sessions(), 0);
    }

    #[test]
    fn logout_invalidates() {
        let m = mgr();
        let t = m.login("monster", "hunter2", 0).unwrap();
        assert!(m.logout(&t));
        assert!(!m.logout(&t));
        assert!(m.validate(&t, 0).is_err());
    }

    #[test]
    fn unknown_token_rejected() {
        assert!(mgr().validate("deadbeef", 0).is_err());
    }
}
