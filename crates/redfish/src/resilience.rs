//! Per-BMC health tracking, circuit breakers, and jittered backoff.
//!
//! §III-B1 motivates the whole collector design with BMC misbehaviour:
//! 4.29 s mean requests, stalls, and drops against a 60 s cadence. The
//! original client retried instantly and remembered nothing between sweeps,
//! so a handful of stalled iDRACs could push a sweep past the cadence. This
//! module gives the client a memory:
//!
//! * [`HealthRegistry`] — one record per BMC: an EWMA of successful-request
//!   latency (the sweep scheduler's cost estimate) and a consecutive-failure
//!   count feeding a circuit breaker;
//! * circuit breakers — `Closed → Open → HalfOpen → Closed`. A breaker
//!   opens after [`BreakerConfig::failure_threshold`] consecutive failed
//!   *attempts*, which lets it trip mid-request: a dead BMC costs one
//!   45-second request, not four. Open breakers skip the node entirely for
//!   [`BreakerConfig::cooldown_sweeps`] sweeps, then admit a single probe
//!   request; probe success closes the breaker, probe failure re-opens it;
//! * [`BackoffConfig`] — jittered exponential backoff between retry
//!   attempts, replacing the immediate retry. The jitter factor is a pure
//!   function of (seed, node, sweep, attempt) so replays are deterministic.
//!
//! All state transitions are driven by the *sequential* resilient sweep in
//! [`crate::client`], so a chaos replay with a fixed seed is bit-identical
//! across runs and machines.

use monster_sim::{SimRng, VDuration};
use monster_util::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Jittered exponential backoff between retry attempts.
#[derive(Debug, Clone)]
pub struct BackoffConfig {
    /// Delay before the first retry.
    pub base: VDuration,
    /// Upper bound on any single delay.
    pub cap: VDuration,
    /// Growth factor per retry.
    pub multiplier: f64,
    /// Fraction of the nominal delay randomized away: the drawn delay is
    /// uniform in `[nominal * (1 - jitter), nominal * (1 + jitter)]`.
    pub jitter: f64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: VDuration::from_millis(500),
            cap: VDuration::from_secs(8),
            multiplier: 2.0,
            jitter: 0.5,
        }
    }
}

impl BackoffConfig {
    /// The delay before retry number `retry` (1-based) of a request to
    /// `node` during sweep `sweep`. Deterministic: the jitter draw depends
    /// only on the arguments, never on shared RNG state.
    pub fn delay(&self, seed: u64, node: NodeId, sweep: u64, retry: u32) -> VDuration {
        let nominal = (self.base.as_secs_f64()
            * self.multiplier.powi(retry.saturating_sub(1) as i32))
        .min(self.cap.as_secs_f64());
        let mut rng = SimRng::derive(seed, &format!("backoff/{}/{sweep}/{retry}", node.bmc_addr()));
        let factor = 1.0 + self.jitter * (2.0 * rng.uniform01() - 1.0);
        VDuration::from_secs_f64(nominal * factor)
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failed attempts that open the breaker.
    pub failure_threshold: u32,
    /// Sweeps an open breaker waits before admitting a probe.
    pub cooldown_sweeps: u64,
    /// Consecutive probe successes required to close a half-open breaker.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, cooldown_sweeps: 2, probe_successes: 1 }
    }
}

/// Everything the resilient collection path is tuned by.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Retry backoff policy.
    pub backoff: BackoffConfig,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Sweep deadline: the makespan budget each sweep is packed against.
    /// Must leave headroom under the collection cadence (60 s in the
    /// paper) so a degraded sweep can never delay the next one.
    pub sweep_deadline: VDuration,
    /// EWMA smoothing factor for per-BMC latency (weight of the newest
    /// sample).
    pub ewma_alpha: f64,
    /// Latency estimate for a BMC with no successful history yet — the
    /// paper's 4.29 s fleet mean.
    pub default_estimate: VDuration,
    /// Minimum budget worth starting a retry attempt with.
    pub min_attempt_budget: VDuration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            backoff: BackoffConfig::default(),
            breaker: BreakerConfig::default(),
            sweep_deadline: VDuration::from_secs(54),
            ewma_alpha: 0.3,
            default_estimate: VDuration::from_secs_f64(4.29),
            min_attempt_budget: VDuration::from_secs(1),
            seed: 0x5AFE,
        }
    }
}

/// Circuit-breaker state for one BMC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// The node is skipped; last-known-good values are served instead.
    Open,
    /// Cooldown elapsed: one probe request per sweep is admitted.
    HalfOpen,
}

/// What the registry says about issuing a request to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: all categories may be fetched.
    Allow,
    /// Breaker half-open: fetch a single probe request, skip the rest.
    Probe,
    /// Breaker open: skip the node, serve last-known-good.
    Skip,
}

#[derive(Debug, Clone)]
struct NodeHealth {
    state: BreakerState,
    consecutive_failures: u32,
    /// Sweep index at which the breaker (re-)opened.
    opened_at: u64,
    probe_ok: u32,
    ewma_secs: Option<f64>,
}

impl NodeHealth {
    fn new() -> Self {
        NodeHealth {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
            probe_ok: 0,
            ewma_secs: None,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    nodes: HashMap<NodeId, NodeHealth>,
    sweep: u64,
}

/// A point-in-time count of breakers by state, published as gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerCounts {
    /// Breakers in [`BreakerState::Closed`] (includes never-seen nodes
    /// only once they have a record).
    pub closed: usize,
    /// Breakers in [`BreakerState::Open`].
    pub open: usize,
    /// Breakers in [`BreakerState::HalfOpen`].
    pub half_open: usize,
}

/// Per-BMC health registry: EWMA latency, consecutive-failure counts, and
/// the circuit breakers they feed.
#[derive(Debug)]
pub struct HealthRegistry {
    config: ResilienceConfig,
    inner: Mutex<Inner>,
}

impl HealthRegistry {
    /// Fresh registry: every breaker closed, no latency history.
    pub fn new(config: ResilienceConfig) -> Self {
        HealthRegistry { config, inner: Mutex::new(Inner::default()) }
    }

    /// The active configuration.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Start a new sweep: advance the sweep clock and move open breakers
    /// whose cooldown has elapsed to half-open.
    pub fn begin_sweep(&self) {
        let mut inner = self.inner.lock();
        inner.sweep += 1;
        let sweep = inner.sweep;
        let cooldown = self.config.breaker.cooldown_sweeps;
        for health in inner.nodes.values_mut() {
            if health.state == BreakerState::Open && sweep > health.opened_at + cooldown {
                health.state = BreakerState::HalfOpen;
                health.probe_ok = 0;
                monster_obs::counter("monster_redfish_breaker_transitions_total").inc();
            }
        }
    }

    /// Sweeps started so far.
    pub fn sweep_index(&self) -> u64 {
        self.inner.lock().sweep
    }

    /// Admission decision for a node at the current sweep.
    pub fn admit(&self, node: NodeId) -> Admission {
        let inner = self.inner.lock();
        match inner.nodes.get(&node).map(|h| h.state).unwrap_or(BreakerState::Closed) {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => Admission::Skip,
        }
    }

    /// Current breaker state for a node (closed if never seen).
    pub fn breaker_state(&self, node: NodeId) -> BreakerState {
        self.inner.lock().nodes.get(&node).map(|h| h.state).unwrap_or(BreakerState::Closed)
    }

    /// True when the node's breaker is open — checked between retry
    /// attempts so a request in flight stops retrying the moment its own
    /// failures trip the breaker.
    pub fn is_open(&self, node: NodeId) -> bool {
        self.breaker_state(node) == BreakerState::Open
    }

    /// The scheduler's per-request cost estimate for a node: the latency
    /// EWMA, or the configured default for nodes without history.
    pub fn estimate(&self, node: NodeId) -> VDuration {
        let inner = self.inner.lock();
        match inner.nodes.get(&node).and_then(|h| h.ewma_secs) {
            Some(s) => VDuration::from_secs_f64(s),
            None => self.config.default_estimate,
        }
    }

    /// Record a successful request and its latency.
    pub fn record_success(&self, node: NodeId, latency: VDuration) {
        let alpha = self.config.ewma_alpha;
        let needed = self.config.breaker.probe_successes;
        let mut inner = self.inner.lock();
        let health = inner.nodes.entry(node).or_insert_with(NodeHealth::new);
        health.consecutive_failures = 0;
        let secs = latency.as_secs_f64();
        health.ewma_secs =
            Some(health.ewma_secs.map_or(secs, |e| alpha * secs + (1.0 - alpha) * e));
        if health.state == BreakerState::HalfOpen {
            health.probe_ok += 1;
            if health.probe_ok >= needed {
                health.state = BreakerState::Closed;
                monster_obs::counter("monster_redfish_breaker_transitions_total").inc();
            }
        }
    }

    /// Record one failed attempt (refused, stalled, or timed out). Opens
    /// the breaker when the consecutive-failure threshold is reached; a
    /// half-open breaker re-opens on any failed probe.
    pub fn record_failure(&self, node: NodeId) {
        let threshold = self.config.breaker.failure_threshold;
        let mut inner = self.inner.lock();
        let sweep = inner.sweep;
        let health = inner.nodes.entry(node).or_insert_with(NodeHealth::new);
        health.consecutive_failures += 1;
        let trip = match health.state {
            BreakerState::Closed => health.consecutive_failures >= threshold,
            BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        };
        if trip {
            health.state = BreakerState::Open;
            health.opened_at = sweep;
            health.probe_ok = 0;
            monster_obs::counter("monster_redfish_breaker_transitions_total").inc();
            monster_obs::counter("monster_redfish_breaker_opens_total").inc();
        }
    }

    /// Count breakers by state and publish the
    /// `monster_redfish_breakers_{closed,open,half_open}` gauges.
    pub fn publish_gauges(&self) -> BreakerCounts {
        let counts = self.breaker_counts();
        monster_obs::gauge("monster_redfish_breakers_closed").set(counts.closed as i64);
        monster_obs::gauge("monster_redfish_breakers_open").set(counts.open as i64);
        monster_obs::gauge("monster_redfish_breakers_half_open").set(counts.half_open as i64);
        counts
    }

    /// Count breakers by state.
    pub fn breaker_counts(&self) -> BreakerCounts {
        let inner = self.inner.lock();
        let mut counts = BreakerCounts::default();
        for h in inner.nodes.values() {
            match h.state {
                BreakerState::Closed => counts.closed += 1,
                BreakerState::Open => counts.open += 1,
                BreakerState::HalfOpen => counts.half_open += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeId {
        NodeId::new(1, 1)
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let cfg = BackoffConfig::default();
        let d1 = cfg.delay(1, node(), 1, 1);
        let d2 = cfg.delay(1, node(), 1, 2);
        let d9 = cfg.delay(1, node(), 1, 9);
        // Nominal 0.5 s / 1 s: jitter keeps each within +/-50%.
        assert!(d1.as_secs_f64() >= 0.25 && d1.as_secs_f64() <= 0.75, "d1 {d1}");
        assert!(d2.as_secs_f64() >= 0.5 && d2.as_secs_f64() <= 1.5, "d2 {d2}");
        // Deep retries cap at 8 s (+50% jitter).
        assert!(d9.as_secs_f64() <= 12.0, "d9 {d9}");
        // Pure function of its inputs.
        assert_eq!(d1, cfg.delay(1, node(), 1, 1));
        assert_ne!(cfg.delay(1, node(), 1, 1), cfg.delay(1, node(), 2, 1));
        assert_ne!(cfg.delay(1, node(), 1, 1), cfg.delay(2, node(), 1, 1));
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        // The deterministic state walk of the satellite checklist: a seeded
        // schedule of failures and successes drives one full cycle.
        let reg = HealthRegistry::new(ResilienceConfig::default());
        let n = node();
        reg.begin_sweep();
        assert_eq!(reg.breaker_state(n), BreakerState::Closed);
        assert_eq!(reg.admit(n), Admission::Allow);

        // Three consecutive failed attempts trip the breaker mid-request.
        reg.record_failure(n);
        reg.record_failure(n);
        assert_eq!(reg.breaker_state(n), BreakerState::Closed);
        reg.record_failure(n);
        assert_eq!(reg.breaker_state(n), BreakerState::Open);
        assert!(reg.is_open(n));
        assert_eq!(reg.admit(n), Admission::Skip);

        // Cooldown: 2 full sweeps skipped, then half-open with a probe.
        reg.begin_sweep();
        assert_eq!(reg.admit(n), Admission::Skip);
        reg.begin_sweep();
        assert_eq!(reg.admit(n), Admission::Skip);
        reg.begin_sweep();
        assert_eq!(reg.breaker_state(n), BreakerState::HalfOpen);
        assert_eq!(reg.admit(n), Admission::Probe);

        // Probe success closes it again.
        reg.record_success(n, VDuration::from_secs(4));
        assert_eq!(reg.breaker_state(n), BreakerState::Closed);
        assert_eq!(reg.admit(n), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let reg = HealthRegistry::new(ResilienceConfig::default());
        let n = node();
        reg.begin_sweep();
        for _ in 0..3 {
            reg.record_failure(n);
        }
        reg.begin_sweep();
        reg.begin_sweep();
        reg.begin_sweep();
        assert_eq!(reg.admit(n), Admission::Probe);
        reg.record_failure(n); // probe fails
        assert_eq!(reg.breaker_state(n), BreakerState::Open);
        // Cooldown restarts from the re-open sweep.
        reg.begin_sweep();
        assert_eq!(reg.admit(n), Admission::Skip);
        reg.begin_sweep();
        assert_eq!(reg.admit(n), Admission::Skip);
        reg.begin_sweep();
        assert_eq!(reg.admit(n), Admission::Probe);
    }

    #[test]
    fn success_resets_failure_streak() {
        let reg = HealthRegistry::new(ResilienceConfig::default());
        let n = node();
        reg.begin_sweep();
        reg.record_failure(n);
        reg.record_failure(n);
        reg.record_success(n, VDuration::from_secs(4));
        reg.record_failure(n);
        reg.record_failure(n);
        assert_eq!(reg.breaker_state(n), BreakerState::Closed, "streak did not reset");
        reg.record_failure(n);
        assert_eq!(reg.breaker_state(n), BreakerState::Open);
    }

    #[test]
    fn ewma_tracks_latency_and_feeds_estimates() {
        let cfg = ResilienceConfig::default();
        let reg = HealthRegistry::new(cfg.clone());
        let n = node();
        assert_eq!(reg.estimate(n), cfg.default_estimate);
        reg.record_success(n, VDuration::from_secs(10));
        assert_eq!(reg.estimate(n), VDuration::from_secs(10));
        reg.record_success(n, VDuration::from_secs(2));
        // 0.3 * 2 + 0.7 * 10 = 7.6
        assert!((reg.estimate(n).as_secs_f64() - 7.6).abs() < 1e-9);
    }

    #[test]
    fn breaker_counts_partition_the_fleet() {
        let reg = HealthRegistry::new(ResilienceConfig::default());
        reg.begin_sweep();
        let a = NodeId::new(1, 1);
        let b = NodeId::new(1, 2);
        let c = NodeId::new(1, 3);
        reg.record_success(a, VDuration::from_secs(4));
        for _ in 0..3 {
            reg.record_failure(b);
        }
        for _ in 0..3 {
            reg.record_failure(c);
        }
        reg.begin_sweep();
        reg.begin_sweep();
        reg.begin_sweep(); // b and c move to half-open
        reg.record_success(c, VDuration::from_secs(4)); // c closes
        let counts = reg.publish_gauges();
        assert_eq!(counts, BreakerCounts { closed: 2, open: 0, half_open: 1 });
    }
}
