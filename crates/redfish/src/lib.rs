//! `monster-redfish` — a simulated Redfish/BMC fleet and its client.
//!
//! The paper's out-of-band collection path (§III-B1) polls the iDRAC BMC of
//! each of 467 nodes over the management network: four Redfish resource
//! URLs per node (Thermal, Power, Managers, Systems) — a request pool of
//! 1868 URLs per sweep — with a measured mean response time of 4.29 s and a
//! full asynchronous sweep of about 55 s. iDRACs are resource-starved and
//! drop or stall requests under load, which is why the collector carries
//! connection timeouts, read timeouts, and retries.
//!
//! No iDRACs are available here, so this crate builds the fleet:
//!
//! * [`sensors`] — per-node physical state with first-order dynamics
//!   (CPU temperature follows scheduler load, fans follow temperature,
//!   power follows load) and health derived from thresholds;
//! * [`model`] — Redfish-conformant JSON payloads for the four resource
//!   categories (Table I's metric inventory);
//! * [`bmc`] — a simulated iDRAC: latency distribution calibrated to the
//!   paper's 4.29 s mean, a heavy stall tail, failure injection;
//! * [`cluster`] — the 467-node fleet with per-node deterministic RNG
//!   streams, advanced in lockstep with the scheduler simulation;
//! * [`client`] — the polling client: request-pool fan-out on a worker
//!   pool, timeout + retry policy, simulated sweep makespan;
//! * [`resilience`] — per-BMC health registry (EWMA latency, consecutive
//!   failures), circuit breakers, and jittered retry backoff feeding the
//!   client's deadline-aware degraded sweeps;
//! * [`gateway`] — an HTTP facade that serves the simulated fleet over
//!   real sockets (`/nodes/:addr/redfish/v1/...`) for end-to-end tests;
//! * [`telemetry`] — the DMTF Telemetry Service (the paper's §VI future
//!   work): BMC-side fast sampling with batched metric reports;
//! * [`auth`] — Redfish SessionService authentication (X-Auth-Token).

#![warn(missing_docs)]

pub mod auth;
pub mod bmc;
pub mod client;
pub mod cluster;
pub mod gateway;
pub mod model;
pub mod resilience;
pub mod sensors;
pub mod telemetry;
pub mod types;

pub use bmc::{BmcConfig, SimulatedBmc};
pub use client::{RedfishClient, SweepOutcome};
pub use cluster::{ClusterConfig, SimulatedCluster};
pub use resilience::{BreakerState, HealthRegistry, ResilienceConfig};
pub use types::{Category, HealthState, NodeReading};
