//! Per-node physical sensor dynamics.
//!
//! The simulated substitute for real silicon: each node carries a small
//! first-order thermal/power model driven by its scheduler load. The model
//! is deliberately simple but preserves the correlations the paper's
//! analysis tools rely on (Figs. 7–9): hot CPUs ⇒ fast fans ⇒ flagged
//! health; busy nodes ⇒ high power.

use crate::types::HealthState;
use monster_sim::SimRng;

/// Number of CPU sockets per node (Quanah's C6320 sleds are dual-socket).
pub const CPUS_PER_NODE: usize = 2;
/// Fans per node (Table I lists Fan 1–4).
pub const FANS_PER_NODE: usize = 4;
/// Voltage rails reported by the PSU.
pub const VOLTAGE_RAILS: [f64; 3] = [12.0, 5.0, 3.3];

/// Idle and peak operating points for the power model (W).
const POWER_IDLE: f64 = 118.0;
const POWER_PEAK: f64 = 395.0;
/// Idle and loaded CPU temperature targets (°C).
const TEMP_IDLE: f64 = 36.0;
const TEMP_LOADED: f64 = 84.0;
/// Health thresholds on CPU temperature (°C).
const TEMP_WARNING: f64 = 88.0;
const TEMP_CRITICAL: f64 = 97.0;

/// One node's live sensor state.
#[derive(Debug, Clone)]
pub struct NodeSensors {
    /// Current CPU utilization driving the model, 0..=1.
    pub load: f64,
    /// Per-socket CPU temperatures (°C).
    pub cpu_temps: [f64; CPUS_PER_NODE],
    /// Chassis inlet temperature (°C).
    pub inlet: f64,
    /// Fan speeds (RPM).
    pub fans: [f64; FANS_PER_NODE],
    /// Node power draw (W).
    pub power: f64,
    /// Additive fault injection on the power rail (W): a shorted VRM or
    /// runaway component that physical load cannot explain. Zero in
    /// healthy operation; the chaos harness and detector tests set it.
    pub power_offset: f64,
    /// Host health (derived from temperatures).
    pub host_health: HealthState,
    /// BMC health (rare independent hiccups).
    pub bmc_health: HealthState,
    /// A per-socket offset making sockets distinguishable.
    socket_bias: [f64; CPUS_PER_NODE],
}

impl NodeSensors {
    /// A node at idle equilibrium, with small per-node parameter jitter
    /// drawn from `rng`.
    pub fn new(rng: &mut SimRng) -> Self {
        let inlet = rng.uniform(17.0, 23.0);
        let socket_bias = [rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5)];
        NodeSensors {
            load: 0.0,
            cpu_temps: [TEMP_IDLE + socket_bias[0], TEMP_IDLE + socket_bias[1]],
            inlet,
            fans: [4400.0; FANS_PER_NODE],
            power: POWER_IDLE,
            power_offset: 0.0,
            host_health: HealthState::Ok,
            bmc_health: HealthState::Ok,
            socket_bias,
        }
    }

    /// Advance the model by one collection interval under utilization
    /// `load` (0..=1). `dt_secs` scales the first-order approach rate.
    pub fn step(&mut self, load: f64, dt_secs: f64, rng: &mut SimRng) {
        let load = load.clamp(0.0, 1.0);
        self.load = load;
        // Thermal time constant ~180 s: alpha per step.
        let alpha = (dt_secs / 180.0).clamp(0.0, 1.0);

        // Inlet drifts slowly with machine-room conditions.
        self.inlet += rng.normal(0.0, 0.05);
        self.inlet = self.inlet.clamp(15.0, 30.0);

        for (i, t) in self.cpu_temps.iter_mut().enumerate() {
            let target = TEMP_IDLE
                + (TEMP_LOADED - TEMP_IDLE) * load
                + (self.inlet - 20.0) * 0.6
                + self.socket_bias[i];
            *t += (target - *t) * alpha + rng.normal(0.0, 0.4);
            *t = t.clamp(self.inlet, 105.0);
        }

        // Fans chase the hotter socket.
        let hottest: f64 = self.cpu_temps.iter().copied().fold(f64::MIN, f64::max);
        let fan_target = 4200.0 + 9500.0 * ((hottest - 45.0) / 45.0).clamp(0.0, 1.0);
        for f in self.fans.iter_mut() {
            *f += (fan_target - *f) * (dt_secs / 30.0).clamp(0.0, 1.0) + rng.normal(0.0, 60.0);
            *f = f.clamp(2000.0, 16000.0);
        }

        // Power responds almost instantly to load, plus fan draw.
        let fan_watts = self.fans.iter().sum::<f64>() / (16000.0 * 4.0) * 35.0;
        self.power = POWER_IDLE
            + (POWER_PEAK - POWER_IDLE) * load
            + fan_watts
            + self.power_offset
            + rng.normal(0.0, 4.0);
        self.power = self.power.max(80.0);

        // Health derivation.
        self.host_health = if hottest >= TEMP_CRITICAL {
            HealthState::Critical
        } else if hottest >= TEMP_WARNING {
            HealthState::Warning
        } else {
            HealthState::Ok
        };
        // Rare BMC firmware hiccups, self-healing.
        self.bmc_health = if rng.chance(0.0005) { HealthState::Warning } else { HealthState::Ok };
    }

    /// The nine metrics the radar/clustering analysis consumes (Fig. 7's
    /// nine-dimensional profile): CPU1/CPU2 temp, inlet, 4 fans, power,
    /// and load.
    pub fn nine_metrics(&self) -> [f64; 9] {
        [
            self.cpu_temps[0],
            self.cpu_temps[1],
            self.inlet,
            self.fans[0],
            self.fans[1],
            self.fans[2],
            self.fans[3],
            self.power,
            self.load,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::derive(42, "sensors-test")
    }

    fn settle(s: &mut NodeSensors, load: f64, steps: usize, rng: &mut SimRng) {
        for _ in 0..steps {
            s.step(load, 60.0, rng);
        }
    }

    #[test]
    fn idle_node_is_cool_and_low_power() {
        let mut r = rng();
        let mut s = NodeSensors::new(&mut r);
        settle(&mut s, 0.0, 30, &mut r);
        assert!(s.cpu_temps[0] < 50.0, "idle temp {}", s.cpu_temps[0]);
        assert!(s.power < 180.0, "idle power {}", s.power);
        assert_eq!(s.host_health, HealthState::Ok);
    }

    #[test]
    fn loaded_node_heats_up_and_draws_power() {
        let mut r = rng();
        let mut s = NodeSensors::new(&mut r);
        settle(&mut s, 1.0, 60, &mut r);
        assert!(s.cpu_temps[0] > 70.0, "loaded temp {}", s.cpu_temps[0]);
        assert!(s.power > 300.0, "loaded power {}", s.power);
        // Fans responded.
        assert!(s.fans[0] > 8000.0, "fan {}", s.fans[0]);
    }

    #[test]
    fn load_change_moves_state_monotonically() {
        let mut r = rng();
        let mut s = NodeSensors::new(&mut r);
        settle(&mut s, 0.0, 30, &mut r);
        let idle_power = s.power;
        let idle_temp = s.cpu_temps[0];
        settle(&mut s, 0.9, 60, &mut r);
        assert!(s.power > idle_power + 100.0);
        assert!(s.cpu_temps[0] > idle_temp + 15.0);
        // Back to idle: cools again.
        settle(&mut s, 0.0, 60, &mut r);
        assert!(s.cpu_temps[0] < idle_temp + 12.0);
    }

    #[test]
    fn health_follows_thresholds() {
        let mut r = rng();
        let mut s = NodeSensors::new(&mut r);
        // Force a hot socket directly and step once at full load.
        s.cpu_temps = [99.0, 98.0];
        s.step(1.0, 1.0, &mut r);
        assert_eq!(s.host_health, HealthState::Critical);
        s.cpu_temps = [90.0, 85.0];
        s.step(1.0, 1.0, &mut r);
        assert_ne!(s.host_health, HealthState::Ok);
    }

    #[test]
    fn values_stay_physical_under_noise() {
        let mut r = rng();
        let mut s = NodeSensors::new(&mut r);
        for i in 0..500 {
            let load = ((i % 50) as f64) / 50.0;
            s.step(load, 60.0, &mut r);
            assert!(s.inlet >= 15.0 && s.inlet <= 30.0);
            for t in s.cpu_temps {
                assert!((15.0..=105.0).contains(&t), "temp {t}");
            }
            for f in s.fans {
                assert!((2000.0..=16000.0).contains(&f), "fan {f}");
            }
            assert!(s.power >= 80.0 && s.power < 500.0, "power {}", s.power);
        }
    }

    #[test]
    fn nine_metrics_vector_shape() {
        let mut r = rng();
        let s = NodeSensors::new(&mut r);
        let m = s.nine_metrics();
        assert_eq!(m.len(), 9);
        assert_eq!(m[8], 0.0); // load at init
    }

    #[test]
    fn determinism_same_seed_same_trajectory() {
        let mut r1 = SimRng::derive(7, "bmc/10.101.1.1");
        let mut r2 = SimRng::derive(7, "bmc/10.101.1.1");
        let mut a = NodeSensors::new(&mut r1);
        let mut b = NodeSensors::new(&mut r2);
        for i in 0..50 {
            let load = (i % 10) as f64 / 10.0;
            a.step(load, 60.0, &mut r1);
            b.step(load, 60.0, &mut r2);
        }
        assert_eq!(a.nine_metrics(), b.nine_metrics());
    }
}
