//! Shared Redfish types: categories, health states, parsed readings.

use monster_util::NodeId;
use std::fmt;

/// The four telemetry categories the current iDRAC firmware exposes
/// (§III-B1, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// `/redfish/v1/Chassis/System.Embedded.1/Thermal/` — CPU temps, inlet
    /// temp, fan speeds.
    Thermal,
    /// `/redfish/v1/Chassis/System.Embedded.1/Power/` — power usage,
    /// voltages.
    Power,
    /// `/redfish/v1/Managers/iDRAC.Embedded.1` — BMC health.
    Manager,
    /// `/redfish/v1/Systems/System.Embedded.1` — host system health.
    System,
}

impl Category {
    /// All categories, in the order the collector polls them.
    pub const ALL: [Category; 4] =
        [Category::Thermal, Category::Power, Category::Manager, Category::System];

    /// The resource path under `/redfish/v1/`.
    pub fn path(&self) -> &'static str {
        match self {
            Category::Thermal => "Chassis/System.Embedded.1/Thermal/",
            Category::Power => "Chassis/System.Embedded.1/Power/",
            Category::Manager => "Managers/iDRAC.Embedded.1",
            Category::System => "Systems/System.Embedded.1",
        }
    }

    /// The full query URL for a node, as the paper writes them
    /// (`https://10.101.1.1/redfish/v1/...`).
    pub fn url(&self, node: NodeId) -> String {
        format!("https://{}/redfish/v1/{}", node.bmc_addr(), self.path())
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::Thermal => "Thermal",
            Category::Power => "Power",
            Category::Manager => "Manager",
            Category::System => "System",
        };
        f.write_str(name)
    }
}

/// Redfish health states, plus the binary-integer code MonSTer stores
/// instead of the string (the §III-B3 pre-processing optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Everything nominal.
    Ok,
    /// Degraded but operating.
    Warning,
    /// Failed or about to.
    Critical,
}

impl HealthState {
    /// The Redfish wire string.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Ok => "OK",
            HealthState::Warning => "Warning",
            HealthState::Critical => "Critical",
        }
    }

    /// The compact integer code MonSTer stores (0/1/2).
    pub fn code(&self) -> i64 {
        match self {
            HealthState::Ok => 0,
            HealthState::Warning => 1,
            HealthState::Critical => 2,
        }
    }

    /// Parse the wire string.
    pub fn parse(s: &str) -> Option<HealthState> {
        match s {
            "OK" => Some(HealthState::Ok),
            "Warning" => Some(HealthState::Warning),
            "Critical" => Some(HealthState::Critical),
            _ => None,
        }
    }
}

/// One node's parsed telemetry for one category.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeReading {
    /// Thermal: CPU temps (°C), inlet temp (°C), fan speeds (RPM).
    Thermal {
        /// Per-socket CPU temperatures.
        cpu_temps: Vec<f64>,
        /// Chassis inlet temperature.
        inlet: f64,
        /// Fan speeds, RPM (Fan 1–4 in Table I).
        fans: Vec<f64>,
    },
    /// Power: node power draw (W) and PSU voltages (V).
    Power {
        /// System power usage.
        usage_watts: f64,
        /// Rail voltages.
        voltages: Vec<f64>,
    },
    /// BMC (iDRAC) health.
    Manager {
        /// BMC health state.
        health: HealthState,
    },
    /// Host system health.
    System {
        /// Host health rollup.
        health: HealthState,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urls_match_paper_format() {
        // The exact URL quoted in §III-B1.
        assert_eq!(
            Category::Thermal.url(NodeId::new(1, 1)),
            "https://10.101.1.1/redfish/v1/Chassis/System.Embedded.1/Thermal/"
        );
    }

    #[test]
    fn four_categories_times_467_nodes_is_1868() {
        // The paper's request-pool size.
        assert_eq!(Category::ALL.len() * 467, 1868);
    }

    #[test]
    fn health_codes_round_trip() {
        for h in [HealthState::Ok, HealthState::Warning, HealthState::Critical] {
            assert_eq!(HealthState::parse(h.as_str()), Some(h));
        }
        assert_eq!(HealthState::Ok.code(), 0);
        assert_eq!(HealthState::Warning.code(), 1);
        assert_eq!(HealthState::Critical.code(), 2);
        assert_eq!(HealthState::parse("Degraded"), None);
    }
}
