//! The simulated iDRAC: latency, stalls, and failures.
//!
//! §III-B1: "the current version of iDRAC has limited resources and cannot
//! handle a large number of requests ... a Redfish API request takes 4.29
//! seconds on average." The latency model is a log-normal body (firmware
//! doing its slow thing) mixed with an exponential stall tail (garbage
//! collection, flash writes); a small probability of outright failure
//! (connection refused / 503) forces the client's retry path.

use crate::model::payload;
use crate::sensors::NodeSensors;
use crate::types::Category;
use monster_json::Value;
use monster_sim::{LatencyDist, SimRng, VDuration};
use monster_util::{Error, NodeId, Result};

/// Tunables for the BMC behaviour model.
#[derive(Debug, Clone)]
pub struct BmcConfig {
    /// Response latency distribution.
    pub latency: LatencyDist,
    /// Probability a request fails outright (refused/5xx), per attempt.
    pub failure_rate: f64,
    /// Probability a request stalls past any reasonable read timeout
    /// (the client will time it out), per attempt.
    pub stall_rate: f64,
}

impl Default for BmcConfig {
    /// Calibrated to the paper's 4.29 s mean response time.
    fn default() -> Self {
        BmcConfig {
            latency: LatencyDist::Mix {
                p: 0.96,
                a: Box::new(LatencyDist::LogNormal(3.9, 0.30)),
                b: Box::new(LatencyDist::Exponential(9.0)),
            },
            failure_rate: 0.01,
            stall_rate: 0.004,
        }
    }
}

/// What one request attempt did.
#[derive(Debug, Clone, PartialEq)]
pub enum BmcResponse {
    /// Payload delivered after the given processing time.
    Ok(Value, VDuration),
    /// The BMC refused or errored quickly.
    Refused(VDuration),
    /// The BMC never answered; the client's read timeout governs the
    /// elapsed time.
    Stalled,
}

/// One node's BMC.
#[derive(Debug)]
pub struct SimulatedBmc {
    node: NodeId,
    config: BmcConfig,
    /// Dead BMCs (node powered off, or iDRAC crashed) answer nothing.
    alive: bool,
    rng: SimRng,
}

impl SimulatedBmc {
    /// Create the BMC for `node` with per-node deterministic randomness.
    pub fn new(node: NodeId, config: BmcConfig, seed: u64) -> Self {
        let rng = SimRng::derive(seed, &format!("bmc/{}", node.bmc_addr()));
        SimulatedBmc { node, config, alive: true, rng }
    }

    /// The node this BMC serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Power the BMC off/on (failure injection; §III-B1 notes out-of-band
    /// status works "even if the computing node is down" — but a dead BMC
    /// itself is unreachable).
    pub fn set_alive(&mut self, alive: bool) {
        self.alive = alive;
    }

    /// Whether the BMC currently answers.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// The current behaviour model.
    pub fn config(&self) -> &BmcConfig {
        &self.config
    }

    /// Override this BMC's failure/stall rates (fault injection and
    /// heterogeneous-fleet modelling: one bad rack in an otherwise healthy
    /// cluster). The latency distribution is untouched.
    pub fn set_rates(&mut self, failure_rate: f64, stall_rate: f64) {
        self.config.failure_rate = failure_rate;
        self.config.stall_rate = stall_rate;
    }

    /// Handle one request against the current sensor state.
    pub fn handle(&mut self, category: Category, sensors: &NodeSensors) -> BmcResponse {
        if !self.alive {
            return BmcResponse::Stalled;
        }
        if self.rng.chance(self.config.stall_rate) {
            return BmcResponse::Stalled;
        }
        if self.rng.chance(self.config.failure_rate) {
            // Fast refusal: TCP reset or instant 503.
            let t = VDuration::from_secs_f64(self.rng.uniform(0.05, 0.5));
            return BmcResponse::Refused(t);
        }
        let latency = self.config.latency.sample(&mut self.rng);
        BmcResponse::Ok(payload(category, self.node, sensors), latency)
    }

    /// Convenience used by the HTTP gateway: map a Redfish path suffix to
    /// a category.
    pub fn category_for_path(rest: &str) -> Result<Category> {
        let rest = rest.trim_matches('/');
        for c in Category::ALL {
            if c.path().trim_matches('/') == rest {
                return Ok(c);
            }
        }
        Err(Error::not_found(format!("no Redfish resource at {rest:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_util::stats::OnlineStats;

    fn sensors() -> NodeSensors {
        let mut rng = SimRng::derive(3, "bmc-test-sensors");
        NodeSensors::new(&mut rng)
    }

    #[test]
    fn default_latency_matches_paper_mean() {
        // Sampled mean should be near the paper's 4.29 s.
        let cfg = BmcConfig::default();
        let mut rng = SimRng::derive(11, "latency-check");
        let mut s = OnlineStats::new();
        for _ in 0..50_000 {
            s.push(cfg.latency.sample(&mut rng).as_secs_f64());
        }
        assert!((4.0..4.6).contains(&s.mean()), "mean latency {:.3}s, want ≈4.29s", s.mean());
    }

    #[test]
    fn ok_responses_carry_payload_and_latency() {
        let mut bmc = SimulatedBmc::new(NodeId::new(1, 1), BmcConfig::default(), 5);
        let s = sensors();
        let mut oks = 0;
        for _ in 0..200 {
            if let BmcResponse::Ok(v, t) = bmc.handle(Category::Power, &s) {
                assert!(v.get("PowerControl").is_some());
                assert!(t > VDuration::ZERO);
                oks += 1;
            }
        }
        assert!(oks > 150, "only {oks}/200 succeeded");
    }

    #[test]
    fn failure_rates_materialize() {
        let cfg = BmcConfig { failure_rate: 0.5, stall_rate: 0.2, ..BmcConfig::default() };
        let mut bmc = SimulatedBmc::new(NodeId::new(1, 2), cfg, 5);
        let s = sensors();
        let (mut ok, mut refused, mut stalled) = (0, 0, 0);
        for _ in 0..1000 {
            match bmc.handle(Category::Thermal, &s) {
                BmcResponse::Ok(..) => ok += 1,
                BmcResponse::Refused(_) => refused += 1,
                BmcResponse::Stalled => stalled += 1,
            }
        }
        assert!(stalled > 120, "stalled {stalled}");
        assert!(refused > 250, "refused {refused}");
        assert!(ok > 200, "ok {ok}");
    }

    #[test]
    fn dead_bmc_always_stalls() {
        let mut bmc = SimulatedBmc::new(NodeId::new(1, 3), BmcConfig::default(), 5);
        bmc.set_alive(false);
        let s = sensors();
        for _ in 0..10 {
            assert_eq!(bmc.handle(Category::System, &s), BmcResponse::Stalled);
        }
        bmc.set_alive(true);
        assert!(bmc.is_alive());
    }

    #[test]
    fn path_category_mapping() {
        assert_eq!(
            SimulatedBmc::category_for_path("Chassis/System.Embedded.1/Thermal/").unwrap(),
            Category::Thermal
        );
        assert_eq!(
            SimulatedBmc::category_for_path("Managers/iDRAC.Embedded.1").unwrap(),
            Category::Manager
        );
        assert!(SimulatedBmc::category_for_path("Unknown/Thing").is_err());
    }

    #[test]
    fn determinism_per_node_stream() {
        let s = sensors();
        let run = || {
            let mut bmc = SimulatedBmc::new(NodeId::new(2, 2), BmcConfig::default(), 9);
            (0..50)
                .map(|_| match bmc.handle(Category::Power, &s) {
                    BmcResponse::Ok(_, t) => t.as_nanos(),
                    BmcResponse::Refused(t) => t.as_nanos(),
                    BmcResponse::Stalled => 0,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
