//! The simulated node fleet.
//!
//! Owns one BMC + sensor model per node, with per-node deterministic RNG
//! streams so the fleet's behaviour is identical across runs regardless of
//! thread interleaving. The scheduler simulation drives per-node load; the
//! Redfish client polls concurrently.

use crate::bmc::{BmcConfig, BmcResponse, SimulatedBmc};
use crate::sensors::NodeSensors;
use crate::types::Category;
use monster_sim::SimRng;
use monster_util::{Error, NodeId, Result};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (the paper's Quanah cluster: 467).
    pub nodes: usize,
    /// Sleds per chassis for the management addressing scheme.
    pub slots_per_chassis: u16,
    /// Master seed for all per-node streams.
    pub seed: u64,
    /// BMC behaviour applied to every node.
    pub bmc: BmcConfig,
    /// Per-node BMC overrides by enumeration index, applied on top of
    /// `bmc` — a heterogeneous fleet (one flaky rack) in one config.
    /// Empty by default.
    pub bmc_overrides: Vec<(usize, BmcConfig)>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 467,
            slots_per_chassis: 4,
            seed: 20_170_101, // Quanah commissioning date
            bmc: BmcConfig::default(),
            bmc_overrides: Vec::new(),
        }
    }
}

impl ClusterConfig {
    /// A small fleet for fast tests.
    pub fn small(nodes: usize, seed: u64) -> Self {
        ClusterConfig { nodes, seed, ..ClusterConfig::default() }
    }
}

struct NodeCell {
    bmc: SimulatedBmc,
    sensors: NodeSensors,
    sensor_rng: SimRng,
}

/// The fleet. All methods take `&self`; per-node state is individually
/// locked so concurrent polling scales.
pub struct SimulatedCluster {
    ids: Vec<NodeId>,
    cells: HashMap<NodeId, Mutex<NodeCell>>,
}

impl SimulatedCluster {
    /// Build the fleet at idle.
    pub fn new(config: ClusterConfig) -> Self {
        let ids = NodeId::enumerate(config.nodes, config.slots_per_chassis);
        let cells = ids
            .iter()
            .enumerate()
            .map(|(index, &id)| {
                let mut sensor_rng =
                    SimRng::derive(config.seed, &format!("sensors/{}", id.bmc_addr()));
                let sensors = NodeSensors::new(&mut sensor_rng);
                let bmc_config = config
                    .bmc_overrides
                    .iter()
                    .rev()
                    .find(|(i, _)| *i == index)
                    .map(|(_, c)| c.clone())
                    .unwrap_or_else(|| config.bmc.clone());
                let bmc = SimulatedBmc::new(id, bmc_config, config.seed);
                (id, Mutex::new(NodeCell { bmc, sensors, sensor_rng }))
            })
            .collect();
        SimulatedCluster { ids, cells }
    }

    /// All node ids, in management-network order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the fleet is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Advance every node's physics by `dt_secs`, with per-node utilization
    /// supplied by `load_of` (the scheduler's view).
    pub fn step(&self, dt_secs: f64, mut load_of: impl FnMut(NodeId) -> f64) {
        for &id in &self.ids {
            let mut cell = self.cells[&id].lock();
            let load = load_of(id);
            let cell = &mut *cell;
            cell.sensors.step(load, dt_secs, &mut cell.sensor_rng);
        }
    }

    /// Issue one Redfish request against a node's BMC.
    pub fn request(&self, node: NodeId, category: Category) -> Result<BmcResponse> {
        let cell =
            self.cells.get(&node).ok_or_else(|| Error::not_found(format!("no node {node}")))?;
        let mut cell = cell.lock();
        let cell = &mut *cell;
        Ok(cell.bmc.handle(category, &cell.sensors))
    }

    /// Failure injection: mark a node's BMC dead or alive.
    pub fn set_bmc_alive(&self, node: NodeId, alive: bool) -> Result<()> {
        let cell =
            self.cells.get(&node).ok_or_else(|| Error::not_found(format!("no node {node}")))?;
        cell.lock().bmc.set_alive(alive);
        Ok(())
    }

    /// Fault injection: override one node's failure/stall rates at runtime
    /// (the chaos harness drives these from a [`monster_sim::FaultProfile`]
    /// schedule).
    pub fn set_bmc_rates(&self, node: NodeId, failure_rate: f64, stall_rate: f64) -> Result<()> {
        let cell =
            self.cells.get(&node).ok_or_else(|| Error::not_found(format!("no node {node}")))?;
        cell.lock().bmc.set_rates(failure_rate, stall_rate);
        Ok(())
    }

    /// Apply a [`monster_sim::FaultSpec`] to one node: rates plus
    /// dead/alive state in a single call.
    pub fn apply_fault(&self, node: NodeId, spec: monster_sim::FaultSpec) -> Result<()> {
        let cell =
            self.cells.get(&node).ok_or_else(|| Error::not_found(format!("no node {node}")))?;
        let mut cell = cell.lock();
        cell.bmc.set_rates(spec.failure_rate, spec.stall_rate);
        cell.bmc.set_alive(!spec.dead);
        Ok(())
    }

    /// Inject an additive power fault on one node (W): the sensor model
    /// adds it every step, so the reading jumps by an amount no load
    /// change explains — exactly what the streaming detectors exist to
    /// catch. Zero restores healthy physics.
    pub fn set_power_offset(&self, node: NodeId, watts: f64) -> Result<()> {
        let cell =
            self.cells.get(&node).ok_or_else(|| Error::not_found(format!("no node {node}")))?;
        cell.lock().sensors.power_offset = watts;
        Ok(())
    }

    /// Snapshot a node's current sensor state (ground truth for tests and
    /// the analysis pipeline).
    pub fn sensors(&self, node: NodeId) -> Result<NodeSensors> {
        let cell =
            self.cells.get(&node).ok_or_else(|| Error::not_found(format!("no node {node}")))?;
        Ok(cell.lock().sensors.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quanah_sized() {
        let c = SimulatedCluster::new(ClusterConfig::default());
        assert_eq!(c.len(), 467);
        assert_eq!(c.node_ids()[0], NodeId::new(1, 1));
        assert!(!c.is_empty());
    }

    #[test]
    fn step_applies_per_node_load() {
        let c = SimulatedCluster::new(ClusterConfig::small(4, 1));
        let hot = c.node_ids()[0];
        for _ in 0..40 {
            c.step(60.0, |id| if id == hot { 1.0 } else { 0.0 });
        }
        let hot_s = c.sensors(hot).unwrap();
        let cold_s = c.sensors(c.node_ids()[3]).unwrap();
        assert!(hot_s.power > cold_s.power + 150.0);
        assert!(hot_s.cpu_temps[0] > cold_s.cpu_temps[0] + 20.0);
    }

    #[test]
    fn requests_reflect_current_state() {
        let c = SimulatedCluster::new(ClusterConfig::small(2, 2));
        for _ in 0..30 {
            c.step(60.0, |_| 0.8);
        }
        let node = c.node_ids()[0];
        // Retry until the stochastic BMC answers.
        let mut watts = None;
        for _ in 0..20 {
            if let BmcResponse::Ok(v, _) = c.request(node, Category::Power).unwrap() {
                watts = v.pointer("PowerControl/0/PowerConsumedWatts").and_then(|x| x.as_f64());
                break;
            }
        }
        let truth = c.sensors(node).unwrap().power;
        let got = watts.expect("BMC never answered in 20 tries");
        assert!((got - truth).abs() < 0.06, "got {got}, truth {truth}");
    }

    #[test]
    fn unknown_node_is_not_found() {
        let c = SimulatedCluster::new(ClusterConfig::small(2, 3));
        assert!(c.request(NodeId::new(99, 9), Category::Power).is_err());
        assert!(c.sensors(NodeId::new(99, 9)).is_err());
        assert!(c.set_bmc_alive(NodeId::new(99, 9), false).is_err());
    }

    #[test]
    fn killed_bmc_stalls_until_revived() {
        let c = SimulatedCluster::new(ClusterConfig::small(2, 4));
        let node = c.node_ids()[1];
        c.set_bmc_alive(node, false).unwrap();
        for _ in 0..5 {
            assert_eq!(c.request(node, Category::System).unwrap(), BmcResponse::Stalled);
        }
        c.set_bmc_alive(node, true).unwrap();
        let mut any_ok = false;
        for _ in 0..20 {
            if matches!(c.request(node, Category::System).unwrap(), BmcResponse::Ok(..)) {
                any_ok = true;
                break;
            }
        }
        assert!(any_ok);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let c = SimulatedCluster::new(ClusterConfig::small(3, 7));
            for i in 0..20 {
                c.step(60.0, |id| ((id.slot as usize + i) % 3) as f64 / 2.0);
            }
            c.node_ids().iter().map(|&id| c.sensors(id).unwrap().nine_metrics()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_node_overrides_make_heterogeneous_fleets() {
        // Node 0 is configured always-refusing, node 1 keeps the clean
        // cluster-wide default: one bad sled, one good one.
        let cfg = ClusterConfig {
            bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
            bmc_overrides: vec![(
                0,
                BmcConfig { failure_rate: 1.0, stall_rate: 0.0, ..BmcConfig::default() },
            )],
            ..ClusterConfig::small(2, 11)
        };
        let c = SimulatedCluster::new(cfg);
        let (bad, good) = (c.node_ids()[0], c.node_ids()[1]);
        for _ in 0..20 {
            assert!(matches!(c.request(bad, Category::Power).unwrap(), BmcResponse::Refused(_)));
            assert!(matches!(c.request(good, Category::Power).unwrap(), BmcResponse::Ok(..)));
        }
    }

    #[test]
    fn runtime_rate_overrides_apply_and_clear() {
        let cfg = ClusterConfig {
            bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
            ..ClusterConfig::small(2, 12)
        };
        let c = SimulatedCluster::new(cfg);
        let node = c.node_ids()[0];
        c.set_bmc_rates(node, 0.0, 1.0).unwrap();
        for _ in 0..5 {
            assert_eq!(c.request(node, Category::Thermal).unwrap(), BmcResponse::Stalled);
        }
        c.set_bmc_rates(node, 0.0, 0.0).unwrap();
        assert!(matches!(c.request(node, Category::Thermal).unwrap(), BmcResponse::Ok(..)));
        // apply_fault drives both rates and liveness.
        c.apply_fault(
            node,
            monster_sim::FaultSpec { failure_rate: 0.0, stall_rate: 0.0, dead: true },
        )
        .unwrap();
        assert_eq!(c.request(node, Category::Thermal).unwrap(), BmcResponse::Stalled);
        c.apply_fault(node, monster_sim::FaultSpec::NONE).unwrap();
        assert!(matches!(c.request(node, Category::Thermal).unwrap(), BmcResponse::Ok(..)));
        assert!(c.set_bmc_rates(NodeId::new(99, 9), 0.5, 0.5).is_err());
    }

    #[test]
    fn concurrent_polling_is_safe() {
        let c = std::sync::Arc::new(SimulatedCluster::new(ClusterConfig::small(8, 8)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for &id in c.node_ids() {
                        for cat in Category::ALL {
                            let _ = c.request(id, cat).unwrap();
                        }
                    }
                });
            }
            let c2 = std::sync::Arc::clone(&c);
            s.spawn(move || {
                for _ in 0..10 {
                    c2.step(60.0, |_| 0.5);
                }
            });
        });
    }
}
