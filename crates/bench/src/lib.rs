//! `monster-bench` — the evaluation harness.
//!
//! One binary per table/figure of the paper (`cargo run -p monster-bench
//! --release --bin fig10` etc.) plus criterion wall-clock benches. This
//! library holds the shared fixtures: populated deployments at a reduced
//! node count with cost amplification back to Quanah scale, so the
//! simulated timings are comparable to the paper's while the harness runs
//! in seconds.

pub mod storm;

use monster_collector::SchemaVersion;
use monster_core::{Monster, MonsterConfig};
use monster_redfish::bmc::BmcConfig;
use monster_scheduler::WorkloadConfig;
use monster_sim::DiskModel;

/// Nodes in the scaled-down experiment fleet. Costs are amplified by
/// 467/16 ≈ 29× so simulated timings read at full-cluster scale.
pub const FIXTURE_NODES: usize = 16;

/// The workload used by the query-performance fixtures: small enough to
/// keep a 16-node fleet sane, busy enough that UGE/job measurements carry
/// realistic data.
pub fn fixture_workload() -> WorkloadConfig {
    WorkloadConfig {
        mpi_users: 1,
        array_users: 1,
        serial_users: 5,
        submissions_per_user_day: 4.0,
        seed: 77,
    }
}

/// Build a deployment and collect `days` of history on the bulk path.
///
/// `sample_every_secs` is the collection cadence; the paper's is 60 s, but
/// fixtures may coarsen it (the query-time experiments care about relative
/// shape, and the cost amplification keeps absolute numbers at scale).
pub fn populated(
    schema: SchemaVersion,
    disk: DiskModel,
    days: i64,
    sample_every_secs: i64,
) -> Monster {
    let mut m = Monster::new(MonsterConfig {
        nodes: FIXTURE_NODES,
        seed: 42,
        schema,
        interval_secs: sample_every_secs,
        disk,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        workload: Some(fixture_workload()),
        horizon_secs: days * 86_400,
        amplify_to_quanah: true,
        ..MonsterConfig::default()
    });
    let intervals = (days * 86_400 / sample_every_secs) as usize;
    m.run_intervals_bulk(intervals);
    m
}

use monster_builder::{BuilderRequest, ExecMode};
use monster_scheduler::QmasterConfig;
use monster_tsdb::Aggregation;

/// The experiment's data start time (the deployment epoch).
pub fn data_start() -> monster_util::EpochSecs {
    QmasterConfig::default().start_time
}

/// The Fig. 10 interval grid, in seconds: 5/10/30/60/120 minutes.
pub const INTERVALS: [i64; 5] = [300, 600, 1_800, 3_600, 7_200];

/// The Fig. 10 time-range grid, in days: 1..=7.
pub const RANGES_DAYS: [i64; 7] = [1, 2, 3, 4, 5, 6, 7];

/// Run the Fig. 10-style grid on a populated deployment and return
/// `(days, interval_secs, simulated query+processing time)`.
pub fn query_grid(
    m: &Monster,
    ranges_days: &[i64],
    intervals: &[i64],
    mode: ExecMode,
) -> Vec<(i64, i64, monster_sim::VDuration)> {
    let t0 = data_start();
    let mut out = Vec::new();
    for &days in ranges_days {
        for &interval in intervals {
            let req = BuilderRequest::new(t0, t0 + days * 86_400, interval, Aggregation::Max)
                .expect("valid request");
            let outcome = m.builder_query(&req, mode).expect("query grid");
            out.push((days, interval, outcome.query_processing_time()));
        }
    }
    out
}

/// Print a markdown-ish table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Format seconds like the paper's axes.
pub fn secs(d: monster_sim::VDuration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_populates_quickly_and_fully() {
        let m = populated(SchemaVersion::Optimized, DiskModel::SSD, 1, 300);
        let stats = m.db().stats();
        assert!(stats.points > 50_000, "points {}", stats.points);
        assert!(stats.shards >= 1);
        // Amplification configured.
        assert!(m.db().config().cost.amplification > 20.0);
    }
}
