//! Fig. 12 — query & processing time using HDDs vs SSDs (previous schema,
//! sequential). Paper: SSDs help, but only 1.5–2.1× — "the performance
//! gains are limited".

use monster_bench::{populated, query_grid, secs, RANGES_DAYS};
use monster_builder::ExecMode;
use monster_collector::SchemaVersion;
use monster_sim::DiskModel;

fn main() {
    eprintln!("populating 7 days (previous schema) on HDD and SSD...");
    let hdd = populated(SchemaVersion::Previous, DiskModel::HDD, 7, 60);
    let ssd = populated(SchemaVersion::Previous, DiskModel::SSD, 7, 60);

    println!("FIG. 12 — HDD vs SSD (previous schema, sequential, 5 m windows)\n");
    println!("{:>6} {:>10} {:>10} {:>9}", "days", "HDD (s)", "SSD (s)", "speedup");
    let intervals = [300i64];
    let g_hdd = query_grid(&hdd, &RANGES_DAYS, &intervals, ExecMode::Sequential);
    let g_ssd = query_grid(&ssd, &RANGES_DAYS, &intervals, ExecMode::Sequential);
    for (h, s) in g_hdd.iter().zip(&g_ssd) {
        let speedup = h.2.as_secs_f64() / s.2.as_secs_f64();
        println!("{:>6} {:>10} {:>10} {:>8.2}x", h.0, secs(h.2), secs(s.2), speedup);
    }
    println!("\npaper: 1.5x–2.1x — faster storage alone does not make the service responsive");
}
