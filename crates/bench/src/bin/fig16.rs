//! Fig. 16 — performance achievements of the optimizations, applied
//! cumulatively. Paper: 17–25× overall; 3.78 s when querying 6 hours,
//! 12.9 s when querying 72 hours.

use monster_bench::{data_start, populated, secs};
use monster_builder::{BuilderRequest, ExecMode};
use monster_collector::SchemaVersion;
use monster_sim::DiskModel;
use monster_tsdb::Aggregation;

fn main() {
    eprintln!("populating four configurations (7 days each)...");
    let base = populated(SchemaVersion::Previous, DiskModel::HDD, 7, 60);
    let ssd = populated(SchemaVersion::Previous, DiskModel::SSD, 7, 60);
    let schema = populated(SchemaVersion::Optimized, DiskModel::SSD, 7, 60);
    // `schema` serves both the sequential and the concurrent final config.

    let t0 = data_start();
    let hours = [6i64, 24, 72, 168];
    println!("FIG. 16 — CUMULATIVE OPTIMIZATION ACHIEVEMENTS (5 m windows)\n");
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>12} {:>9}",
        "hours", "original", "+SSD", "+schema", "+concurrent", "overall"
    );
    for h in hours {
        let req = BuilderRequest::new(t0, t0 + h * 3600, 300, Aggregation::Max).unwrap();
        let t_base =
            base.builder_query(&req, ExecMode::Sequential).unwrap().query_processing_time();
        let t_ssd = ssd.builder_query(&req, ExecMode::Sequential).unwrap().query_processing_time();
        let t_schema =
            schema.builder_query(&req, ExecMode::Sequential).unwrap().query_processing_time();
        let t_conc = schema
            .builder_query(&req, ExecMode::Concurrent { workers: 16 })
            .unwrap()
            .query_processing_time();
        println!(
            "{:>7} {:>12} {:>10} {:>12} {:>12} {:>8.1}x",
            h,
            secs(t_base),
            secs(t_ssd),
            secs(t_schema),
            secs(t_conc),
            t_base.as_secs_f64() / t_conc.as_secs_f64()
        );
    }
    println!("\npaper: 17x–25x overall; 3.78 s @ 6 h and 12.9 s @ 72 h in the final configuration");
}
