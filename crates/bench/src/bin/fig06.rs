//! Fig. 6 — timeline visualization of one day of job scheduling.
//!
//! Prints the per-user summary the figure annotates (job count, host
//! count) plus waiting/running statistics; `examples/job_timeline.rs`
//! renders the full strip chart.

use monster_analysis::timeline::build_timeline;
use monster_scheduler::{Qmaster, QmasterConfig, WorkloadConfig, WorkloadGenerator};

fn main() {
    let cfg = QmasterConfig { nodes: 128, ..QmasterConfig::default() };
    let t0 = cfg.start_time;
    let t_end = t0 + 86_400;
    let mut qm = Qmaster::new(cfg);
    let mut gen = WorkloadGenerator::new(WorkloadConfig::default());
    let submitted = gen.drive(&mut qm, t0, t_end);
    qm.run_until(t_end);

    println!("FIG. 6 — 1-DAY JOB SCHEDULING TIMELINE (128 nodes)\n");
    println!("{submitted} jobs submitted over the day\n");
    println!("{:<10} {:>6} {:>6} {:>12} {:>12}", "user", "jobs", "hosts", "mean wait", "max wait");
    for tl in build_timeline(qm.jobs(), t0, t_end) {
        let max_wait = tl.bars.iter().map(|b| b.wait_secs(t_end)).max().unwrap_or(0);
        println!(
            "{:<10} {:>6} {:>6} {:>9.1} min {:>9.1} min",
            tl.user.as_str(),
            tl.job_count(),
            tl.hosts_used,
            tl.mean_wait_secs(t_end) / 60.0,
            max_wait as f64 / 60.0,
        );
    }
    println!("\npaper observations to reproduce:");
    println!(" - an MPI user (jieyao-like) submits few jobs spanning many hosts");
    println!(" - an array user (abdumal-like) submits hundreds of jobs on few hosts");
    println!(" - some jobs start instantly, others queue for a long time");
}
