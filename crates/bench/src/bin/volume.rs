//! §III-C volume statistics: data points per interval and per day.
//! Paper: ~10 000 points per 60 s interval; ~1.4×10⁷ individual metrics
//! per day on the Quanah cluster.

use monster_core::{Monster, MonsterConfig};
use monster_redfish::bmc::BmcConfig;
use monster_scheduler::WorkloadConfig;

fn main() {
    println!("COLLECTION VOLUME — Quanah-scale deployment (467 nodes)\n");
    let mut m = Monster::new(MonsterConfig {
        nodes: 467,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        workload: Some(WorkloadConfig {
            mpi_users: 6,
            array_users: 5,
            serial_users: 80,
            submissions_per_user_day: 16.0,
            seed: 11,
        }),
        horizon_secs: 4 * 3600,
        ..MonsterConfig::default()
    });

    // Warm up two hours so the job mix is realistic, then measure.
    m.run_intervals_bulk(120);
    let before = m.db().stats().points;
    let measured = 30;
    m.run_intervals_bulk(measured);
    let after = m.db().stats().points;
    let per_interval = (after - before) / measured;

    println!("measured: {per_interval} points per 60 s interval (paper: ~10,000)");
    println!("extrapolated: {:.2e} points per day (paper: ~1.4e7)", per_interval as f64 * 1440.0);
    let stats = m.db().stats();
    println!(
        "\nafter {:.1} h: {} points, {} series, {} at rest",
        m.intervals_run() as f64 / 60.0,
        stats.points,
        stats.cardinality,
        monster_util::bytesize::ByteSize(stats.encoded_bytes as u64)
    );
    println!(
        "batch check: one interval ≈ {} points ≈ the paper's \"ideal batch size for InfluxDB\"",
        per_interval
    );
}
