//! Chaos harness: replay a seeded fault profile against the collection
//! path and assert the resilience invariants. Writes machine-readable
//! `BENCH_chaos.json` for the CI matrix and cross-PR tracking.
//!
//! Each run drives one `(profile, seed)` cell twice over the same fault
//! schedule:
//!
//! * **resilient** — breakers + jittered backoff + the deadline-aware
//!   degraded sweep scheduler (stale substitution downstream);
//! * **baseline** — the legacy sweep: immediate retries, no breakers, no
//!   deadline. What the paper's collector would do.
//!
//! and asserts, on the resilient run:
//!
//! 1. **Deadline**: no sweep's makespan exceeds the configured deadline
//!    (which sits under the 60 s collection cadence);
//! 2. **Fresh healthy reads**: nodes the profile never perturbs are never
//!    served stale — degradation is confined to the faulty set;
//! 3. **Recovery**: within `RECOVERY_SWEEPS` of the fault schedule
//!    clearing, every breaker is closed and no sweep is degraded.
//!
//! The baseline run records how often the legacy sweep blows through the
//! 60 s cadence on the same schedule (under `flaky-tail` it must, at least
//! once — that contrast is the point of the resilience layer).
//!
//! Usage: `chaos_sweep [--profile NAME] [--seed N] [--quick]`
//! Profile `all` (the default) runs every profile sequentially; the CI
//! matrix runs one cell per job.

use monster_core::{Monster, MonsterConfig};
use monster_json::{jobj, Value};
use monster_redfish::bmc::BmcConfig;
use monster_redfish::client::ClientConfig;
use monster_redfish::resilience::ResilienceConfig;
use monster_sim::{FaultProfile, LatencyDist, VDuration};

/// Sweeps the resilient run gets to fully recover (close every breaker,
/// drain staleness) once the fault schedule clears: breaker cooldown plus
/// a probe sweep plus slack.
const RECOVERY_SWEEPS: u64 = 5;

/// The collection cadence the baseline is judged against (§III-B4: 60 s).
const CADENCE: VDuration = VDuration::from_secs(60);

struct Shape {
    nodes: usize,
    channels: usize,
    sweeps: u64,
    active: u64,
}

impl Shape {
    fn new(quick: bool) -> Shape {
        if quick {
            Shape { nodes: 48, channels: 24, sweeps: 16, active: 8 }
        } else {
            Shape { nodes: 96, channels: 48, sweeps: 30, active: 18 }
        }
    }
}

/// The chaos fleet's base BMC: the paper's log-normal latency body with
/// the exponential stall tail removed and zero base fault rates. All
/// faults come from the profile schedule, so the "healthy nodes stay
/// fresh" invariant is exact rather than probabilistic.
fn chaos_bmc() -> BmcConfig {
    BmcConfig { latency: LatencyDist::LogNormal(4.0, 0.30), failure_rate: 0.0, stall_rate: 0.0 }
}

struct SweepRecord {
    makespan: VDuration,
    degraded: bool,
    breakers_open: usize,
    stale_nodes: Vec<usize>,
    skipped: usize,
    stale_points: usize,
}

/// Replay `profile` for `(seed, shape)` and record every sweep.
fn run_cell(profile: FaultProfile, seed: u64, shape: &Shape, resilient: bool) -> Vec<SweepRecord> {
    let mut m = Monster::new(MonsterConfig {
        nodes: shape.nodes,
        seed,
        bmc: chaos_bmc(),
        client: ClientConfig { max_inflight: shape.channels, ..ClientConfig::default() },
        resilience: resilient.then(ResilienceConfig::default),
        workload: None,
        horizon_secs: 0,
        ..MonsterConfig::default()
    });
    let ids = m.node_ids();
    let mut records = Vec::with_capacity(shape.sweeps as usize);
    for tick in 0..shape.sweeps {
        for (i, &node) in ids.iter().enumerate() {
            let spec = profile.spec(seed, i, ids.len(), tick, shape.active);
            m.cluster().apply_fault(node, spec).expect("known node");
        }
        let s = m.run_interval().expect("schema-consistent interval");
        records.push(SweepRecord {
            makespan: s.collection_time,
            degraded: s.degraded,
            breakers_open: s.breakers_open,
            stale_nodes: s
                .stale_nodes
                .iter()
                .map(|(n, _)| ids.iter().position(|id| id == n).expect("known node"))
                .collect(),
            skipped: s.bmc_skipped,
            stale_points: s.stale_points,
        });
    }
    records
}

fn p99(xs: &[f64]) -> f64 {
    monster_util::stats::try_percentile(xs, 0.99).unwrap_or(0.0)
}

fn makespans(records: &[SweepRecord]) -> Vec<f64> {
    records.iter().map(|r| r.makespan.as_secs_f64()).collect()
}

/// Run one `(profile, seed)` cell, assert the invariants, and return its
/// JSON report.
fn chaos_cell(profile: FaultProfile, seed: u64, shape: &Shape) -> Value {
    let deadline = ResilienceConfig::default().sweep_deadline;
    let healthy: Vec<usize> = {
        let perturbed = profile.perturbed(seed, shape.nodes, shape.active);
        (0..shape.nodes).filter(|i| !perturbed.contains(i)).collect()
    };

    let resilient = run_cell(profile, seed, shape, true);
    let baseline = run_cell(profile, seed, shape, false);

    // Invariant 1: no resilient sweep exceeds the deadline.
    for (t, r) in resilient.iter().enumerate() {
        assert!(
            r.makespan <= deadline,
            "[{}/seed {seed}] sweep {t} makespan {} exceeds deadline {deadline}",
            profile.name(),
            r.makespan
        );
    }

    // Invariant 2: healthy nodes are never served stale.
    for (t, r) in resilient.iter().enumerate() {
        for &n in &r.stale_nodes {
            assert!(
                !healthy.contains(&n),
                "[{}/seed {seed}] sweep {t} served healthy node {n} stale",
                profile.name()
            );
        }
    }

    // Invariant 3: full recovery within RECOVERY_SWEEPS of the schedule
    // clearing.
    assert!(
        shape.sweeps > shape.active + RECOVERY_SWEEPS,
        "shape leaves no room to observe recovery"
    );
    for (t, r) in resilient.iter().enumerate().skip((shape.active + RECOVERY_SWEEPS) as usize) {
        assert!(
            !r.degraded && r.breakers_open == 0 && r.stale_nodes.is_empty(),
            "[{}/seed {seed}] sweep {t} not recovered: degraded={} open={} stale={:?}",
            profile.name(),
            r.degraded,
            r.breakers_open,
            r.stale_nodes
        );
    }

    let res_ms = makespans(&resilient);
    let base_ms = makespans(&baseline);
    let base_over = base_ms.iter().filter(|&&m| m > CADENCE.as_secs_f64()).count();

    // The headline contrast: under flaky-tail the legacy sweep must blow
    // the cadence at least once while (per invariant 1) the resilient
    // sweep never does.
    if profile == FaultProfile::FlakyTail {
        assert!(
            base_over >= 1,
            "[flaky-tail/seed {seed}] baseline never exceeded the {CADENCE} cadence"
        );
    }

    let max = |xs: &[f64]| xs.iter().cloned().fold(0.0, f64::max);
    println!(
        "[{}/seed {seed}] resilient p99 {:.1}s max {:.1}s | baseline p99 {:.1}s max {:.1}s ({base_over} over cadence)",
        profile.name(),
        p99(&res_ms),
        max(&res_ms),
        p99(&base_ms),
        max(&base_ms),
    );

    jobj! {
        "profile" => profile.name(),
        "seed" => seed,
        "deadline_secs" => deadline.as_secs_f64(),
        "healthy_nodes" => healthy.len(),
        "resilient" => jobj! {
            "makespan_p99_secs" => p99(&res_ms),
            "makespan_max_secs" => max(&res_ms),
            "makespans_secs" => res_ms,
            "deadline_violations" => 0usize,
            "degraded_sweeps" => resilient.iter().filter(|r| r.degraded).count(),
            "stale_points_total" => resilient.iter().map(|r| r.stale_points).sum::<usize>(),
            "skipped_total" => resilient.iter().map(|r| r.skipped).sum::<usize>(),
            "max_breakers_open" => resilient.iter().map(|r| r.breakers_open).max().unwrap_or(0),
        },
        "baseline" => jobj! {
            "makespan_p99_secs" => p99(&base_ms),
            "makespan_max_secs" => max(&base_ms),
            "makespans_secs" => base_ms,
            "cadence_violations" => base_over,
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let seed: u64 = arg_after("--seed").map(|s| s.parse().expect("--seed N")).unwrap_or(1);
    let profiles: Vec<FaultProfile> = match arg_after("--profile") {
        None | Some("all") => FaultProfile::ALL.to_vec(),
        Some(name) => {
            vec![FaultProfile::parse(name)
                .unwrap_or_else(|| panic!("unknown profile {name:?}; see --help in ISSUE"))]
        }
    };

    let shape = Shape::new(quick);
    println!(
        "== chaos sweep: {} node(s), {} channel(s), {} sweep(s) ({} active), seed {seed} ==",
        shape.nodes, shape.channels, shape.sweeps, shape.active
    );

    let cells: Vec<Value> = profiles.iter().map(|&p| chaos_cell(p, seed, &shape)).collect();

    let doc = jobj! {
        "bench" => "chaos_sweep",
        "quick" => quick,
        "seed" => seed,
        "nodes" => shape.nodes,
        "channels" => shape.channels,
        "sweeps" => shape.sweeps,
        "active_sweeps" => shape.active,
        "recovery_sweeps" => RECOVERY_SWEEPS,
        "cadence_secs" => CADENCE.as_secs_f64(),
        "cells" => cells,
    };
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_chaos.json".into());
    std::fs::write(&out, doc.to_string_pretty() + "\n").unwrap();
    println!("wrote {out}");
    println!("all invariants held");
}
