//! Chaos harness: replay a seeded fault profile against the collection
//! path and assert the resilience invariants. Writes machine-readable
//! `BENCH_chaos.json` for the CI matrix and cross-PR tracking.
//!
//! Each run drives one `(profile, seed)` cell twice over the same fault
//! schedule:
//!
//! * **resilient** — breakers + jittered backoff + the deadline-aware
//!   degraded sweep scheduler (stale substitution downstream);
//! * **baseline** — the legacy sweep: immediate retries, no breakers, no
//!   deadline. What the paper's collector would do.
//!
//! and asserts, on the resilient run:
//!
//! 1. **Deadline**: no sweep's makespan exceeds the configured deadline
//!    (which sits under the 60 s collection cadence);
//! 2. **Fresh healthy reads**: nodes the profile never perturbs are never
//!    served stale — degradation is confined to the faulty set;
//! 3. **Recovery**: within `RECOVERY_SWEEPS` of the fault schedule
//!    clearing, every breaker is closed and no sweep is degraded;
//! 4. **Trace lineage**: every degraded sweep's skipped nodes appear in
//!    the `/debug/trace` export as child spans of that sweep's span (which
//!    itself hangs off the interval's root span) carrying `SkipReason`
//!    attributes — the distributed trace explains every gap in the data;
//! 5. **Freshness accounting**: after every sweep, the freshness SLO
//!    engine's worst lag equals the collector's sweeps-since-fresh stale
//!    ages times the cadence, and attainment is consistent with the
//!    number of stale nodes — `/debug/pipeline` and `BENCH_chaos.json`
//!    tell one story.
//!
//! The baseline run records how often the legacy sweep blows through the
//! 60 s cadence on the same schedule (under `flaky-tail` it must, at least
//! once — that contrast is the point of the resilience layer).
//!
//! Usage: `chaos_sweep [--profile NAME] [--seed N] [--quick]`
//! Profile `all` (the default) runs every profile sequentially; the CI
//! matrix runs one cell per job.

use monster_core::{Monster, MonsterConfig};
use monster_json::{jobj, Value};
use monster_redfish::bmc::BmcConfig;
use monster_redfish::client::ClientConfig;
use monster_redfish::resilience::ResilienceConfig;
use monster_sim::{FaultProfile, LatencyDist, VDuration};

/// Sweeps the resilient run gets to fully recover (close every breaker,
/// drain staleness) once the fault schedule clears: breaker cooldown plus
/// a probe sweep plus slack.
const RECOVERY_SWEEPS: u64 = 5;

/// The collection cadence the baseline is judged against (§III-B4: 60 s).
const CADENCE: VDuration = VDuration::from_secs(60);

struct Shape {
    nodes: usize,
    channels: usize,
    sweeps: u64,
    active: u64,
}

impl Shape {
    fn new(quick: bool) -> Shape {
        if quick {
            Shape { nodes: 48, channels: 24, sweeps: 16, active: 8 }
        } else {
            Shape { nodes: 96, channels: 48, sweeps: 30, active: 18 }
        }
    }
}

/// The chaos fleet's base BMC: the paper's log-normal latency body with
/// the exponential stall tail removed and zero base fault rates. All
/// faults come from the profile schedule, so the "healthy nodes stay
/// fresh" invariant is exact rather than probabilistic.
fn chaos_bmc() -> BmcConfig {
    BmcConfig { latency: LatencyDist::LogNormal(4.0, 0.30), failure_rate: 0.0, stall_rate: 0.0 }
}

struct SweepRecord {
    makespan: VDuration,
    degraded: bool,
    breakers_open: usize,
    /// (node index, sweeps-since-fresh age) per stale-substituted node.
    stale_nodes: Vec<(usize, u64)>,
    skipped: usize,
    stale_points: usize,
    /// The interval's distributed-trace context.
    trace: monster_obs::TraceContext,
    /// (bmc addr, SkipReason debug string) per skipped node.
    skipped_nodes: Vec<(String, String)>,
    /// Freshness SLO engine readings right after this sweep.
    fresh_max_lag: f64,
    fresh_attainment: f64,
    fresh_tracked: usize,
    fresh_p99: f64,
}

/// Replay `profile` for `(seed, shape)` and record every sweep.
fn run_cell(profile: FaultProfile, seed: u64, shape: &Shape, resilient: bool) -> Vec<SweepRecord> {
    let mut m = Monster::new(MonsterConfig {
        nodes: shape.nodes,
        seed,
        bmc: chaos_bmc(),
        client: ClientConfig { max_inflight: shape.channels, ..ClientConfig::default() },
        resilience: resilient.then(ResilienceConfig::default),
        workload: None,
        horizon_secs: 0,
        ..MonsterConfig::default()
    });
    let ids = m.node_ids();
    let mut records = Vec::with_capacity(shape.sweeps as usize);
    for tick in 0..shape.sweeps {
        for (i, &node) in ids.iter().enumerate() {
            let spec = profile.spec(seed, i, ids.len(), tick, shape.active);
            m.cluster().apply_fault(node, spec).expect("known node");
        }
        let s = m.run_interval().expect("schema-consistent interval");
        let fresh = monster_obs::freshness();
        let mut lags = fresh.lags();
        lags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        records.push(SweepRecord {
            makespan: s.collection_time,
            degraded: s.degraded,
            breakers_open: s.breakers_open,
            stale_nodes: s
                .stale_nodes
                .iter()
                .map(|&(n, age)| (ids.iter().position(|&id| id == n).expect("known node"), age))
                .collect(),
            skipped: s.bmc_skipped,
            stale_points: s.stale_points,
            trace: s.trace,
            skipped_nodes: s
                .skipped_nodes
                .iter()
                .map(|&(n, reason)| (n.to_string(), format!("{reason:?}")))
                .collect(),
            fresh_max_lag: fresh.max_lag_secs().unwrap_or(0.0),
            fresh_attainment: fresh.attainment(),
            fresh_tracked: fresh.tracked_series(),
            fresh_p99: monster_obs::percentile(&lags, 0.99),
        });
    }
    records
}

fn p99(xs: &[f64]) -> f64 {
    monster_util::stats::try_percentile(xs, 0.99).unwrap_or(0.0)
}

fn makespans(records: &[SweepRecord]) -> Vec<f64> {
    records.iter().map(|r| r.makespan.as_secs_f64()).collect()
}

/// Run one `(profile, seed)` cell, assert the invariants, and return its
/// JSON report.
fn chaos_cell(profile: FaultProfile, seed: u64, shape: &Shape) -> Value {
    let deadline = ResilienceConfig::default().sweep_deadline;
    let healthy: Vec<usize> = {
        let perturbed = profile.perturbed(seed, shape.nodes, shape.active);
        (0..shape.nodes).filter(|i| !perturbed.contains(i)).collect()
    };

    // The resilient run's trace/freshness invariants read global obs
    // state: give the span ring room for every sweep's children and clear
    // watermarks left by previous cells (or the baseline run below).
    monster_obs::global().set_span_capacity(50_000);
    monster_obs::freshness().reset();
    let resilient = run_cell(profile, seed, shape, true);
    let pipeline = monster_obs::freshness().report();
    let spans = monster_obs::global().recent_spans();
    monster_obs::freshness().reset();
    let baseline = run_cell(profile, seed, shape, false);

    // Invariant 1: no resilient sweep exceeds the deadline.
    for (t, r) in resilient.iter().enumerate() {
        assert!(
            r.makespan <= deadline,
            "[{}/seed {seed}] sweep {t} makespan {} exceeds deadline {deadline}",
            profile.name(),
            r.makespan
        );
    }

    // Invariant 2: healthy nodes are never served stale.
    for (t, r) in resilient.iter().enumerate() {
        for &(n, _) in &r.stale_nodes {
            assert!(
                !healthy.contains(&n),
                "[{}/seed {seed}] sweep {t} served healthy node {n} stale",
                profile.name()
            );
        }
    }

    // Invariant 3: full recovery within RECOVERY_SWEEPS of the schedule
    // clearing.
    assert!(
        shape.sweeps > shape.active + RECOVERY_SWEEPS,
        "shape leaves no room to observe recovery"
    );
    for (t, r) in resilient.iter().enumerate().skip((shape.active + RECOVERY_SWEEPS) as usize) {
        assert!(
            !r.degraded && r.breakers_open == 0 && r.stale_nodes.is_empty(),
            "[{}/seed {seed}] sweep {t} not recovered: degraded={} open={} stale={:?}",
            profile.name(),
            r.degraded,
            r.breakers_open,
            r.stale_nodes
        );
    }

    // Invariant 4: every skipped node of every degraded sweep shows up in
    // the trace export as a `redfish.skip` child of that sweep's span,
    // which in turn hangs off the interval's root span, with a
    // `SkipReason` attribute.
    for (t, r) in resilient.iter().enumerate() {
        if r.skipped_nodes.is_empty() {
            continue;
        }
        let root = spans
            .iter()
            .find(|s| {
                s.name == "collector.interval" && s.trace == r.trace.trace && s.parent.is_none()
            })
            .unwrap_or_else(|| {
                panic!("[{}/seed {seed}] sweep {t}: no root interval span", profile.name())
            });
        let sweep_span = spans
            .iter()
            .find(|s| {
                s.name == "redfish.sweep" && s.trace == r.trace.trace && s.parent == Some(root.span)
            })
            .unwrap_or_else(|| {
                panic!("[{}/seed {seed}] sweep {t}: no sweep span under root", profile.name())
            });
        for (addr, reason) in &r.skipped_nodes {
            let found = spans.iter().any(|s| {
                s.name == "redfish.skip"
                    && s.trace == r.trace.trace
                    && s.parent == Some(sweep_span.span)
                    && s.attr("node") == Some(addr)
                    && s.attr("SkipReason") == Some(reason)
            });
            assert!(
                found,
                "[{}/seed {seed}] sweep {t}: skipped node {addr} ({reason}) has no \
                 redfish.skip child span",
                profile.name()
            );
        }
    }

    // Invariant 5: the freshness SLO engine agrees with the collector's
    // stale-age accounting, sweep by sweep: worst watermark lag equals the
    // worst sweeps-since-fresh age times the 60 s cadence, p99 never
    // exceeds the max, and a sweep with no stale nodes shows full
    // freshness.
    for (t, r) in resilient.iter().enumerate() {
        let expect_max = r.stale_nodes.iter().map(|&(_, age)| age).max().unwrap_or(0) as f64 * 60.0;
        assert!(
            (r.fresh_max_lag - expect_max).abs() < 1e-6,
            "[{}/seed {seed}] sweep {t}: freshness max lag {} != stale-age max {expect_max}",
            profile.name(),
            r.fresh_max_lag
        );
        assert!(
            r.fresh_p99 <= r.fresh_max_lag + 1e-6,
            "[{}/seed {seed}] sweep {t}: p99 {} above max {}",
            profile.name(),
            r.fresh_p99,
            r.fresh_max_lag
        );
        if r.stale_nodes.is_empty() {
            assert!(
                (r.fresh_attainment - 1.0).abs() < 1e-9 && r.fresh_p99 == 0.0,
                "[{}/seed {seed}] sweep {t}: no stale nodes but attainment {} p99 {}",
                profile.name(),
                r.fresh_attainment,
                r.fresh_p99
            );
        } else if r.fresh_tracked > 0 {
            // Each stale node contributes at most 4 (node, category) series.
            let floor = 1.0 - (4.0 * r.stale_nodes.len() as f64) / r.fresh_tracked as f64;
            assert!(
                r.fresh_attainment >= floor - 1e-9,
                "[{}/seed {seed}] sweep {t}: attainment {} below floor {floor}",
                profile.name(),
                r.fresh_attainment
            );
        }
    }

    let res_ms = makespans(&resilient);
    let base_ms = makespans(&baseline);
    let base_over = base_ms.iter().filter(|&&m| m > CADENCE.as_secs_f64()).count();

    // The headline contrast: under flaky-tail the legacy sweep must blow
    // the cadence at least once while (per invariant 1) the resilient
    // sweep never does.
    if profile == FaultProfile::FlakyTail {
        assert!(
            base_over >= 1,
            "[flaky-tail/seed {seed}] baseline never exceeded the {CADENCE} cadence"
        );
    }

    let max = |xs: &[f64]| xs.iter().cloned().fold(0.0, f64::max);
    println!(
        "[{}/seed {seed}] resilient p99 {:.1}s max {:.1}s | baseline p99 {:.1}s max {:.1}s ({base_over} over cadence)",
        profile.name(),
        p99(&res_ms),
        max(&res_ms),
        p99(&base_ms),
        max(&base_ms),
    );

    jobj! {
        "profile" => profile.name(),
        "seed" => seed,
        "deadline_secs" => deadline.as_secs_f64(),
        "healthy_nodes" => healthy.len(),
        "resilient" => jobj! {
            "makespan_p99_secs" => p99(&res_ms),
            "makespan_max_secs" => max(&res_ms),
            "makespans_secs" => res_ms,
            "deadline_violations" => 0usize,
            "degraded_sweeps" => resilient.iter().filter(|r| r.degraded).count(),
            "stale_points_total" => resilient.iter().map(|r| r.stale_points).sum::<usize>(),
            "skipped_total" => resilient.iter().map(|r| r.skipped).sum::<usize>(),
            "max_breakers_open" => resilient.iter().map(|r| r.breakers_open).max().unwrap_or(0),
            "staleness_p99_secs" => resilient.iter().map(|r| r.fresh_p99).fold(0.0, f64::max),
            "staleness_max_secs" => resilient.iter().map(|r| r.fresh_max_lag).fold(0.0, f64::max),
            "attainment_min" => resilient.iter().map(|r| r.fresh_attainment).fold(1.0, f64::min),
        },
        "pipeline" => pipeline,
        "baseline" => jobj! {
            "makespan_p99_secs" => p99(&base_ms),
            "makespan_max_secs" => max(&base_ms),
            "makespans_secs" => base_ms,
            "cadence_violations" => base_over,
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let seed: u64 = arg_after("--seed").map(|s| s.parse().expect("--seed N")).unwrap_or(1);
    let profiles: Vec<FaultProfile> = match arg_after("--profile") {
        None | Some("all") => FaultProfile::ALL.to_vec(),
        Some(name) => {
            vec![FaultProfile::parse(name)
                .unwrap_or_else(|| panic!("unknown profile {name:?}; see --help in ISSUE"))]
        }
    };

    let shape = Shape::new(quick);
    println!(
        "== chaos sweep: {} node(s), {} channel(s), {} sweep(s) ({} active), seed {seed} ==",
        shape.nodes, shape.channels, shape.sweeps, shape.active
    );

    let cells: Vec<Value> = profiles.iter().map(|&p| chaos_cell(p, seed, &shape)).collect();

    let doc = jobj! {
        "bench" => "chaos_sweep",
        "quick" => quick,
        "seed" => seed,
        "nodes" => shape.nodes,
        "channels" => shape.channels,
        "sweeps" => shape.sweeps,
        "active_sweeps" => shape.active,
        "recovery_sweeps" => RECOVERY_SWEEPS,
        "cadence_secs" => CADENCE.as_secs_f64(),
        "cells" => cells,
    };
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_chaos.json".into());
    std::fs::write(&out, doc.to_string_pretty() + "\n").unwrap();
    println!("wrote {out}");
    println!("all invariants held");
}
