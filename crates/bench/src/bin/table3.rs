//! Table III — host hardware specifications (the simulation's host
//! profiles, which parameterize every cost model).

use monster_sim::hosts::{table3, STORAGE_HOST_SSD};

fn main() {
    println!("TABLE III — HOST HARDWARE SPECIFICATIONS\n");
    for host in table3() {
        println!("{}:", host.name);
        println!("  CPU:     {} hardware threads", host.cores);
        println!("  RAM:     {} GB", host.ram_gib);
        println!(
            "  STORAGE: {} ({:.0} MB/s read, {:.1} ms access)",
            host.disk.name,
            host.disk.read_bw / 1e6,
            host.disk.access_latency * 1e3
        );
        println!(
            "  NETWORK: {} ({:.0} Mbit/s effective, {:.1} ms RTT)\n",
            host.net.name,
            host.net.bandwidth * 8.0 / 1e6,
            host.net.rtt * 1e3
        );
    }
    println!(
        "After the §IV-B1 migration the storage host uses its SSD: {} ({:.0} MB/s).",
        STORAGE_HOST_SSD.disk.name,
        STORAGE_HOST_SSD.disk.read_bw / 1e6
    );
}
