//! §III-B1 collection statistics: mean Redfish request time and the full
//! asynchronous sweep makespan. Paper: 4.29 s mean, ~55 s for the 1868-URL
//! pool over 467 nodes.

use monster_redfish::cluster::{ClusterConfig, SimulatedCluster};
use monster_redfish::RedfishClient;

fn main() {
    println!("COLLECTION SWEEP — 467 nodes x 4 categories = 1868 requests\n");
    let cluster = SimulatedCluster::new(ClusterConfig::default());
    let client = RedfishClient::default();

    for sweep_no in 1..=3 {
        let sweep = client.sweep(&cluster);
        println!(
            "sweep {}: mean request {:.2} s | makespan {:.1} s | ok {}/{} | retries {}",
            sweep_no,
            sweep.mean_request_secs(),
            sweep.makespan.as_secs_f64(),
            sweep.successes(),
            sweep.results.len(),
            sweep.retries(),
        );
    }
    println!("\npaper: \"a Redfish API request takes 4.29 seconds on average.");
    println!(
        "        Asynchronous request for all metrics from all nodes takes about 55 seconds.\""
    );
}
