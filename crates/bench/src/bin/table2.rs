//! Table II — selective metrics collected from UGE.
//!
//! Pulls one accounting snapshot from the simulated qmaster and prints the
//! node-level and job-level metric inventory.

use monster_scheduler::accounting::{job_document, node_document};
use monster_scheduler::{JobShape, JobSpec, Qmaster, QmasterConfig};
use monster_util::UserName;

fn main() {
    let cfg = QmasterConfig { nodes: 4, ..QmasterConfig::default() };
    let t0 = cfg.start_time;
    let mut qm = Qmaster::new(cfg);
    qm.submit_at(
        t0 + 1,
        JobSpec {
            user: UserName::new("jieyao"),
            name: "mpi.sh".into(),
            shape: JobShape::Parallel { nodes: 2 },
            runtime_secs: 7200,
            priority: 0,
            mem_per_slot_gib: 2.0,
        },
    );
    qm.run_until(t0 + 120);

    println!("TABLE II — SELECTIVE METRICS COLLECTED FROM UGE\n");
    let node = qm.node_ids()[0];
    let report = qm.load_report(node).expect("node");
    println!("Category   Metrics");
    println!("{}", "-".repeat(60));
    println!("CPU        CPU Usage                 = {:.2}", report.cpu_usage);
    println!("Memory     Used Memory               = {:.1} GiB", report.mem_used_gib);
    println!("           Free Memory               = {:.1} GiB", report.mem_free_gib());
    println!("Swap       Used Swap                 = {:.1} GiB", report.swap_used_gib);
    println!("           Free Swap                 = {:.1} GiB", report.swap_free_gib());
    let job = qm.running_jobs()[0];
    let doc = job_document(job, 36);
    println!(
        "Job        Job Owner                 = {}",
        doc.get("owner").unwrap().as_str().unwrap()
    );
    println!(
        "           Job Submission Time       = {}",
        doc.get("submission_time").unwrap().as_i64().unwrap()
    );
    println!(
        "           Job Start Time            = {}",
        doc.get("start_time").unwrap().as_i64().unwrap()
    );
    println!(
        "           Job Slots                 = {}",
        doc.get("slots").unwrap().as_i64().unwrap()
    );
    println!(
        "Relationship  Job List on Node       = {:?}",
        report.job_list.iter().map(|j| j.to_string()).collect::<Vec<_>>()
    );

    let nd = node_document(&report);
    println!(
        "\nFull node accounting document carries {} fields; full job document {} fields",
        nd.as_object().unwrap().len(),
        doc.as_object().unwrap().len(),
    );
}
