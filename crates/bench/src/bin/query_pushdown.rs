//! Aggregation-pushdown benchmark: zone-map summaries vs forced full
//! decode for windowed queries. Writes machine-readable
//! `BENCH_query.json` for cross-PR perf tracking.
//!
//! The workload is the dashboard shape the Metrics Builder serves:
//! hour-windowed `mean` over 7 simulated days of 1 Hz samples. At that
//! cadence a sealed block spans ~17 minutes, so most blocks land fully
//! inside one hourly window and are answered from their zone maps; only
//! the window-edge blocks decode. Two engines run the identical queries:
//!
//! * **pushdown** — `DbConfig::pushdown = true` (the default);
//! * **full decode** — `pushdown = false`, the pre-zone-map read path.
//!
//! Both return bit-identical results (asserted on every iteration); the
//! difference is pure read-path work, reported two ways:
//!
//! * **modelled** — `CostParams::elapsed` over the returned `QueryCost`,
//!   the repo's deterministic simulated-time method (decoded blocks pay
//!   decode CPU + block I/O, summarized blocks pay a flat probe);
//! * **wall-clock** — p50/p99 of real query latency on this box.
//!
//! Usage: `query_pushdown [--quick]` — quick mode shrinks the workload
//! for CI smoke runs; the committed `BENCH_query.json` comes from a full
//! run.

use monster_json::jobj;
use monster_tsdb::query::Aggregation;
use monster_tsdb::{DataPoint, Db, DbConfig, Query, QueryCost};
use monster_util::EpochSecs;
use std::time::Instant;

const DAY: i64 = 86_400;

struct Workload {
    series: usize,
    days: i64,
    cadence_secs: i64,
    iterations: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One node-day of samples at the workload cadence.
fn day_batch(series: usize, day: i64, wl: &Workload) -> Vec<DataPoint> {
    let samples = DAY / wl.cadence_secs;
    (0..samples)
        .map(|i| {
            let ts = day * DAY + i * wl.cadence_secs;
            DataPoint::new("Power", EpochSecs::new(ts))
                .tag("NodeId", format!("10.101.1.{}", series + 1))
                .tag("Label", "NodePower")
                .field_f64("Reading", 250.0 + ((ts + series as i64 * 13) % 359) as f64 * 0.25)
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let wl = if quick {
        Workload { series: 4, days: 1, cadence_secs: 1, iterations: 5 }
    } else {
        Workload { series: 16, days: 7, cadence_secs: 1, iterations: 12 }
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // --- identical data in two engines, one per read path ---------------
    let push_db = Db::new(DbConfig { pushdown: true, ..DbConfig::default() });
    let full_db = Db::new(DbConfig { pushdown: false, ..DbConfig::default() });
    let ingest = Instant::now();
    let mut total_points = 0usize;
    for s in 0..wl.series {
        for d in 0..wl.days {
            let batch = day_batch(s, d, &wl);
            total_points += batch.len();
            push_db.write_batch(&batch).unwrap();
            full_db.write_batch(&batch).unwrap();
        }
    }
    // Seal every tail: the pushdown only applies to sealed blocks.
    push_db.compact();
    full_db.compact();
    let ingest_secs = ingest.elapsed().as_secs_f64();

    // --- the dashboard query: hourly mean over the whole range ----------
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(wl.days * DAY))
        .aggregate(Aggregation::Mean)
        .group_by_time(3600);

    let mut push_lat_us: Vec<f64> = Vec::with_capacity(wl.iterations);
    let mut full_lat_us: Vec<f64> = Vec::with_capacity(wl.iterations);
    let mut push_cost = QueryCost::default();
    let mut full_cost = QueryCost::default();
    for i in 0..wl.iterations {
        let t = Instant::now();
        let (rs_push, c_push) = push_db.query(&q).unwrap();
        push_lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        let t = Instant::now();
        let (rs_full, c_full) = full_db.query(&q).unwrap();
        full_lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        // The whole point: identical answers, bit for bit.
        assert_eq!(rs_push, rs_full, "pushdown diverged from full decode");
        assert_eq!(rs_push.series.len(), wl.series);
        if i == 0 {
            (push_cost, full_cost) = (c_push, c_full);
        }
    }
    push_lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    full_lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());

    // Every sealed block is either decoded or summarized, never both.
    assert_eq!(push_cost.blocks + push_cost.blocks_summarized, full_cost.blocks);
    assert_eq!(full_cost.blocks_summarized, 0);

    let modelled_push = push_db.simulate_elapsed(&push_cost).as_secs_f64();
    let modelled_full = full_db.simulate_elapsed(&full_cost).as_secs_f64();
    let modelled_speedup = modelled_full / modelled_push;
    let (push_p50, push_p99) = (percentile(&push_lat_us, 0.50), percentile(&push_lat_us, 0.99));
    let (full_p50, full_p99) = (percentile(&full_lat_us, 0.50), percentile(&full_lat_us, 0.99));
    let wall_speedup = full_p50 / push_p50;
    let summarized_frac = push_cost.blocks_summarized as f64 / full_cost.blocks.max(1) as f64;

    println!(
        "== tsdb aggregation pushdown ({cores} core(s), {} series x {} day(s) @ {}s, \
         {total_points} points, {:.1}s ingest) ==",
        wl.series, wl.days, wl.cadence_secs, ingest_secs
    );
    println!(
        "blocks: {} summarized / {} decoded ({:.0}% summary hits)",
        push_cost.blocks_summarized,
        push_cost.blocks,
        summarized_frac * 100.0
    );
    println!(
        "points decoded: {} (pushdown) vs {} (full decode)",
        push_cost.points, full_cost.points
    );
    println!("modelled: {modelled_push:.4}s vs {modelled_full:.4}s  ({modelled_speedup:.2}x)");
    println!(
        "wall p50: {push_p50:.0}us vs {full_p50:.0}us  ({wall_speedup:.2}x); \
         p99: {push_p99:.0}us vs {full_p99:.0}us"
    );

    let doc = jobj! {
        "bench" => "query_pushdown",
        "quick" => quick,
        "cores" => cores as i64,
        "series" => wl.series as i64,
        "days" => wl.days,
        "cadence_secs" => wl.cadence_secs,
        "total_points" => total_points as i64,
        "window_secs" => 3600,
        "aggregation" => "mean",
        "blocks" => jobj! {
            "summarized" => push_cost.blocks_summarized as i64,
            "decoded_pushdown" => push_cost.blocks as i64,
            "decoded_full" => full_cost.blocks as i64,
            "summary_hit_fraction" => summarized_frac,
        },
        "points_decoded" => jobj! {
            "pushdown" => push_cost.points as i64,
            "full" => full_cost.points as i64,
        },
        "modelled" => jobj! {
            "pushdown_secs" => modelled_push,
            "full_decode_secs" => modelled_full,
            "speedup" => modelled_speedup,
        },
        "wall" => jobj! {
            "iterations" => wl.iterations as i64,
            "pushdown_p50_us" => push_p50,
            "pushdown_p99_us" => push_p99,
            "full_decode_p50_us" => full_p50,
            "full_decode_p99_us" => full_p99,
            "speedup_p50" => wall_speedup,
        },
    };
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_query.json".into());
    std::fs::write(&out, doc.to_string_pretty() + "\n").unwrap();
    println!("wrote {out}");

    // Acceptance bars: >= 3x modelled on the full workload (window >>
    // block span), >= 2x in the CI quick run; the wall-clock win is only
    // asserted on the full run (quick workloads are noise-dominated).
    let bar = if quick { 2.0 } else { 3.0 };
    assert!(
        modelled_speedup >= bar,
        "modelled speedup {modelled_speedup:.2}x < {bar}x over forced full decode"
    );
    if !quick {
        assert!(
            wall_speedup > 1.2,
            "wall-clock p50 speedup {wall_speedup:.2}x <= 1.2x — pushdown must win on real CPU"
        );
    }
}
