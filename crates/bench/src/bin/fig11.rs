//! Fig. 11 — time consumption breakdown for querying and processing data
//! points: BMC-related queries ≈80 %, UGE ≈10 %, the rest shared
//! processing.
//!
//! Methodology mirrors the paper's cProfile run: the total middleware time
//! attributable to each query group (its queries *and* the marshalling of
//! their results) is measured by executing each group's sub-plan.

use monster_bench::{data_start, populated};
use monster_builder::{build_plan, exec::execute, BuilderRequest, ExecMode, QueryGroup};
use monster_collector::SchemaVersion;
use monster_sim::DiskModel;
use monster_tsdb::Aggregation;

fn main() {
    eprintln!("populating 3 days of history (previous schema, HDD)...");
    let m = populated(SchemaVersion::Previous, DiskModel::HDD, 3, 60);
    let t0 = data_start();
    let req = BuilderRequest::new(t0, t0 + 3 * 86_400, 300, Aggregation::Max).unwrap();
    let plan = build_plan(SchemaVersion::Previous, &m.node_ids(), &req);

    let full = execute(m.db(), &plan, ExecMode::Sequential).expect("full plan");
    let total = full.query_processing_time().as_secs_f64();

    println!("FIG. 11 — TIME CONSUMPTION BREAKDOWN (3-day query, 5 m windows)\n");
    let mut accounted = 0.0;
    let mut bmc_share = 0.0;
    for group in [QueryGroup::Bmc, QueryGroup::Uge, QueryGroup::Jobs] {
        let sub: Vec<_> = plan.iter().filter(|p| p.group == group).cloned().collect();
        let out = execute(m.db(), &sub, ExecMode::Sequential).expect("sub plan");
        let t = out.query_processing_time().as_secs_f64();
        let share = t / total * 100.0;
        accounted += share;
        if group == QueryGroup::Bmc {
            bmc_share = share;
        }
        let bar = "#".repeat((share / 2.0) as usize);
        println!("{:<6} {:7.1} s  {:5.1}%  |{bar}", group.name(), t, share);
    }
    let rest = (100.0 - accounted).max(0.0);
    println!(
        "other  {:7.1} s  {:5.1}%  |{}  (shared planning/merge overheads)",
        total * rest / 100.0,
        rest,
        "#".repeat((rest / 2.0) as usize)
    );
    println!("\ntotal: {total:.1} s");
    println!("paper: BMC ≈80%, UGE ≈10%; queries together ≈90% of total");
    assert!(bmc_share > 55.0, "BMC share collapsed: {bmc_share:.1}%");
}
