//! Fig. 14 — query & processing time: previous schema vs optimized schema,
//! both on SSD, sequential. Paper: 1.6–1.76× from the schema redesign.

use monster_bench::{populated, query_grid, secs, RANGES_DAYS};
use monster_builder::ExecMode;
use monster_collector::SchemaVersion;
use monster_sim::DiskModel;

fn main() {
    eprintln!("populating 7 days under each schema (SSD)...");
    let old = populated(SchemaVersion::Previous, DiskModel::SSD, 7, 60);
    let new = populated(SchemaVersion::Optimized, DiskModel::SSD, 7, 60);

    println!("FIG. 14 — PREVIOUS vs OPTIMIZED SCHEMA (SSD, sequential, 5 m windows)\n");
    println!("{:>6} {:>12} {:>12} {:>9}", "days", "old (s)", "new (s)", "speedup");
    let intervals = [300i64];
    let g_old = query_grid(&old, &RANGES_DAYS, &intervals, ExecMode::Sequential);
    let g_new = query_grid(&new, &RANGES_DAYS, &intervals, ExecMode::Sequential);
    for (o, n) in g_old.iter().zip(&g_new) {
        let speedup = o.2.as_secs_f64() / n.2.as_secs_f64();
        println!("{:>6} {:>12} {:>12} {:>8.2}x", o.0, secs(o.2), secs(n.2), speedup);
    }
    println!("\npaper: 1.6x–1.76x — \"database schema plays a vital role\"");
}
