//! Fig. 15 — sequential vs concurrent querying (optimized schema, SSD).
//! Paper: 5.5–6.5× from issuing the per-measurement queries concurrently.

use monster_bench::{populated, query_grid, secs, RANGES_DAYS};
use monster_builder::ExecMode;
use monster_collector::SchemaVersion;
use monster_sim::DiskModel;

fn main() {
    eprintln!("populating 7 days (optimized schema, SSD)...");
    let m = populated(SchemaVersion::Optimized, DiskModel::SSD, 7, 60);

    println!("FIG. 15 — SEQUENTIAL vs CONCURRENT QUERYING (optimized schema, SSD, 5 m windows)\n");
    println!("{:>6} {:>14} {:>14} {:>9}", "days", "sequential (s)", "concurrent (s)", "speedup");
    let intervals = [300i64];
    let seq = query_grid(&m, &RANGES_DAYS, &intervals, ExecMode::Sequential);
    let con = query_grid(&m, &RANGES_DAYS, &intervals, ExecMode::Concurrent { workers: 16 });
    for (s, c) in seq.iter().zip(&con) {
        let speedup = s.2.as_secs_f64() / c.2.as_secs_f64();
        println!("{:>6} {:>14} {:>14} {:>8.2}x", s.0, secs(s.2), secs(c.2), speedup);
    }
    println!("\npaper: 5.5x–6.5x — \"concurrent querying is another vital technique\"");
}
