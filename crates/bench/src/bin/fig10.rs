//! Fig. 10 — query & processing time at different time intervals over
//! different time ranges, on the **original** configuration: previous
//! schema, HDD storage, sequential querying.
//!
//! Paper shape: times grow with range, shrink with interval; even the best
//! case is ~50 s (Metrics Builder "is not a responsive service"), the
//! worst ~260 s.

use monster_bench::{populated, query_grid, secs, INTERVALS, RANGES_DAYS};
use monster_builder::ExecMode;
use monster_collector::SchemaVersion;
use monster_sim::DiskModel;

fn main() {
    eprintln!("populating 7 days of history (previous schema, HDD)...");
    let m = populated(SchemaVersion::Previous, DiskModel::HDD, 7, 60);
    let stats = m.db().stats();
    eprintln!(
        "  {} points, {} series, {} at rest",
        stats.points,
        stats.cardinality,
        monster_util::bytesize::ByteSize(stats.encoded_bytes as u64)
    );

    println!("FIG. 10 — QUERY & PROCESSING TIME (previous schema, HDD, sequential)\n");
    println!("simulated seconds at 467-node scale; rows = time range (days), cols = interval\n");
    print!("{:>6}", "days");
    for &iv in &INTERVALS {
        print!("{:>10}", monster_util::time::format_interval(iv));
    }
    println!();
    let grid = query_grid(&m, &RANGES_DAYS, &INTERVALS, ExecMode::Sequential);
    for &days in &RANGES_DAYS {
        print!("{days:>6}");
        for &iv in &INTERVALS {
            let t = grid
                .iter()
                .find(|(d, i, _)| *d == days && *i == iv)
                .map(|(_, _, t)| *t)
                .expect("grid cell");
            print!("{:>10}", secs(t));
        }
        println!();
    }
    println!("\npaper: ~50 s best case, ~260 s at 7 days / 5 min; grows with range, shrinks with interval");
}
