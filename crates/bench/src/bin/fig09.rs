//! Fig. 9 — host groups (k-means, k = 7) and the per-user symmetric
//! histogram matrix of resource usage.

use monster_analysis::histogram::UsageMatrix;
use monster_analysis::kmeans::{KMeans, KMeansConfig};
use monster_analysis::radar::fleet_normalized;
use monster_analysis::METRIC_NAMES;
use monster_bench::fixture_workload;
use monster_core::{Monster, MonsterConfig};
use monster_redfish::bmc::BmcConfig;

fn main() {
    let mut m = Monster::new(MonsterConfig {
        nodes: 64,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        workload: Some(fixture_workload()),
        horizon_secs: 6 * 3600,
        ..MonsterConfig::default()
    });

    // Six hours of activity, observing who is on which node every 10 min.
    let mut matrix = UsageMatrix::new();
    let mut final_snapshot: Vec<[f64; 9]> = Vec::new();
    for step in 0..36 {
        m.run_intervals_bulk(10);
        let snapshot: Vec<[f64; 9]> = m
            .node_ids()
            .iter()
            .map(|&n| m.cluster().sensors(n).expect("node").nine_metrics())
            .collect();
        let normed = fleet_normalized(&snapshot);
        for (i, &node) in m.node_ids().iter().enumerate() {
            if let Ok(report) = m.qmaster().load_report(node) {
                for jid in report.job_list {
                    if let Some(job) = m.qmaster().job(jid) {
                        matrix.observe(&job.spec.user, &normed[i]);
                    }
                }
            }
        }
        if step == 35 {
            final_snapshot = snapshot;
        }
    }

    println!("FIG. 9 — HOST GROUPS + PER-USER USAGE HISTOGRAMS\n");

    // Left panel: the k=7 host groups of the final snapshot.
    let data: Vec<Vec<f64>> = final_snapshot.iter().map(|r| r.to_vec()).collect();
    let km = KMeans::fit(&data, &KMeansConfig { k: 7, ..KMeansConfig::default() });
    let sizes = km.cluster_sizes();
    println!("host groups (k = 7):");
    for (g, size) in sizes.iter().enumerate() {
        let bar = "#".repeat(*size);
        println!("  group {}: {size:3} |{bar}", g + 1);
    }
    let biggest = sizes.iter().enumerate().max_by_key(|(_, &s)| s).unwrap().0 + 1;
    println!("  → group {biggest} is the dominant (normal-status) cluster, like the paper's blue Group 7\n");

    // Right panel: users sorted by power consumption (dimension 7).
    println!("per-user usage matrix, sorted by power (top 8 users):");
    println!("{:<10} {:>8} {:>8} {:>8}   histogram(power)", "user", "samples", "power", "cpu1");
    for row in matrix.rows_sorted_by(7).into_iter().take(8) {
        let hist = row.histograms[7]
            .normalized()
            .iter()
            .map(|v| char::from_u32(0x2581 + (v * 7.0) as u32).unwrap())
            .collect::<String>();
        println!(
            "{:<10} {:>8} {:>8.2} {:>8.2}   {hist}",
            row.user.as_str(),
            row.samples,
            row.means[7],
            row.means[0],
        );
    }
    println!("\ndimensions available for sorting: {}", METRIC_NAMES.join(", "));
}
