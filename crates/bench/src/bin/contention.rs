//! Ingest contention benchmark: sharded-lock engine (fronted by per-writer
//! [`monster_tsdb::WriteStager`]s) vs a single global lock, swept across
//! writer counts on pinned OS threads. Writes machine-readable
//! `BENCH_tsdb.json` for cross-PR perf tracking.
//!
//! Two families of numbers are recorded side by side, and they answer
//! different questions:
//!
//! * **Wall-clock** throughput — what this box actually did, with real
//!   threads pinned to distinct cores (best effort; the JSON says whether
//!   pinning took). On a single-core runner 4 writer threads cannot beat 1
//!   no matter how the locks are arranged, so wall-clock alone cannot show
//!   the sharding win there — such runs are marked `"degraded": true` and
//!   the wall gate records `"skipped_insufficient_cores"`.
//! * **Modelled makespan** — the repo's standard simulated-time method
//!   (cf. the Fig. 15 harness in `monster_tsdb::concurrent`): measure each
//!   batch's real critical-section time, then compose. A single global
//!   write lock serializes every batch regardless of thread count
//!   (makespan = sum over all writers); per-shard locks let writers on
//!   disjoint shards proceed independently (makespan = max over writers).
//!   The composition is exact for this workload because each writer
//!   backfills its own day — its own shard — so the sharded engine gives
//!   them no lock in common.
//!
//! The CI bar is on the **wall** numbers where the hardware can express
//! them: at 4 writers on ≥4 cores, p50 sharded wall throughput must be
//! ≥2× the global-lock baseline. The modelled ≥2× bar is enforced
//! everywhere (it is hardware-independent).
//!
//! Usage: `contention [--quick]` — quick mode shrinks the workload and
//! trial count for CI smoke runs; the committed `BENCH_tsdb.json` comes
//! from a full run.

use monster_json::{jobj, Value};
use monster_tsdb::query::Aggregation;
use monster_tsdb::{DataPoint, Db, DbConfig, Query};
use monster_util::EpochSecs;
use std::sync::RwLock;
use std::time::Instant;

const DAY: i64 = 86_400;
/// Writer counts swept; the gate applies at [`GATE_WRITERS`].
const WRITER_SWEEP: [usize; 4] = [1, 2, 4, 8];
const GATE_WRITERS: usize = 4;
const GATE_MIN_SPEEDUP: f64 = 2.0;

struct Workload {
    batches_per_writer: usize,
    batch_size: usize,
    queries: usize,
    /// Wall-clock runs per (writer count, engine); the JSON records p50.
    trials: usize,
}

/// Pin the calling thread to `cpu`, best effort; returns whether the
/// kernel accepted the mask. The workspace has no libc dependency, so this
/// issues the raw `sched_setaffinity` syscall (pid 0 = calling thread).
/// Elsewhere it is a no-op returning `false`, which the JSON surfaces as
/// `"pinned": false` so readers know scheduler placement was unmanaged.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn pin_to_core(cpu: usize) -> bool {
    const SYS_SCHED_SETAFFINITY: usize = 203;
    let mut mask = [0u64; 16]; // 1024 cpus
    mask[(cpu / 64) % mask.len()] = 1u64 << (cpu % 64);
    let ret: isize;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY as isize => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn pin_to_core(_cpu: usize) -> bool {
    false
}

/// One writer's batches: a day of per-node power samples, writer `w`
/// owning day `w` (disjoint shards under the default shard duration).
fn writer_batches(w: usize, wl: &Workload) -> Vec<Vec<DataPoint>> {
    let day_start = w as i64 * DAY;
    let total = wl.batches_per_writer * wl.batch_size;
    let step = (DAY - 1).max(1) / total as i64 + 1;
    (0..wl.batches_per_writer)
        .map(|b| {
            (0..wl.batch_size)
                .map(|i| {
                    let k = b * wl.batch_size + i;
                    DataPoint::new("Power", EpochSecs::new(day_start + k as i64 * step))
                        .tag("NodeId", format!("10.101.{}.{}", k % 117 + 1, k % 4 + 1))
                        .tag("Label", "NodePower")
                        .field_f64("Reading", 250.0 + (k % 40) as f64)
                })
                .collect()
        })
        .collect()
}

fn fresh_db() -> Db {
    Db::new(DbConfig::default())
}

/// Sequential single-writer ingest; returns (points/sec, per-batch secs).
fn run_single(db: &Db, batches: &[Vec<DataPoint>]) -> (f64, Vec<f64>) {
    let mut per_batch = Vec::with_capacity(batches.len());
    let start = Instant::now();
    for b in batches {
        let t = Instant::now();
        db.write_batch(b).unwrap();
        per_batch.push(t.elapsed().as_secs_f64());
    }
    let points: usize = batches.iter().map(Vec::len).sum();
    (points as f64 / start.elapsed().as_secs_f64(), per_batch)
}

/// One threaded multi-writer wall-clock trial. Each writer runs on its own
/// OS thread pinned to core `w % cores`. `global: true` simulates the
/// pre-rework engine (one write lock around every batch); `false` is the
/// shipped path — a per-writer [`monster_tsdb::WriteStager`] batching into
/// the sharded engine. Returns (points/sec, per-writer wall secs, pinned).
fn run_multi_wall(
    all: &[Vec<Vec<DataPoint>>],
    cores: usize,
    global: bool,
) -> (f64, Vec<f64>, bool) {
    let db = fresh_db();
    let big_lock = RwLock::new(());
    let points: usize = all.iter().flatten().map(Vec::len).sum();
    let start = Instant::now();
    let per_thread: Vec<(f64, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = all
            .iter()
            .enumerate()
            .map(|(w, batches)| {
                let db = &db;
                let big_lock = &big_lock;
                s.spawn(move || {
                    let pinned = pin_to_core(w % cores);
                    let t = Instant::now();
                    if global {
                        for b in batches {
                            let _g = big_lock.write().unwrap();
                            db.write_batch(b).unwrap();
                        }
                    } else {
                        let mut stager = db.stager();
                        for b in batches {
                            stager.stage_batch(b).unwrap();
                        }
                        stager.flush().unwrap();
                    }
                    (t.elapsed().as_secs_f64(), pinned)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let pinned = per_thread.iter().all(|&(_, p)| p);
    (points as f64 / wall, per_thread.into_iter().map(|(s, _)| s).collect(), pinned)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One swept writer count's results, wall and modelled side by side.
struct SweepEntry {
    writers: usize,
    /// Fewer cores than writers: wall numbers measure time-slicing, not
    /// parallel contention.
    degraded: bool,
    /// Every trial thread's `sched_setaffinity` succeeded.
    pinned: bool,
    wall_pps_sharded: f64,
    wall_pps_global: f64,
    wall_speedup: f64,
    /// Per-writer wall seconds from the median sharded trial.
    per_writer_secs: Vec<f64>,
    modeled_global: f64,
    modeled_sharded: f64,
    modeled_speedup: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let wl = if quick {
        Workload { batches_per_writer: 10, batch_size: 500, queries: 40, trials: 2 }
    } else {
        Workload { batches_per_writer: 40, batch_size: 2_500, queries: 200, trials: 3 }
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut single_pps = 0.0;
    let mut query_db = None;
    let mut sweep: Vec<SweepEntry> = Vec::with_capacity(WRITER_SWEEP.len());

    for &writers in &WRITER_SWEEP {
        let all: Vec<Vec<Vec<DataPoint>>> = (0..writers).map(|w| writer_batches(w, &wl)).collect();

        // --- sequential pass: per-batch critical-section profile for the
        // modelled composition (and the single-writer headline at W=1) ----
        let db = fresh_db();
        let mut crit: Vec<Vec<f64>> = Vec::with_capacity(writers);
        for (w, batches) in all.iter().enumerate() {
            let (pps, per_batch) = run_single(&db, batches);
            if writers == 1 && w == 0 {
                single_pps = pps;
            }
            crit.push(per_batch);
        }
        // Global lock: every batch serializes behind one lock → sum of all.
        // Sharded: each writer owns a shard; no shared lock → max over
        // writers.
        let writer_sums: Vec<f64> = crit.iter().map(|v| v.iter().sum()).collect();
        let modeled_global: f64 = writer_sums.iter().sum();
        let modeled_sharded: f64 = writer_sums.iter().cloned().fold(0.0, f64::max);

        // --- wall-clock trials, p50 over `trials` runs per engine --------
        let mut sharded: Vec<(f64, Vec<f64>, bool)> = Vec::with_capacity(wl.trials);
        let mut global: Vec<f64> = Vec::with_capacity(wl.trials);
        for _ in 0..wl.trials {
            sharded.push(run_multi_wall(&all, cores, false));
            global.push(run_multi_wall(&all, cores, true).0);
        }
        sharded.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        global.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = &sharded[sharded.len() / 2];
        let wall_pps_sharded = median.0;
        let wall_pps_global = percentile(&global, 0.50);

        if writers == GATE_WRITERS {
            query_db = Some(db);
        }
        sweep.push(SweepEntry {
            writers,
            degraded: cores < writers,
            pinned: sharded.iter().all(|t| t.2),
            wall_pps_sharded,
            wall_pps_global,
            wall_speedup: wall_pps_sharded / wall_pps_global,
            per_writer_secs: median.1.clone(),
            modeled_global,
            modeled_sharded,
            modeled_speedup: modeled_global / modeled_sharded,
        });
    }

    let gate_entry = sweep.iter().find(|e| e.writers == GATE_WRITERS).unwrap();
    let gate_status = if cores >= GATE_WRITERS { "enforced" } else { "skipped_insufficient_cores" };

    // --- query latency percentiles against the populated 4-writer db ----
    let db = query_db.unwrap();
    let mut lat_us: Vec<f64> = Vec::with_capacity(wl.queries);
    for i in 0..wl.queries {
        let day = (i % GATE_WRITERS) as i64 * DAY;
        let q = Query::select("Power", "Reading", EpochSecs::new(day), EpochSecs::new(day + DAY))
            .aggregate(Aggregation::Mean)
            .group_by_time(300);
        let t = Instant::now();
        let (rs, _) = db.query(&q).unwrap();
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert!(!rs.series.is_empty());
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99) = (percentile(&lat_us, 0.50), percentile(&lat_us, 0.99));

    println!("== tsdb ingest contention ({cores} core(s), writers swept {WRITER_SWEEP:?}) ==");
    println!("single-writer ingest:        {single_pps:>12.0} points/s");
    for e in &sweep {
        println!(
            "{} writer(s): wall sharded {:>10.0} pps | wall global {:>10.0} pps | \
             wall {:>5.2}x | modelled {:>5.2}x{}{}",
            e.writers,
            e.wall_pps_sharded,
            e.wall_pps_global,
            e.wall_speedup,
            e.modeled_speedup,
            if e.degraded { " | DEGRADED (cores < writers)" } else { "" },
            if e.pinned { "" } else { " | unpinned" },
        );
    }
    println!(
        "wall gate at {GATE_WRITERS} writers:      {gate_status} \
         (wall {:.2}x, modelled {:.2}x, floor {GATE_MIN_SPEEDUP}x)",
        gate_entry.wall_speedup, gate_entry.modeled_speedup
    );
    println!("query latency ({} queries):  p50 {p50:.0} us, p99 {p99:.0} us", wl.queries);

    let sweep_json: Vec<Value> = sweep
        .iter()
        .map(|e| {
            jobj! {
                "writers" => e.writers as i64,
                "degraded" => e.degraded,
                "pinned" => e.pinned,
                "wall_pps_sharded" => e.wall_pps_sharded,
                "wall_pps_global_lock" => e.wall_pps_global,
                "wall_speedup_sharded_vs_global" => e.wall_speedup,
                "per_writer_wall_secs" => e.per_writer_secs.clone(),
                "modeled_makespan_secs_global_lock" => e.modeled_global,
                "modeled_makespan_secs_sharded" => e.modeled_sharded,
                "modeled_speedup_sharded_vs_global" => e.modeled_speedup,
            }
        })
        .collect();
    let doc = jobj! {
        "bench" => "tsdb_contention",
        "quick" => quick,
        "cores" => cores as i64,
        "trials" => wl.trials as i64,
        "ingest" => jobj! {
            "single_writer_pps" => single_pps,
        },
        "writers_sweep" => Value::Array(sweep_json),
        "wall_gate" => jobj! {
            "at_writers" => GATE_WRITERS as i64,
            "min_speedup" => GATE_MIN_SPEEDUP,
            "status" => gate_status,
            "wall_speedup" => gate_entry.wall_speedup,
            "modeled_speedup" => gate_entry.modeled_speedup,
        },
        "query" => jobj! {
            "count" => wl.queries as i64,
            "p50_us" => p50,
            "p99_us" => p99,
        },
    };
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_tsdb.json".into());
    std::fs::write(&out, doc.to_string_pretty() + "\n").unwrap();
    println!("wrote {out}");

    // The acceptance bars, checked after the artifact is on disk so a
    // failing run still leaves the numbers behind for inspection:
    //  * modelled ≥2× at 4 writers — hardware-independent, always on;
    //  * wall p50 ≥2× at 4 writers — only meaningful with ≥4 cores;
    //    on smaller boxes the JSON carries the explicit skip marker.
    assert!(
        gate_entry.modeled_speedup >= GATE_MIN_SPEEDUP,
        "modelled speedup {:.2}x < {GATE_MIN_SPEEDUP}x over global-lock baseline",
        gate_entry.modeled_speedup
    );
    if gate_status == "enforced" {
        assert!(
            gate_entry.wall_speedup >= GATE_MIN_SPEEDUP,
            "wall p50 sharded speedup {:.2}x < {GATE_MIN_SPEEDUP}x at {GATE_WRITERS} \
             writers on {cores} cores",
            gate_entry.wall_speedup
        );
    } else {
        println!(
            "wall gate skipped: {cores} core(s) < {GATE_WRITERS} writers \
             (recorded as skipped_insufficient_cores)"
        );
    }
}
