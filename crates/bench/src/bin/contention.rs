//! Ingest contention benchmark: sharded-lock engine vs a single global
//! lock, plus query latency percentiles. Writes machine-readable
//! `BENCH_tsdb.json` for cross-PR perf tracking.
//!
//! Two numbers matter and they answer different questions:
//!
//! * **Wall-clock** throughput — what this box actually did. On a
//!   single-core runner 4 writer threads cannot beat 1 no matter how the
//!   locks are arranged, so wall-clock alone cannot show the sharding win
//!   there (the JSON records the core count next to the numbers).
//! * **Modelled makespan** — the repo's standard simulated-time method
//!   (cf. the Fig. 15 harness in `monster_tsdb::concurrent`): measure each
//!   batch's real critical-section time, then compose. A single global
//!   write lock serializes every batch regardless of thread count
//!   (makespan = sum over all writers); per-shard locks let writers on
//!   disjoint shards proceed independently (makespan = max over writers).
//!   The composition is exact for this workload because each writer
//!   backfills its own day — its own shard — so the sharded engine gives
//!   them no lock in common.
//!
//! Usage: `contention [--quick]` — quick mode shrinks the workload for CI
//! smoke runs; the committed `BENCH_tsdb.json` comes from a full run.

use monster_json::jobj;
use monster_tsdb::query::Aggregation;
use monster_tsdb::{DataPoint, Db, DbConfig, Query};
use monster_util::EpochSecs;
use std::sync::{Arc, RwLock};
use std::time::Instant;

const WRITERS: usize = 4;
const DAY: i64 = 86_400;

struct Workload {
    batches_per_writer: usize,
    batch_size: usize,
    queries: usize,
}

/// One writer's batches: a day of per-node power samples, writer `w`
/// owning day `w` (disjoint shards under the default shard duration).
fn writer_batches(w: usize, wl: &Workload) -> Vec<Vec<DataPoint>> {
    let day_start = w as i64 * DAY;
    let total = wl.batches_per_writer * wl.batch_size;
    let step = (DAY - 1).max(1) / total as i64 + 1;
    (0..wl.batches_per_writer)
        .map(|b| {
            (0..wl.batch_size)
                .map(|i| {
                    let k = b * wl.batch_size + i;
                    DataPoint::new("Power", EpochSecs::new(day_start + k as i64 * step))
                        .tag("NodeId", format!("10.101.{}.{}", k % 117 + 1, k % 4 + 1))
                        .tag("Label", "NodePower")
                        .field_f64("Reading", 250.0 + (k % 40) as f64)
                })
                .collect()
        })
        .collect()
}

fn fresh_db() -> Db {
    Db::new(DbConfig::default())
}

/// Sequential single-writer ingest; returns (points/sec, per-batch secs).
fn run_single(db: &Db, batches: &[Vec<DataPoint>]) -> (f64, Vec<f64>) {
    let mut per_batch = Vec::with_capacity(batches.len());
    let start = Instant::now();
    for b in batches {
        let t = Instant::now();
        db.write_batch(b).unwrap();
        per_batch.push(t.elapsed().as_secs_f64());
    }
    let points: usize = batches.iter().map(Vec::len).sum();
    (points as f64 / start.elapsed().as_secs_f64(), per_batch)
}

/// Threaded multi-writer wall-clock ingest. `global` simulates the
/// pre-rework engine: one write lock around every batch.
fn run_multi_wall(all: &[Vec<Vec<DataPoint>>], global: bool) -> f64 {
    let db = Arc::new(fresh_db());
    let big_lock = Arc::new(RwLock::new(()));
    let points: usize = all.iter().flatten().map(Vec::len).sum();
    let start = Instant::now();
    std::thread::scope(|s| {
        for batches in all {
            let db = Arc::clone(&db);
            let big_lock = Arc::clone(&big_lock);
            s.spawn(move || {
                for b in batches {
                    let _g = global.then(|| big_lock.write().unwrap());
                    db.write_batch(b).unwrap();
                }
            });
        }
    });
    points as f64 / start.elapsed().as_secs_f64()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let wl = if quick {
        Workload { batches_per_writer: 10, batch_size: 500, queries: 40 }
    } else {
        Workload { batches_per_writer: 40, batch_size: 2_500, queries: 200 }
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let all: Vec<Vec<Vec<DataPoint>>> = (0..WRITERS).map(|w| writer_batches(w, &wl)).collect();

    // --- single-writer baseline + per-batch critical-section profile ----
    let db = fresh_db();
    let mut single_pps = 0.0;
    let mut crit: Vec<Vec<f64>> = Vec::with_capacity(WRITERS);
    for (w, batches) in all.iter().enumerate() {
        let (pps, per_batch) = run_single(&db, batches);
        if w == 0 {
            single_pps = pps;
        }
        crit.push(per_batch);
    }

    // --- modelled makespans from measured critical sections -------------
    // Global lock: every batch serializes behind one lock → sum of all.
    // Sharded: each writer owns a shard; no shared lock → max over writers.
    let writer_sums: Vec<f64> = crit.iter().map(|v| v.iter().sum()).collect();
    let global_makespan: f64 = writer_sums.iter().sum();
    let sharded_makespan: f64 = writer_sums.iter().cloned().fold(0.0, f64::max);
    let modeled_speedup = global_makespan / sharded_makespan;

    // --- wall-clock multi-writer (both engines, honest numbers) ---------
    let wall_sharded_pps = run_multi_wall(&all, false);
    let wall_global_pps = run_multi_wall(&all, true);

    // --- query latency percentiles against the populated database ------
    let mut lat_us: Vec<f64> = Vec::with_capacity(wl.queries);
    for i in 0..wl.queries {
        let day = (i % WRITERS) as i64 * DAY;
        let q = Query::select("Power", "Reading", EpochSecs::new(day), EpochSecs::new(day + DAY))
            .aggregate(Aggregation::Mean)
            .group_by_time(300);
        let t = Instant::now();
        let (rs, _) = db.query(&q).unwrap();
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert!(!rs.series.is_empty());
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99) = (percentile(&lat_us, 0.50), percentile(&lat_us, 0.99));

    let total_points: usize = all.iter().flatten().map(Vec::len).sum();
    println!(
        "== tsdb ingest contention ({cores} core(s), {WRITERS} writers, {total_points} points) =="
    );
    println!("single-writer ingest:        {single_pps:>12.0} points/s");
    println!("4-writer wall (sharded):     {wall_sharded_pps:>12.0} points/s");
    println!("4-writer wall (global lock): {wall_global_pps:>12.0} points/s");
    println!(
        "modelled makespan global:    {global_makespan:>12.4} s (sum: one lock serializes all)"
    );
    println!("modelled makespan sharded:   {sharded_makespan:>12.4} s (max: disjoint shards)");
    println!("modelled speedup:            {modeled_speedup:>12.2}x");
    println!("query latency ({} queries):  p50 {p50:.0} us, p99 {p99:.0} us", wl.queries);

    let doc = jobj! {
        "bench" => "tsdb_contention",
        "quick" => quick,
        "cores" => cores as i64,
        "writers" => WRITERS as i64,
        "total_points" => total_points as i64,
        "ingest" => jobj! {
            "single_writer_pps" => single_pps,
            "multi_writer_wall_pps_sharded" => wall_sharded_pps,
            "multi_writer_wall_pps_global_lock" => wall_global_pps,
            "modeled_makespan_secs_global_lock" => global_makespan,
            "modeled_makespan_secs_sharded" => sharded_makespan,
            "modeled_speedup_sharded_vs_global" => modeled_speedup,
        },
        "query" => jobj! {
            "count" => wl.queries as i64,
            "p50_us" => p50,
            "p99_us" => p99,
        },
    };
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_tsdb.json".into());
    std::fs::write(&out, doc.to_string_pretty() + "\n").unwrap();
    println!("wrote {out}");

    // The acceptance bar: at 4 writers the sharded engine must beat the
    // single-global-lock baseline by >= 2x in the modelled makespan (the
    // wall-clock comparison is only meaningful with >= 2 cores).
    assert!(
        modeled_speedup >= 2.0,
        "modelled speedup {modeled_speedup:.2}x < 2x over global-lock baseline"
    );
}
