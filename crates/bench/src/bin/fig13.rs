//! Fig. 13 — data volumes of the previous schema vs the optimized schema.
//! Paper: the optimized schema holds the same information in 28.02 % of
//! the volume (13.5 months of production data).

use monster_bench::populated;
use monster_collector::SchemaVersion;
use monster_sim::DiskModel;
use monster_util::bytesize::ByteSize;

fn main() {
    eprintln!("collecting 7 days under each schema...");
    let old = populated(SchemaVersion::Previous, DiskModel::HDD, 7, 60);
    let new = populated(SchemaVersion::Optimized, DiskModel::HDD, 7, 60);
    let so = old.db().stats();
    let sn = new.db().stats();

    println!("FIG. 13 — DATA VOLUMES: PREVIOUS vs OPTIMIZED SCHEMA (7 days, 16 nodes)\n");
    println!("{:<22} {:>16} {:>16}", "", "previous", "optimized");
    println!("{:<22} {:>16} {:>16}", "points", so.points, sn.points);
    println!("{:<22} {:>16} {:>16}", "series cardinality", so.cardinality, sn.cardinality);
    println!("{:<22} {:>16} {:>16}", "measurements", so.measurements, sn.measurements);
    println!(
        "{:<22} {:>16} {:>16}",
        "raw wire volume",
        ByteSize(so.wire_bytes as u64).to_string(),
        ByteSize(sn.wire_bytes as u64).to_string()
    );
    println!(
        "{:<22} {:>16} {:>16}",
        "at-rest volume",
        ByteSize(so.encoded_bytes as u64).to_string(),
        ByteSize(sn.encoded_bytes as u64).to_string()
    );
    println!(
        "\noptimized / previous: wire {:.2}%, at rest {:.2}%, cardinality {:.2}%",
        sn.wire_bytes as f64 / so.wire_bytes as f64 * 100.0,
        sn.encoded_bytes as f64 / so.encoded_bytes as f64 * 100.0,
        sn.cardinality as f64 / so.cardinality as f64 * 100.0,
    );
    println!("paper: optimized schema = 28.02% of the previous schema's volume");
}
