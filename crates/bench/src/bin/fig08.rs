//! Fig. 8 — historical status change trends for one node: metrics over a
//! 17-hour window with background bands coloured by cluster membership.

use monster_analysis::kmeans::{KMeans, KMeansConfig};
use monster_analysis::trend::NodeTrend;
use monster_bench::fixture_workload;
use monster_core::{Monster, MonsterConfig};
use monster_redfish::bmc::BmcConfig;
use monster_util::EpochSecs;

fn main() {
    let mut m = Monster::new(MonsterConfig {
        nodes: 32,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        workload: Some(fixture_workload()),
        horizon_secs: 17 * 3600,
        ..MonsterConfig::default()
    });

    // 17 hours (the paper's 12 am..5 pm window), sampling each node's
    // profile every 10 minutes.
    let tracked = m.node_ids()[2]; // a busy node; label "1-3"
    let mut history: Vec<(EpochSecs, [f64; 9])> = Vec::new();
    let mut fleet: Vec<Vec<f64>> = Vec::new();
    for _ in 0..(17 * 6) {
        m.run_intervals_bulk(10);
        for &n in &m.node_ids() {
            let s = m.cluster().sensors(n).expect("node");
            fleet.push(s.nine_metrics().to_vec());
            if n == tracked {
                history.push((m.now(), s.nine_metrics()));
            }
        }
    }

    let km = KMeans::fit(&fleet, &KMeansConfig { k: 7, ..KMeansConfig::default() });
    let trend = NodeTrend::build(tracked.label(), &history, &km);

    println!("FIG. 8 — HISTORICAL STATUS TREND, node {}\n", tracked.label());
    println!("cluster bands over the window:");
    for (start, end, cluster) in trend.bands() {
        println!("  {} .. {}  group {}", start, end, cluster + 1);
    }

    // The three series the figure plots: temperature, memory-proxy, power.
    for (label, dim) in [("CPU1 temperature (°C)", 0usize), ("power (W)", 7), ("load", 8)] {
        let series = trend.metric_series(dim);
        let lo = series.iter().map(|(_, v)| *v).fold(f64::MAX, f64::min);
        let hi = series.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
        println!("\n{label}: {} samples, range {:.1} .. {:.1}", series.len(), lo, hi);
        // Coarse sparkline, 6 rows of 102 cols is overkill; print hourly means.
        let per_hour = series.chunks(6);
        let line: String = per_hour
            .map(|c| {
                let mean = c.iter().map(|(_, v)| *v).sum::<f64>() / c.len() as f64;
                let level = if hi > lo { ((mean - lo) / (hi - lo) * 8.0) as usize } else { 0 };
                char::from_u32(0x2581 + level.min(7) as u32).unwrap()
            })
            .collect();
        println!("hourly: {line}");
    }
    println!(
        "\nbands change when the node's regime changes — the Fig. 8 behaviour ({} bands).",
        trend.bands().len()
    );
}
