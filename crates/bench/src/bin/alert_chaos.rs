//! Alert chaos harness: replay the seeded fault profiles with streaming
//! detectors and the alert engine enabled, and assert the **exact** alert
//! sets each schedule must produce. Writes machine-readable
//! `BENCH_alerts.json` for CI and cross-PR tracking.
//!
//! Every `(profile, seed)` cell runs **twice** over the same schedule and
//! the two canonical transcripts must be byte-identical — alerting is a
//! paging decision, so it gets the same determinism bar as the collection
//! path. (Trace ids are excluded from the canonical form: they come from a
//! process-global counter, so the second run mints different ones by
//! design; everything else — ids, timestamps, severities, flap counts —
//! must match to the byte.)
//!
//! Per-profile assertions:
//!
//! * **dead-rack** — at the fault peak, exactly one `collection/unreachable`
//!   critical per dead node and nothing else node-scoped; zero flaps
//!   anywhere; after the schedule clears, every one of them resolves
//!   exactly once and the active set drains to empty. The weaker
//!   `collection/degraded` rule must never fire on a fully dead node.
//! * **rolling-brownout** — alerts raise while the window sits on a rack
//!   and resolve once it moves on: at least one raise, and by the end of
//!   the run every node-scoped alert has resolved.
//! * **calm** — nothing. No raises, no resolves, no anomaly events, an
//!   empty history.
//! * **all profiles** — zero detector (anomaly) events: collection faults
//!   must never masquerade as physical anomalies, because detectors only
//!   ever see live readings.
//!
//! Usage: `alert_chaos [--profile NAME] [--seed N] [--quick]
//! [--expect FILE]`. With `--expect`, the emitted JSON must match the
//! checked-in expectation byte-for-byte (regenerate by copying
//! `BENCH_alerts.json` over the expectation after an intentional change).

use monster_alert::IntervalOutcome;
use monster_core::{Monster, MonsterConfig};
use monster_json::{jobj, Value};
use monster_redfish::bmc::BmcConfig;
use monster_redfish::client::ClientConfig;
use monster_redfish::resilience::ResilienceConfig;
use monster_sim::{FaultProfile, LatencyDist};

struct Shape {
    nodes: usize,
    channels: usize,
    sweeps: u64,
    active: u64,
}

impl Shape {
    /// Like the collection chaos shapes, but with extra post-fault sweeps:
    /// resolution trails recovery by the 180 s hold-down, and the drain
    /// must be observable inside the run.
    fn new(quick: bool) -> Shape {
        if quick {
            Shape { nodes: 48, channels: 24, sweeps: 20, active: 8 }
        } else {
            Shape { nodes: 96, channels: 48, sweeps: 36, active: 18 }
        }
    }
}

/// Same base BMC as the collection chaos harness: log-normal latency
/// body, no background faults — every fault comes from the schedule.
fn chaos_bmc() -> BmcConfig {
    BmcConfig { latency: LatencyDist::LogNormal(4.0, 0.30), failure_rate: 0.0, stall_rate: 0.0 }
}

/// An alert's JSON with the `trace_id` member removed (process-global
/// counter — not comparable across runs).
fn canonical_alert(alert: &monster_alert::Alert) -> Value {
    let mut v = alert.to_json();
    v.as_object_mut().expect("alert JSON is an object").remove("trace_id");
    v
}

/// Replay `profile` for `(seed, shape)` with alerting on and return the
/// canonical transcript: per-sweep engine outcomes, the active set at the
/// fault peak, and the final active set + resolved history.
fn run_cell(profile: FaultProfile, seed: u64, shape: &Shape) -> Value {
    // The freshness tracker feeding the burn-rate rule is process-global:
    // start each run from a clean slate or the second run (and every later
    // cell) inherits the previous schedule's attainment.
    monster_obs::freshness().reset();
    let mut m = Monster::new(MonsterConfig {
        nodes: shape.nodes,
        seed,
        bmc: chaos_bmc(),
        client: ClientConfig { max_inflight: shape.channels, ..ClientConfig::default() },
        resilience: Some(ResilienceConfig::default()),
        workload: None,
        horizon_secs: 0,
        ..MonsterConfig::default()
    });
    let ids = m.node_ids();
    let mut sweeps = Vec::with_capacity(shape.sweeps as usize);
    let mut anomaly_events = 0usize;
    let mut totals = IntervalOutcome::default();
    let mut at_peak = Vec::new();
    for tick in 0..shape.sweeps {
        for (i, &node) in ids.iter().enumerate() {
            let spec = profile.spec(seed, i, ids.len(), tick, shape.active);
            m.cluster().apply_fault(node, spec).expect("known node");
        }
        let s = m.run_interval().expect("schema-consistent interval");
        anomaly_events += s.anomaly_events;
        let o = s.alerts;
        totals.raised += o.raised;
        totals.resolved += o.resolved;
        totals.flaps_suppressed += o.flaps_suppressed;
        sweeps.push(jobj! {
            "t" => tick,
            "raised" => o.raised,
            "resolved" => o.resolved,
            "flaps_suppressed" => o.flaps_suppressed,
            "active" => o.active,
        });
        if tick + 1 == shape.active {
            let engine = m.alerts().expect("alerting on");
            at_peak = engine.active().iter().map(canonical_alert).collect();
        }
    }
    let engine = m.alerts().expect("alerting on");
    jobj! {
        "profile" => profile.name(),
        "seed" => seed,
        "anomaly_events" => anomaly_events,
        "raised_total" => totals.raised,
        "resolved_total" => totals.resolved,
        "flaps_total" => totals.flaps_suppressed,
        "sweeps" => Value::Array(sweeps),
        "active_at_peak" => Value::Array(at_peak),
        "active_final" => engine.active().iter().map(canonical_alert).collect::<Vec<_>>(),
        "history" => engine.history().iter().map(canonical_alert).collect::<Vec<_>>(),
    }
}

fn usize_at(cell: &Value, key: &str) -> usize {
    cell.get(key).and_then(Value::as_f64).unwrap_or_else(|| panic!("missing {key}")) as usize
}

fn alerts_in<'a>(cell: &'a Value, key: &str) -> &'a [Value] {
    cell.get(key).and_then(Value::as_array).unwrap_or_else(|| panic!("missing {key}"))
}

fn rule_of(alert: &Value) -> &str {
    alert.get("rule").and_then(Value::as_str).expect("alert rule")
}

fn is_node_scoped(alert: &Value) -> bool {
    alert.get("node").and_then(Value::as_str).is_some()
}

/// Run one cell twice, assert determinism plus the profile's exact alert
/// set, and return its report.
fn alert_cell(profile: FaultProfile, seed: u64, shape: &Shape) -> Value {
    let cell = run_cell(profile, seed, shape);
    let replay = run_cell(profile, seed, shape);
    assert_eq!(
        cell.to_string_compact(),
        replay.to_string_compact(),
        "[{}/seed {seed}] alert stream not deterministic across identical replays",
        profile.name()
    );

    // Collection faults never fake physics: detectors see live readings
    // only, so every profile — including the chaotic ones — is
    // anomaly-silent.
    assert_eq!(
        usize_at(&cell, "anomaly_events"),
        0,
        "[{}/seed {seed}] collection faults tripped the physical-anomaly detectors",
        profile.name()
    );
    // Flap-free is asserted per-profile below: the hard-cut schedules
    // (calm, dead-rack) must never flap, while flaky-tail's and the
    // brownout's intermittent successes are precisely what the hold-down
    // absorbs — their flap counts are reported, not bounded.
    let flaps = usize_at(&cell, "flaps_total");
    let raised = usize_at(&cell, "raised_total");
    let final_node_scoped =
        alerts_in(&cell, "active_final").iter().filter(|a| is_node_scoped(a)).count();
    match profile {
        FaultProfile::Calm => {
            assert_eq!(raised, 0, "[calm/seed {seed}] raised alerts on a healthy fleet");
            assert_eq!(flaps, 0);
            assert!(alerts_in(&cell, "active_final").is_empty());
            assert!(alerts_in(&cell, "history").is_empty());
        }
        FaultProfile::DeadRack => {
            let dead = profile.dead_entities(seed, shape.nodes, shape.active);
            assert!(!dead.is_empty(), "dead-rack schedule killed nobody");
            assert_eq!(flaps, 0, "[dead-rack/seed {seed}] a dead rack must not flap");
            // At the fault peak: exactly one unreachable critical per dead
            // node, nothing else node-scoped, no flaps.
            let peak: Vec<&Value> =
                alerts_in(&cell, "active_at_peak").iter().filter(|a| is_node_scoped(a)).collect();
            assert_eq!(
                peak.len(),
                dead.len(),
                "[dead-rack/seed {seed}] expected exactly one alert per dead node: {peak:?}"
            );
            for a in &peak {
                assert_eq!(rule_of(a), "collection/unreachable", "{a:?}");
                assert_eq!(a.get("severity").and_then(Value::as_str), Some("critical"), "{a:?}");
                assert_eq!(a.get("flaps").and_then(Value::as_f64), Some(0.0), "{a:?}");
            }
            // After the schedule clears: each resolves exactly once and
            // the node-scoped active set drains to empty.
            assert_eq!(
                final_node_scoped, 0,
                "[dead-rack/seed {seed}] node alerts still active after recovery"
            );
            let resolved: Vec<&Value> = alerts_in(&cell, "history")
                .iter()
                .filter(|a| rule_of(a) == "collection/unreachable")
                .collect();
            assert_eq!(resolved.len(), dead.len(), "[dead-rack/seed {seed}] resolve count");
            for a in alerts_in(&cell, "history") {
                assert_ne!(
                    rule_of(a),
                    "collection/degraded",
                    "[dead-rack/seed {seed}] degraded fired on a dead node: {a:?}"
                );
            }
        }
        FaultProfile::RollingBrownout => {
            assert!(raised >= 1, "[rolling-brownout/seed {seed}] window raised nothing");
            assert_eq!(
                final_node_scoped, 0,
                "[rolling-brownout/seed {seed}] alerts failed to resolve after the window passed"
            );
        }
        // Flaky-tail holds the generic invariants only (determinism, no
        // anomaly events, no flaps) plus full drain.
        FaultProfile::FlakyTail => {
            assert_eq!(
                final_node_scoped, 0,
                "[flaky-tail/seed {seed}] alerts failed to drain after the schedule cleared"
            );
        }
    }

    println!(
        "[{}/seed {seed}] raised {raised} resolved {} flaps {flaps} | final active {} | deterministic",
        profile.name(),
        usize_at(&cell, "resolved_total"),
        alerts_in(&cell, "active_final").len(),
    );
    cell
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let seed: u64 = arg_after("--seed").map(|s| s.parse().expect("--seed N")).unwrap_or(1);
    let profiles: Vec<FaultProfile> = match arg_after("--profile") {
        None | Some("all") => FaultProfile::ALL.to_vec(),
        Some(name) => {
            vec![FaultProfile::parse(name).unwrap_or_else(|| panic!("unknown profile {name:?}"))]
        }
    };

    let shape = Shape::new(quick);
    println!(
        "== alert chaos: {} node(s), {} channel(s), {} sweep(s) ({} active), seed {seed} ==",
        shape.nodes, shape.channels, shape.sweeps, shape.active
    );

    let cells: Vec<Value> = profiles.iter().map(|&p| alert_cell(p, seed, &shape)).collect();

    let doc = jobj! {
        "bench" => "alert_chaos",
        "quick" => quick,
        "seed" => seed,
        "nodes" => shape.nodes,
        "channels" => shape.channels,
        "sweeps" => shape.sweeps,
        "active_sweeps" => shape.active,
        "cells" => cells,
    };
    let text = doc.to_string_pretty() + "\n";
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_alerts.json".into());
    std::fs::write(&out, &text).unwrap();
    println!("wrote {out}");

    if let Some(expect) = arg_after("--expect") {
        let want = std::fs::read_to_string(expect)
            .unwrap_or_else(|e| panic!("cannot read expectation {expect}: {e}"));
        if want != text {
            let diverge = want
                .lines()
                .zip(text.lines())
                .position(|(w, g)| w != g)
                .unwrap_or_else(|| want.lines().count().min(text.lines().count()));
            eprintln!(
                "alert set diverges from {expect} at line {}:\n  expected: {}\n  got:      {}",
                diverge + 1,
                want.lines().nth(diverge).unwrap_or("<eof>"),
                text.lines().nth(diverge).unwrap_or("<eof>"),
            );
            eprintln!("if the change is intentional, regenerate with:\n  cp {out} {expect}");
            std::process::exit(1);
        }
        println!("matches expectation {expect}");
    }
    println!("all alert invariants held");
}
