//! Metrics-name lint: exercise the full pipeline, scrape `GET /metrics`
//! over a real socket, and fail on naming-convention violations so a new
//! metric can't drift away from the Prometheus conventions the dashboards
//! assume:
//!
//! * counters end in `_total`; nothing else may use that suffix;
//! * histograms end in a unit suffix (`_seconds`, `_points`, `_bytes`,
//!   or `_ratio` for dimensionless distributions);
//! * no name is registered as two different kinds (duplicate
//!   registration), checked both in the registry and in the scraped
//!   `# TYPE` lines;
//! * every OpenMetrics exemplar suffix carries a well-formed
//!   `trace_id`/`span_id` pair;
//! * a `/metrics` + `/debug/trace` scrape storm must not stall concurrent
//!   span writers (the snapshot clones `Arc`s, not span payloads).
//!
//! Run by the CI bench-smoke job: `cargo run --release -p monster-bench
//! --bin metrics_lint`.

use monster_core::{Monster, MonsterConfig};
use monster_http::{Client, Request};
use monster_obs::{global, Registry, SpanRecord, TraceContext};
use monster_sim::VInstant;
use monster_tsdb::{Aggregation, Query};
use std::time::Instant;

/// Unit suffixes histograms (and unit-carrying gauges) may end with.
/// `_ratio` is the OpenMetrics convention for dimensionless quantities
/// (the estimator-accuracy histograms are actual/estimated ratios).
const UNIT_SUFFIXES: [&str; 4] = ["_seconds", "_points", "_bytes", "_ratio"];

/// Strip a `{labels}` clause: `m_shard_points{shard="0"}` → `m_shard_points`.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

fn has_unit_suffix(name: &str) -> bool {
    UNIT_SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// Drive every metric-producing stage once: resilient collection over a
/// mildly faulty fleet (sweeps, retries, breakers, freshness watermarks),
/// a compaction plus a sealed-window query (decode/summarize counters),
/// and a real HTTP consumer against the builder API (request histogram,
/// cache counters).
fn exercise_pipeline() -> Monster {
    let mut m = Monster::new(MonsterConfig { nodes: 6, ..MonsterConfig::default() });
    m.run_intervals(8);
    m.db().compact();
    let q = Query::select("Power", "Reading", m.now() - 480, m.now() + 60)
        .aggregate(Aggregation::Mean)
        .group_by_time(86_400);
    m.db().query(&q).expect("sealed query");

    let server = m.serve_api(0).expect("api server");
    let client = Client::new();
    let url = format!(
        "/v1/metrics?start={}&end={}&interval=5m&aggregation=max",
        (m.now() - 480).to_rfc3339(),
        m.now().to_rfc3339()
    );
    client.send_ok(server.addr(), &Request::get(&url)).expect("metrics query");
    m
}

/// Lint the registry's kind table: suffix conventions plus cross-kind
/// duplicate registrations. Returns human-readable violations.
fn lint_kinds(kinds: &[(String, &'static str)]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut seen: Vec<(&str, &str)> = Vec::new();
    for (name, kind) in kinds {
        let base = base_name(name);
        match *kind {
            "counter" if !base.ends_with("_total") => {
                violations.push(format!("counter `{name}` must end in _total"));
            }
            "gauge" if base.ends_with("_total") => {
                violations.push(format!("gauge `{name}` must not use the counter suffix _total"));
            }
            "histogram" if !has_unit_suffix(base) => {
                violations.push(format!(
                    "histogram `{name}` must end in a unit suffix ({})",
                    UNIT_SUFFIXES.join(", ")
                ));
            }
            _ => {}
        }
        if let Some((_, other)) = seen.iter().find(|(n, k)| *n == base && *k != *kind) {
            violations.push(format!("`{base}` registered as both {other} and {kind} (duplicate)"));
        }
        seen.push((base, kind));
    }
    violations
}

/// Label-cardinality budget: labels live in the metric name
/// (`monster_alert_active{severity="critical"}`), so one runaway label —
/// a node address, a job id — quietly multiplies a family into thousands
/// of series. Cap every family at `budget` distinct series; the limit is
/// generous for legitimate enums (severity, shard, reason) and fatal for
/// unbounded ones.
fn lint_cardinality(kinds: &[(String, &'static str)], budget: usize) -> Vec<String> {
    let mut families: Vec<(&str, usize)> = Vec::new();
    for (name, _) in kinds {
        let base = base_name(name);
        match families.iter_mut().find(|(f, _)| *f == base) {
            Some((_, n)) => *n += 1,
            None => families.push((base, 1)),
        }
    }
    families
        .iter()
        .filter(|&&(_, n)| n > budget)
        .map(|&(family, n)| {
            format!(
                "family `{family}` has {n} series, over the {budget}-series label budget \
                 (set METRICS_SERIES_BUDGET to raise it deliberately)"
            )
        })
        .collect()
}

/// Lint the scraped text: `# TYPE` lines must agree with the registry
/// rules too (this is what an external Prometheus actually sees), and
/// exemplar suffixes must be well-formed.
fn lint_exposition(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut typed: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                violations.push(format!("malformed TYPE line: `{line}`"));
                continue;
            };
            if let Some((_, other)) = typed.iter().find(|(n, _)| n == name) {
                if other != kind {
                    violations.push(format!("`{name}` declared as both {other} and {kind}"));
                } else {
                    violations.push(format!("`{name}` has duplicate TYPE declarations"));
                }
            }
            typed.push((name.to_string(), kind.to_string()));
        } else if let Some((sample, exemplar)) = line.split_once(" # ") {
            // OpenMetrics exemplar: `{trace_id="32hex",span_id="16hex"} value`.
            let ok = exemplar
                .strip_prefix("{trace_id=\"")
                .and_then(|r| r.split_once("\",span_id=\""))
                .and_then(|(trace, r)| {
                    let (span, value) = r.split_once("\"} ")?;
                    let hex = |s: &str| s.bytes().all(|b| b.is_ascii_hexdigit());
                    (trace.len() == 32 && hex(trace) && span.len() == 16 && hex(span))
                        .then(|| value.parse::<f64>().ok())
                        .flatten()
                })
                .is_some();
            if !ok {
                violations.push(format!("malformed exemplar on `{sample}`: `{exemplar}`"));
            }
        }
    }
    violations
}

/// Scrape storm vs. writer threads: 4 writers push 2 000 spans each while
/// a scraper takes 100 full `/debug/trace`-style snapshots. The snapshot
/// is O(capacity) `Arc` clones under the ring lock, so the storm must
/// finish promptly and every span must land (retained + dropped).
fn assert_scrape_does_not_stall_writers() {
    const WRITERS: u64 = 4;
    const SPANS_EACH: u64 = 2_000;
    let rec = |name: String| {
        let ctx = TraceContext::root();
        SpanRecord {
            name,
            begin: VInstant::EPOCH,
            end: VInstant::EPOCH,
            trace: ctx.trace,
            span: ctx.span,
            parent: None,
            attrs: Vec::new(),
        }
    };
    let r = Registry::with_span_capacity(256);
    let t0 = Instant::now();
    let mut worst_scrape = std::time::Duration::ZERO;
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let (r, rec) = (&r, &rec);
            s.spawn(move || {
                for i in 0..SPANS_EACH {
                    r.record_span(rec(format!("w{t}.{i}")));
                }
            });
        }
        for _ in 0..100 {
            let s0 = Instant::now();
            let snap = r.recent_spans();
            let _ = r.trace_json();
            worst_scrape = worst_scrape.max(s0.elapsed());
            assert!(snap.len() <= 256, "ring over capacity");
        }
    });
    let elapsed = t0.elapsed();
    let landed = r.recent_spans().len() as u64 + r.spans_dropped();
    assert_eq!(landed, WRITERS * SPANS_EACH, "spans lost during scrape storm");
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "scrape storm stalled writers: {elapsed:?}"
    );
    println!(
        "scrape storm: {} spans + 100 snapshots in {elapsed:?} (worst snapshot {worst_scrape:?})",
        WRITERS * SPANS_EACH
    );
}

fn main() {
    let m = exercise_pipeline();

    // Scrape over the wire, exactly as Prometheus would.
    let server = m.serve_api(0).expect("api server");
    let resp =
        Client::new().send_ok(server.addr(), &Request::get("/metrics")).expect("GET /metrics");
    let text = String::from_utf8(resp.body.to_vec()).expect("utf-8 exposition");

    let budget: usize = std::env::var("METRICS_SERIES_BUDGET")
        .ok()
        .map(|s| s.parse().expect("METRICS_SERIES_BUDGET must be an integer"))
        .unwrap_or(32);
    let kinds = global().metric_kinds();
    let mut violations = lint_kinds(&kinds);
    violations.extend(lint_cardinality(&kinds, budget));
    violations.extend(lint_exposition(&text));

    // The alert gauges register (with HELP and an explicit 0) at engine
    // construction, so a dashboard can tell "no alerts" from "alerting
    // not wired" on the very first scrape.
    for severity in ["info", "warning", "critical"] {
        let series = format!("monster_alert_active{{severity=\"{severity}\"}}");
        assert!(
            text.lines().any(|l| l.starts_with(&series)),
            "`{series}` missing from the first scrape"
        );
    }

    println!("== metrics-name lint: {} metrics scraped ==", kinds.len());
    for (name, kind) in &kinds {
        println!("  {kind:9} {name}");
    }
    if !violations.is_empty() {
        eprintln!("\n{} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!(
        "all names conform (counters _total; histograms {}; families within {budget} series)",
        UNIT_SUFFIXES.join("/")
    );

    assert_scrape_does_not_stall_writers();
    assert!(global().vtime() > VInstant::EPOCH, "pipeline advanced the virtual clock");
    println!("metrics lint passed");
}
