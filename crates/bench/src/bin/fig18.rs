//! Fig. 18 — data volumes of uncompressed vs compressed responses.
//! Paper: compressed ≈5 % of uncompressed (zlib on JSON).

use monster_bench::{data_start, populated};
use monster_builder::{BuilderRequest, ExecMode};
use monster_collector::SchemaVersion;
use monster_compress::{compress, Level};
use monster_sim::DiskModel;
use monster_tsdb::Aggregation;
use monster_util::bytesize::ByteSize;

fn main() {
    eprintln!("populating 7 days (optimized schema, SSD)...");
    let m = populated(SchemaVersion::Optimized, DiskModel::SSD, 7, 60);
    let t0 = data_start();

    println!("FIG. 18 — RESPONSE VOLUME, UNCOMPRESSED vs COMPRESSED\n");
    println!("{:>7} {:>14} {:>14} {:>8}", "hours", "uncompressed", "compressed", "ratio");
    for h in [6i64, 24, 72, 168] {
        let req = BuilderRequest::new(t0, t0 + h * 3600, 300, Aggregation::Max).unwrap();
        let out = m.builder_query(&req, ExecMode::Concurrent { workers: 16 }).unwrap();
        let json = out.document.to_string_compact();
        let packed = compress(json.as_bytes(), Level::default());
        println!(
            "{:>7} {:>14} {:>14} {:>7.1}%",
            h,
            ByteSize(json.len() as u64).to_string(),
            ByteSize(packed.len() as u64).to_string(),
            packed.len() as f64 / json.len() as f64 * 100.0
        );
    }
    println!("\npaper: compressed volume ≈5% of uncompressed");
}
