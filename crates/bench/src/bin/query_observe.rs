//! Flight-recorder bench: what does per-request observability cost, and
//! does the cost model deserve to gate admission? Writes
//! `BENCH_observe.json` for cross-PR tracking.
//!
//! Three phases over the shared dashboard-storm mix (`storm` module):
//!
//! * **A — byte identity.** Two identically seeded dbs, one service with
//!   the recorder on and one with it off, replay the same panel URLs
//!   tick by tick. Every response must be byte-identical, and every
//!   `?explain=true` envelope must carry the exact off-response bytes in
//!   `payload_base64`. Observability must never change what callers see.
//! * **B — overhead.** The gate divides two measurements: the
//!   recorder's per-request cost (p50 delta of recorder-on vs -off,
//!   measured in-process where paired windows resolve it to ±10 ns)
//!   over the socket p50 round trip of the same warm mix
//!   (`Server::spawn` + `PersistentClient` — what a dashboard actually
//!   pays per request). The delta cannot be resolved *through* the
//!   socket: two server instances differ by ±1–3% run to run from
//!   code/heap layout alone, an order of magnitude above the ~0.1 µs
//!   effect under test. And a warm in-process hit is ~1 µs, so gating
//!   "<1%" against *that* would demand the recorder cost ~10 ns —
//!   below one rdtsc pair. Numerator and denominator are each measured
//!   where they are measurable.
//! * **C — estimator accuracy.** Every executed (miss) request records
//!   planned `QueryCost` next to measured actual; the ratios
//!   actual/estimated per component come back through the explain
//!   envelope and `/debug/requests`. The admission-relevant components
//!   (modelled seconds, points, bytes) must aggregate within
//!   [0.5, 2.0]x on the storm mix — outside that band, the admission
//!   controller is rejecting or admitting on fiction.
//!
//! Usage: `query_observe [--quick]` — quick mode shrinks phase B's
//! sample counts for CI smoke runs and widens its gate to 5% (tiny
//! shared runners jitter more than the full run's 1%); the committed
//! `BENCH_observe.json` comes from a full run.

use monster_bench::storm::{
    catalog, modelled_secs, percentile, rfc3339, sample_batch, HISTORY_SECS, NODES, TICK_SECS,
};
use monster_builder::qlog::base64_decode;
use monster_builder::service::{router, QlogConfig, ServiceConfig};
use monster_builder::{AdmissionConfig, BuilderRequest, ExecMode};
use monster_http::{Client, PersistentClient, Request, Router, Server, Status};
use monster_json::{jobj, Value};
use monster_tsdb::{Aggregation, Db, DbConfig};
use monster_util::{EpochSecs, NodeId};
use std::sync::Arc;
use std::time::Instant;

/// Accumulated estimator accuracy over every executed request.
#[derive(Default)]
struct Accuracy {
    requests: u64,
    est_ms: f64,
    act_ms: f64,
    est_points: f64,
    act_points: f64,
    est_bytes: f64,
    act_bytes: f64,
    est_blocks: f64,
    act_blocks: f64,
}

impl Accuracy {
    fn absorb(&mut self, cost: &Value) {
        let f = |v: &Value, k: &str| {
            v.get(k).and_then(|x| x.as_f64().or(x.as_i64().map(|i| i as f64))).unwrap_or(0.0)
        };
        let (est, act) = (cost.get("estimated").unwrap(), cost.get("actual").unwrap());
        self.requests += 1;
        self.est_ms += f(cost, "estimated_modelled_ms");
        self.act_ms += f(cost, "actual_modelled_ms");
        self.est_points += f(est, "points");
        self.act_points += f(act, "points");
        self.est_bytes += f(est, "bytes");
        self.act_bytes += f(act, "bytes");
        self.est_blocks += f(est, "blocks");
        self.act_blocks += f(act, "blocks");
    }

    /// (seconds, points, bytes, blocks) aggregate actual/estimated.
    fn ratios(&self) -> (f64, f64, f64, f64) {
        let r = |act: f64, est: f64| if est > 0.0 { act / est } else { f64::NAN };
        (
            r(self.act_ms, self.est_ms),
            r(self.act_points, self.est_points),
            r(self.act_bytes, self.est_bytes),
            r(self.act_blocks, self.est_blocks),
        )
    }
}

fn seed_db() -> Arc<Db> {
    let nodes = NodeId::enumerate(NODES, 4);
    let db = Arc::new(Db::new(DbConfig { shard_duration: 900, ..DbConfig::default() }));
    for hour in 0..(HISTORY_SECS / 3600) {
        db.write_batch(&sample_batch(&nodes, hour * 3600, (hour + 1) * 3600)).unwrap();
    }
    db.compact();
    db
}

fn service(db: &Arc<Db>, nodes: &[NodeId], recorder: bool, admission: AdmissionConfig) -> Router {
    router(
        Arc::clone(db),
        nodes.to_vec(),
        ServiceConfig {
            exec: ExecMode::Sequential,
            admission,
            // Shipped-default ring capacity: the overhead gate must price
            // the configuration operators actually run.
            qlog: QlogConfig { enabled: recorder, ..QlogConfig::default() },
            ..ServiceConfig::default()
        },
    )
}

/// One socket-latency trial: `rounds` passes over the whole warm panel
/// mix on a persistent connection; returns the sorted per-request
/// latencies in microseconds.
fn trial(client: &mut PersistentClient, reqs: &[Request], rounds: usize) -> Vec<f64> {
    let mut us = Vec::with_capacity(rounds * reqs.len());
    for _ in 0..rounds {
        for req in reqs {
            let t = Instant::now();
            let resp = client.send(req).expect("socket request");
            assert_eq!(resp.status, Status::OK);
            us.push(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    us
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let nodes = NodeId::enumerate(NODES, 4);
    let panels = catalog();

    // Identically seeded twin dbs: recorder-on and recorder-off services
    // must not share cache or flight state, or identity proves nothing.
    let setup = Instant::now();
    let db_on = seed_db();
    let db_off = seed_db();
    let setup_secs = setup.elapsed().as_secs_f64();

    // Same admission derivation as dashboard_storm, so the mix includes
    // charged (non-cheap) executions — the estimates admission acts on.
    let mut now = HISTORY_SECS;
    let panel_est = panels
        .iter()
        .map(|p| modelled_secs(&db_on, &nodes, &p.request(now)))
        .fold(0.0f64, f64::max);
    let rogue_req =
        BuilderRequest::new(EpochSecs::new(0), EpochSecs::new(now), 60, Aggregation::Mean).unwrap();
    let rogue_est = modelled_secs(&db_on, &nodes, &rogue_req);
    let admission = AdmissionConfig {
        cheap_secs: panel_est * 2.0,
        reject_secs: rogue_est * 0.6,
        ..AdmissionConfig::default()
    };
    let svc_on = service(&db_on, &nodes, true, admission);
    let svc_off = service(&db_off, &nodes, false, admission);

    // --- phase A: byte identity + estimator harvest -----------------------
    let ticks = if quick { 2 } else { 4 };
    let mut identical = 0usize;
    let mut mismatches = 0usize;
    let mut envelopes = 0usize;
    let mut acc = Accuracy::default();
    for tick in 0..ticks {
        db_on.write_batch(&sample_batch(&nodes, now, now + TICK_SECS)).unwrap();
        db_off.write_batch(&sample_batch(&nodes, now, now + TICK_SECS)).unwrap();
        now += TICK_SECS;
        for panel in &panels {
            let url = panel.url(now);
            // Recorder-off reference, then the recorder-on miss carried
            // inside an explain envelope, then the plain hit.
            let reference = svc_off.dispatch(&Request::get(&url));
            assert_eq!(reference.status, Status::OK, "reference {url}");
            let wrapped = svc_on.dispatch(&Request::get(&format!("{url}&explain=true")));
            assert_eq!(wrapped.status, Status::OK, "explain {url}");
            let doc = wrapped.json_body().expect("explain envelope");
            let payload =
                base64_decode(doc.get("payload_base64").unwrap().as_str().unwrap()).unwrap();
            envelopes += 1;
            if payload == reference.body.to_vec() {
                identical += 1;
            } else {
                mismatches += 1;
                eprintln!("explain payload diverged from recorder-off response: {url}");
            }
            let record = doc.get("explain").unwrap();
            if tick == 0 {
                // First sighting of this URL this run: a miss that
                // executed and therefore carries the cost pair.
                if let Some(cost) = record.get("cost") {
                    acc.absorb(cost);
                }
            }
            let hit = svc_on.dispatch(&Request::get(&url));
            if hit.body == reference.body {
                identical += 1;
            } else {
                mismatches += 1;
                eprintln!("recorder-on hit diverged from recorder-off response: {url}");
            }
        }
    }
    // The rogue tenant is part of the mix: both sides must reject it
    // identically, and its record must carry the admission snapshot but
    // no cost pair (nothing executed).
    let rogue_url = format!(
        "/v1/metrics?start={}&end={}&interval=1m&aggregation=mean&explain=true",
        rfc3339(0),
        rfc3339(now)
    );
    let rogue = svc_on.dispatch(&Request::get(&rogue_url).with_header("X-Tenant", "rogue"));
    assert_eq!(rogue.status, Status::TOO_MANY_REQUESTS, "rogue must be rejected");
    let rogue_doc = rogue.json_body().unwrap();
    let rogue_record = rogue_doc.get("explain").unwrap();
    assert_eq!(rogue_record.get("disposition").unwrap().as_str(), Some("rejected"));
    assert!(rogue_record.get("admission").is_some(), "429 record must carry admission snapshot");
    assert!(rogue_record.get("cost").is_none(), "429 must not pollute estimator accuracy");

    // The ring saw everything: drill the debug endpoint like an operator.
    let debug = svc_on.dispatch(&Request::get("/debug/requests?disposition=miss&limit=500"));
    assert_eq!(debug.status, Status::OK);
    let debug_doc = debug.json_body().unwrap();
    let recorded_total = debug_doc.get("recorded_total").unwrap().as_i64().unwrap();
    let listed_misses = debug_doc.get("requests").unwrap().as_array().unwrap().len();
    assert!(recorded_total as usize >= envelopes, "ring lost records");
    assert!(listed_misses >= panels.len(), "every first-tick panel was a miss");

    // --- phase B: recorder overhead per request --------------------------
    // Two measurements compose the gate. The *denominator* is the p50
    // socket round trip of the warm panel mix (`Server::spawn` +
    // `PersistentClient`) — what a dashboard actually pays per request; a
    // warm in-process hit is ~1 us, so "<1%" of that would demand the
    // recorder cost ~10 ns, below one rdtsc pair. The *numerator* is the
    // recorder's per-request cost: the p50 delta between recorder-on and
    // recorder-off in-process dispatch of the same warm mix. The delta
    // (~0.1 us) cannot be resolved through the socket — two server
    // instances differ by +/-1-3% run to run (code/heap layout, not the
    // recorder), an order of magnitude above the effect under test,
    // while in-process paired windows resolve it to +/-10 ns.
    // Order-swapped paired windows, median of per-pair p50 deltas,
    // minimum over independent reps: interference (IRQs, preemption,
    // frequency transitions) only ever adds latency, so the smallest
    // measured delta is the closest to the intrinsic cost. Every request
    // in the mix is a cache hit on both sides, so the delta is exactly
    // the recorder's hit-path work (two stamps + one seqlock ring
    // write), never execution noise; no writes land during this phase,
    // so sliding windows stay valid.
    let probe_reqs: Vec<Request> = panels.iter().map(|p| Request::get(&p.url(now))).collect();
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile(v, 0.50)
    };

    // Denominator (and the reported operational p50s): socket round
    // trips, alternating segments between the two servers.
    let server_on = Server::spawn(0, service(&db_on, &nodes, true, admission)).unwrap();
    let server_off = Server::spawn(0, service(&db_off, &nodes, false, admission)).unwrap();
    let mut client_on = PersistentClient::new(server_on.addr(), Client::new());
    let mut client_off = PersistentClient::new(server_off.addr(), Client::new());
    let (warmup, per_segment, segments) = if quick { (8, 8, 6) } else { (24, 12, 12) };
    trial(&mut client_on, &probe_reqs, warmup);
    trial(&mut client_off, &probe_reqs, warmup);
    let mut p50s_on = Vec::with_capacity(segments);
    let mut p50s_off = Vec::with_capacity(segments);
    let mut p99_on = f64::INFINITY;
    let mut p99_off = f64::INFINITY;
    for seg in 0..segments {
        let (on, off) = if seg % 2 == 0 {
            let on = trial(&mut client_on, &probe_reqs, per_segment);
            (on, trial(&mut client_off, &probe_reqs, per_segment))
        } else {
            let off = trial(&mut client_off, &probe_reqs, per_segment);
            (trial(&mut client_on, &probe_reqs, per_segment), off)
        };
        p50s_on.push(percentile(&on, 0.50));
        p50s_off.push(percentile(&off, 0.50));
        p99_on = p99_on.min(percentile(&on, 0.99));
        p99_off = p99_off.min(percentile(&off, 0.99));
    }
    let p50_on = median(&mut p50s_on);
    let p50_off = median(&mut p50s_off);

    // Numerator: in-process paired windows over fresh service instances
    // sharing the same dbs.
    let probe_on = service(&db_on, &nodes, true, admission);
    let probe_off = service(&db_off, &nodes, false, admission);
    let dispatch_trial = |svc: &monster_http::Router, rounds: usize| -> Vec<f64> {
        let mut us = Vec::with_capacity(rounds * probe_reqs.len());
        for _ in 0..rounds {
            for req in &probe_reqs {
                let t = Instant::now();
                let resp = svc.dispatch(req);
                assert_eq!(resp.status, Status::OK);
                us.push(t.elapsed().as_secs_f64() * 1e6);
            }
        }
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        us
    };
    let (rounds, pairs, reps) = if quick { (40, 12, 3) } else { (100, 24, 6) };
    dispatch_trial(&probe_on, warmup.max(8));
    dispatch_trial(&probe_off, warmup.max(8));
    let mut rep_deltas = Vec::with_capacity(reps);
    let (mut delta_us, mut ip_p50_on, mut ip_p50_off) = (f64::INFINITY, 0.0, 0.0);
    for _ in 0..reps {
        let mut deltas = Vec::with_capacity(pairs);
        let mut win_on = Vec::with_capacity(pairs);
        let mut win_off = Vec::with_capacity(pairs);
        for pair in 0..pairs {
            let (on, off) = if pair % 2 == 0 {
                let on = dispatch_trial(&probe_on, rounds);
                (on, dispatch_trial(&probe_off, rounds))
            } else {
                let off = dispatch_trial(&probe_off, rounds);
                (dispatch_trial(&probe_on, rounds), off)
            };
            win_on.push(percentile(&on, 0.50));
            win_off.push(percentile(&off, 0.50));
            deltas.push(percentile(&on, 0.50) - percentile(&off, 0.50));
        }
        let rep_delta = median(&mut deltas);
        rep_deltas.push(rep_delta);
        if rep_delta < delta_us {
            delta_us = rep_delta;
            ip_p50_on = median(&mut win_on);
            ip_p50_off = median(&mut win_off);
        }
    }
    let overhead = delta_us / p50_off;
    let overhead_gate = if quick { 0.05 } else { 0.01 };

    // --- phase C: estimator-accuracy gate ---------------------------------
    let (r_secs, r_points, r_bytes, r_blocks) = acc.ratios();

    println!(
        "== query observe ({cores} core(s), {} panels, {ticks} tick(s), \
         {setup_secs:.1}s setup) ==",
        panels.len()
    );
    println!(
        "identity: {identical}/{} responses byte-identical recorder-on vs off \
         ({envelopes} explain envelopes opened, {mismatches} mismatches)",
        identical + mismatches
    );
    println!(
        "overhead: recorder adds {:.0}ns per request (in-process paired delta, \
         best of {reps} reps {:?}ns) = {:+.2}% of the {p50_off:.2}us socket p50 \
         ({:.0}% gate; socket p50 on {p50_on:.2}us, p99 {p99_on:.2}us vs {p99_off:.2}us)",
        delta_us * 1000.0,
        rep_deltas.iter().map(|d| (d * 1000.0).round() as i64).collect::<Vec<_>>(),
        overhead * 100.0,
        overhead_gate * 100.0
    );
    println!(
        "estimator: actual/estimated over {} executed requests — \
         seconds {r_secs:.3}x, points {r_points:.3}x, bytes {r_bytes:.3}x, \
         blocks {r_blocks:.3}x",
        acc.requests
    );

    let doc = jobj! {
        "bench" => "query_observe",
        "quick" => quick,
        "cores" => cores as i64,
        "panels" => panels.len() as i64,
        "ticks" => ticks as i64,
        "identity" => jobj! {
            "responses_compared" => (identical + mismatches) as i64,
            "explain_envelopes" => envelopes as i64,
            "mismatches" => mismatches as i64,
        },
        "overhead" => jobj! {
            "socket" => jobj! {
                "p50_on_us" => p50_on,
                "p50_off_us" => p50_off,
                "p99_on_us" => p99_on,
                "p99_off_us" => p99_off,
                "warmup" => warmup as i64,
                "per_segment_rounds" => per_segment as i64,
                "segments" => segments as i64,
            },
            "inprocess" => jobj! {
                "delta_ns" => delta_us * 1000.0,
                "p50_on_us" => ip_p50_on,
                "p50_off_us" => ip_p50_off,
                "rep_delta_ns" => Value::Array(
                    rep_deltas.iter().map(|&d| Value::from(d * 1000.0)).collect()
                ),
                "window_rounds" => rounds as i64,
                "pairs" => pairs as i64,
                "reps" => reps as i64,
            },
            "p50_overhead_fraction" => overhead,
            "gate_fraction" => overhead_gate,
            "mix_urls" => probe_reqs.len() as i64,
        },
        "estimator" => jobj! {
            "executed_requests" => acc.requests as i64,
            "ratio" => jobj! {
                "seconds" => r_secs,
                "points" => r_points,
                "bytes" => r_bytes,
                "blocks" => r_blocks,
            },
            "gate" => jobj! { "lo" => 0.5, "hi" => 2.0 },
        },
        "recorder" => jobj! {
            "recorded_total" => recorded_total,
            "misses_listed" => listed_misses as i64,
        },
    };
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_observe.json".into());
    std::fs::write(&out, doc.to_string_pretty() + "\n").unwrap();
    println!("wrote {out}");

    // Acceptance bars.
    assert_eq!(mismatches, 0, "observability changed response bytes");
    assert!(
        overhead < overhead_gate,
        "recorder p50 overhead {:.2}% over the {:.0}% gate \
         ({:.0}ns per request against a {p50_off:.2}us socket p50)",
        overhead * 100.0,
        overhead_gate * 100.0,
        delta_us * 1000.0
    );
    for (stage, ratio) in [("seconds", r_secs), ("points", r_points), ("bytes", r_bytes)] {
        assert!(
            (0.5..=2.0).contains(&ratio),
            "estimator {stage} ratio {ratio:.3}x outside [0.5, 2.0] — \
             admission decisions are running on a broken model"
        );
    }
}
