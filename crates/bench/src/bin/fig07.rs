//! Fig. 7 — radar representations of nine-dimensional node metrics:
//! a normal node vs a critical one (high CPU temperature + memory usage).

use monster_analysis::radar::RadarProfile;
use monster_analysis::METRIC_NAMES;

fn main() {
    println!("FIG. 7 — RADAR PROFILES (normal vs critical)\n");
    // The two archetypes the figure contrasts; readings representative of
    // the simulated sensor model's idle and saturated regimes.
    let normal = RadarProfile::new(
        "normal",
        [44.8, 45.3, 20.5, 4420.0, 4433.0, 4401.0, 4415.0, 172.0, 0.31],
    );
    let critical = RadarProfile::new(
        "critical",
        [96.2, 94.8, 25.1, 15200.0, 15100.0, 15320.0, 15260.0, 441.0, 0.96],
    );
    for p in [&normal, &critical] {
        println!("{} (critical = {}):", p.node, p.is_critical());
        for (name, (raw, norm)) in METRIC_NAMES.iter().zip(p.raw.iter().zip(p.normalized.iter())) {
            let bar = "#".repeat((norm * 40.0).round() as usize);
            println!("  {name:12} {raw:9.1}  {norm:5.2} |{bar}");
        }
        println!("  glyph area: {:.3}\n", p.glyph_area());
    }
    assert!(!normal.is_critical() && critical.is_critical());
    println!("shape check: critical glyph dominates on every load-coupled dimension ✓");
}
