//! Table I — selective metrics collected from BMC.
//!
//! Sweeps one simulated node's four Redfish categories and prints the
//! metric inventory, verifying it matches the paper's table.

use monster_redfish::bmc::BmcConfig;
use monster_redfish::cluster::{ClusterConfig, SimulatedCluster};
use monster_redfish::{Category, NodeReading};

fn main() {
    let cluster = SimulatedCluster::new(ClusterConfig {
        nodes: 1,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..ClusterConfig::small(1, 1)
    });
    cluster.step(60.0, |_| 0.5);
    let node = cluster.node_ids()[0];

    println!("TABLE I — SELECTIVE METRICS COLLECTED FROM BMC\n");
    println!("{:<10} Metrics", "Category");
    println!("{}", "-".repeat(60));
    for category in Category::ALL {
        let reading = loop {
            match cluster.request(node, category).expect("node exists") {
                monster_redfish::bmc::BmcResponse::Ok(payload, _) => {
                    break monster_redfish::model::parse_reading(category, &payload)
                        .expect("well-formed payload")
                }
                _ => continue,
            }
        };
        let (label, metrics) = match &reading {
            NodeReading::Manager { .. } => ("Manager", vec!["BMC Health".to_string()]),
            NodeReading::System { .. } => ("System", vec!["Host Health".to_string()]),
            NodeReading::Thermal { cpu_temps, fans, .. } => (
                "Thermal",
                vec![
                    (1..=cpu_temps.len())
                        .map(|i| format!("CPU{i} Temp"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    "Inlet Temp".to_string(),
                    format!(
                        "Fans Speed ({})",
                        (1..=fans.len()).map(|i| format!("Fan {i}")).collect::<Vec<_>>().join(", ")
                    ),
                ],
            ),
            NodeReading::Power { voltages, .. } => (
                "Power",
                vec!["Power Usage".to_string(), format!("Voltages ({} rails)", voltages.len())],
            ),
        };
        for (i, metric) in metrics.iter().enumerate() {
            let cat = if i == 0 { label } else { "" };
            println!("{cat:<10} {metric}");
        }
    }
    println!(
        "\nRequest-pool check: 467 nodes x {} categories = {} URLs (paper: 1868)",
        Category::ALL.len(),
        467 * Category::ALL.len()
    );
    println!("Example URL: {}", Category::Thermal.url(node));
}
