//! Crash-recovery benchmark and CI gate: kill the WAL at a matrix of
//! byte offsets, recover each image, and prove zero acknowledged batches
//! are lost — then measure replay throughput and the live SSD→HDD
//! tiering split (the Fig. 12 / Table III device comparison, re-run as a
//! two-tier measurement instead of a whole-database device swap).
//!
//! Sections:
//!
//! * **crash matrix** — one WAL-backed database is built with a durable
//!   boundary mid-log (periodic group commits, unsynced tail), then the
//!   directory is copied and killed at `0`, the durable boundary, the
//!   full extent, and seeded offsets in between. Every image must
//!   recover to a whole-batch prefix with exact point accounting;
//!   recovered prefixes must be monotone in the kill offset; and any
//!   kill at or past the durable boundary must retain every acknowledged
//!   batch. Recovery wall time and replayed points/s are reported.
//! * **tiering** — a 5-day fleet is tiered (2 hot days on the configured
//!   SSD, 3 cold days compacted to HDD-priced segment files). Reported:
//!   the modelled archive-query slowdown vs an untiered all-SSD twin
//!   (answers asserted bit-identical), hot-window parity, bytes written,
//!   WAL segments reclaimed, and recovery time from the tiered image.
//!
//! Usage: `crash_recovery [--quick]` — quick mode shrinks the workload
//! and the kill matrix (8 seeded offsets) for CI smoke runs; the
//! committed `BENCH_recovery.json` comes from a full run.

use monster_json::jobj;
use monster_tsdb::query::Aggregation;
use monster_tsdb::recover::{copy_dir_killed_at, wal_extent};
use monster_tsdb::{DataPoint, Db, DbConfig, Query, TierConfig, WalTuning};
use monster_util::EpochSecs;
use std::time::Instant;

const DAY: i64 = 86_400;

struct Workload {
    series: usize,
    days: i64,
    cadence_secs: i64,
    kills: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One series-hour of samples — the uniform batch the accounting checks
/// count in.
fn hour_batch(series: usize, day: i64, hour: i64, cadence: i64) -> Vec<DataPoint> {
    (0..3600 / cadence)
        .map(|i| {
            let ts = day * DAY + hour * 3600 + i * cadence;
            DataPoint::new("Power", EpochSecs::new(ts))
                .tag("NodeId", format!("10.101.1.{}", series + 1))
                .tag("Label", "NodePower")
                .field_f64("Reading", 250.0 + ((ts + series as i64 * 13) % 359) as f64 * 0.25)
        })
        .collect()
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("monster-bench-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let wl = if quick {
        Workload { series: 4, days: 1, cadence_secs: 60, kills: 8 }
    } else {
        Workload { series: 8, days: 2, cadence_secs: 30, kills: 64 }
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let config = DbConfig {
        // Small segments so the matrix crosses many sealed-segment
        // boundaries; explicit-sync-only tuning pins the ack boundary.
        wal: WalTuning {
            segment_bytes: 256 << 10,
            sync_bytes: usize::MAX,
            sync_interval: std::time::Duration::from_secs(3600),
        },
        ..DbConfig::default()
    };

    // --- build the image that will be killed ----------------------------
    let dir = scratch_dir("src");
    let (db, _) = Db::recover(config, &dir).unwrap();
    let per_batch = (3600 / wl.cadence_secs) as usize;
    let ingest = Instant::now();
    let mut batches = 0usize;
    for d in 0..wl.days {
        for h in 0..24 {
            for s in 0..wl.series {
                db.write_batch(&hour_batch(s, d, h, wl.cadence_secs)).unwrap();
                batches += 1;
                if batches.is_multiple_of(5) {
                    db.wal_sync().unwrap(); // group-commit: ack every 5th batch
                }
            }
        }
    }
    let ingest_secs = ingest.elapsed().as_secs_f64();
    let status = db.wal_status().unwrap();
    let acked = status.acked_records;
    let unsynced = status.unsynced_bytes as u64;
    let total_points = batches * per_batch;
    drop(db);

    let extent = wal_extent(&dir).unwrap();
    let durable = extent - unsynced;
    assert!(acked as usize <= batches && acked > 0);

    // --- the kill matrix: 0, durable boundary, extent, seeded offsets ---
    let mut offsets = vec![0u64, durable, extent];
    let mut x = 0x5EED_CAFE_u64; // fixed seed: the matrix is reproducible
    while offsets.len() < wl.kills {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        offsets.push(x % (extent + 1));
    }
    offsets.sort_unstable();

    let mut recover_ms: Vec<f64> = Vec::with_capacity(offsets.len());
    let mut replay_pps: Vec<f64> = Vec::with_capacity(offsets.len());
    let mut prev_replayed = 0u64;
    let mut full_replayed = 0u64;
    for (i, &cut) in offsets.iter().enumerate() {
        let copy = scratch_dir(&format!("kill-{i}"));
        copy_dir_killed_at(&dir, &copy, cut).unwrap();
        let t = Instant::now();
        let (recovered, report) = Db::recover(config, &copy).unwrap();
        let secs = t.elapsed().as_secs_f64();
        recover_ms.push(secs * 1e3);
        if report.replayed_points > 0 {
            replay_pps.push(report.replayed_points as f64 / secs);
        }

        // The gate: whole-batch prefix, exact accounting, monotone in the
        // offset, and nothing acknowledged lost past the durable boundary.
        assert_eq!(report.records_failed, 0, "kill at {cut}: CRC-valid records failed to parse");
        let k = report.replayed_records;
        assert_eq!(
            recovered.stats().points,
            k as usize * per_batch,
            "kill at {cut}: partial batch visible after recovery"
        );
        assert!(k >= prev_replayed, "kill at {cut}: recovered prefix shrank as the cut grew");
        prev_replayed = k;
        if cut >= durable {
            assert!(
                k >= acked,
                "kill at {cut} >= durable boundary {durable} lost acked batches: {k} < {acked}"
            );
        }
        if cut == extent {
            assert_eq!(k as usize, batches, "full image must replay every batch");
            full_replayed = k;
        }
        drop(recovered);
        std::fs::remove_dir_all(&copy).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
    recover_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    replay_pps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (rec_p50, rec_p99) = (percentile(&recover_ms, 0.50), percentile(&recover_ms, 0.99));
    let pps_p50 = percentile(&replay_pps, 0.50);

    println!(
        "== wal crash matrix ({cores} core(s), {} series x {} day(s) @ {}s, \
         {total_points} points / {batches} batches, {:.1}s ingest) ==",
        wl.series, wl.days, wl.cadence_secs, ingest_secs
    );
    println!(
        "kills: {} offsets over {extent} bytes (durable boundary {durable}, {acked}/{batches} \
         batches acked); zero acked batches lost",
        offsets.len()
    );
    println!(
        "recovery: p50 {rec_p50:.1}ms p99 {rec_p99:.1}ms; replay {:.0}k points/s (p50)",
        pps_p50 / 1e3
    );

    // --- tiering: the live SSD→HDD split (Fig. 12 / Table III) ----------
    let hot_days = 2i64;
    let cold_days = 3i64;
    let tier_dir = scratch_dir("tier");
    // Hot tier on SSD (the default `DbConfig::disk` is the paper's HDD
    // baseline), cold tier on HDD — the two devices Fig. 12 compares.
    let tiered_config = DbConfig {
        disk: monster_sim::DiskModel::SSD,
        tiering: Some(TierConfig::days(hot_days)),
        wal: WalTuning { segment_bytes: 256 << 10, ..WalTuning::default() },
        ..DbConfig::default()
    };
    let (tiered, _) = Db::recover(tiered_config, &tier_dir).unwrap();
    let untiered = Db::new(DbConfig { disk: monster_sim::DiskModel::SSD, ..DbConfig::default() }); // all-SSD twin
    for d in 0..hot_days + cold_days {
        for s in 0..wl.series {
            for h in 0..24 {
                let b = hour_batch(s, d, h, 60);
                tiered.write_batch(&b).unwrap();
                untiered.write_batch(&b).unwrap();
            }
        }
    }
    tiered.wal_sync().unwrap();
    let t = Instant::now();
    let tier_report =
        tiered.tier_cold_shards(EpochSecs::new((hot_days + cold_days) * DAY)).unwrap();
    let tier_secs = t.elapsed().as_secs_f64();
    assert_eq!(tier_report.shards_tiered as i64, cold_days);

    let archive_q =
        Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(cold_days * DAY))
            .aggregate(Aggregation::Mean)
            .group_by_time(3600);
    let hot_q = Query::select(
        "Power",
        "Reading",
        EpochSecs::new(cold_days * DAY),
        EpochSecs::new((hot_days + cold_days) * DAY),
    )
    .aggregate(Aggregation::Mean)
    .group_by_time(3600);

    let (rs_cold_t, cost_cold_t) = tiered.query(&archive_q).unwrap();
    let (rs_cold_u, cost_cold_u) = untiered.query(&archive_q).unwrap();
    let (rs_hot_t, cost_hot_t) = tiered.query(&hot_q).unwrap();
    let (rs_hot_u, cost_hot_u) = untiered.query(&hot_q).unwrap();
    assert_eq!(rs_cold_t, rs_cold_u, "tiering changed archive answers");
    assert_eq!(rs_hot_t, rs_hot_u, "tiering changed hot answers");
    assert_eq!(cost_cold_t.bytes_cold, cost_cold_t.bytes, "archive query must be all-cold");
    assert_eq!(cost_hot_t.bytes_cold, 0, "hot query must stay on the hot tier");

    let archive_hdd = tiered.simulate_elapsed(&cost_cold_t).as_secs_f64();
    let archive_ssd = untiered.simulate_elapsed(&cost_cold_u).as_secs_f64();
    let hot_tiered = tiered.simulate_elapsed(&cost_hot_t).as_secs_f64();
    let hot_untiered = untiered.simulate_elapsed(&cost_hot_u).as_secs_f64();
    let archive_slowdown = archive_hdd / archive_ssd;
    // The paper's device gap (Fig. 12: HDD vs SSD query response) must
    // show through the tier split; identical hot-path pricing must not.
    assert!(
        archive_slowdown > 1.5,
        "archive slowdown {archive_slowdown:.2}x — HDD pricing not applied to cold shards"
    );
    assert!((hot_tiered - hot_untiered).abs() < 1e-9, "hot-tier pricing drifted");

    // Recovery from the tiered image: cold shards from segment files, hot
    // from WAL replay.
    drop(tiered);
    let t = Instant::now();
    let (retiered, tier_rec) = Db::recover(tiered_config, &tier_dir).unwrap();
    let tier_rec_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(tier_rec.segment_files_loaded as i64, cold_days);
    let (rs_again, _) = retiered.query(&archive_q).unwrap();
    assert_eq!(rs_again, rs_cold_u, "tiered recovery changed archive answers");
    drop(retiered);
    std::fs::remove_dir_all(&tier_dir).ok();

    println!(
        "== tiering (hot {hot_days}d SSD / cold {cold_days}d HDD, {} series @ 60s) ==",
        wl.series
    );
    println!(
        "tiered {} shards / {} points in {:.2}s; {} seg bytes; {} wal segment(s) reclaimed",
        tier_report.shards_tiered,
        tier_report.points_tiered,
        tier_secs,
        tier_report.segment_bytes_written,
        tier_report.wal_segments_reclaimed
    );
    println!(
        "archive query modelled: {archive_hdd:.4}s HDD-tiered vs {archive_ssd:.4}s all-SSD \
         ({archive_slowdown:.2}x); hot query parity {hot_tiered:.4}s"
    );
    println!(
        "tiered recovery: {tier_rec_ms:.1}ms ({} seg files + wal)",
        tier_rec.segment_files_loaded
    );

    let doc = jobj! {
        "bench" => "crash_recovery",
        "quick" => quick,
        "cores" => cores as i64,
        "workload" => jobj! {
            "series" => wl.series as i64,
            "days" => wl.days,
            "cadence_secs" => wl.cadence_secs,
            "points" => total_points as i64,
            "batches" => batches as i64,
        },
        "crash_matrix" => jobj! {
            "kills" => offsets.len() as i64,
            "wal_extent_bytes" => extent as i64,
            "durable_boundary_bytes" => durable as i64,
            "acked_batches" => acked as i64,
            "lost_acked_batches" => 0,
            "full_image_replayed_batches" => full_replayed as i64,
            "recovery_p50_ms" => rec_p50,
            "recovery_p99_ms" => rec_p99,
            "replay_points_per_sec_p50" => pps_p50,
        },
        "tiering" => jobj! {
            "hot_days" => hot_days,
            "cold_days" => cold_days,
            "shards_tiered" => tier_report.shards_tiered as i64,
            "points_tiered" => tier_report.points_tiered as i64,
            "segment_bytes_written" => tier_report.segment_bytes_written as i64,
            "wal_segments_reclaimed" => tier_report.wal_segments_reclaimed as i64,
            "archive_modelled_hdd_secs" => archive_hdd,
            "archive_modelled_ssd_secs" => archive_ssd,
            "archive_slowdown" => archive_slowdown,
            "hot_modelled_secs" => hot_tiered,
            "tiered_recovery_ms" => tier_rec_ms,
        },
    };
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_recovery.json".into());
    std::fs::write(&out, doc.to_string_pretty() + "\n").unwrap();
    println!("wrote {out}");
}
