//! Fig. 19 — end-to-end response time with and without compression.
//! Paper: compression makes the overall response ≈2× faster even though
//! query-processing rises slightly (the compression work itself).

use monster_bench::{data_start, populated};
use monster_builder::{BuilderRequest, ExecMode};
use monster_collector::SchemaVersion;
use monster_compress::{compress, Level};
use monster_sim::{DiskModel, NetModel, VDuration};
use monster_tsdb::Aggregation;

/// Compression throughput on one builder-host core.
const COMPRESS_BYTES_PER_SEC: f64 = 180.0e6;

fn main() {
    eprintln!("populating 7 days (optimized schema, SSD)...");
    let m = populated(SchemaVersion::Optimized, DiskModel::SSD, 7, 60);
    let t0 = data_start();
    let amp = m.db().config().cost.amplification;
    let net = NetModel::CAMPUS;

    println!("FIG. 19 — RESPONSE TIME, UNCOMPRESSED vs COMPRESSED (campus consumer)\n");
    println!("{:>7} {:>14} {:>14} {:>9}", "hours", "plain (s)", "compressed (s)", "speedup");
    for h in [6i64, 24, 72, 168] {
        let req = BuilderRequest::new(t0, t0 + h * 3600, 300, Aggregation::Max).unwrap();
        let out = m.builder_query(&req, ExecMode::Concurrent { workers: 16 }).unwrap();
        let qp = out.query_processing_time();
        let json = out.document.to_string_compact();
        let packed = compress(json.as_bytes(), Level::default());
        let full_raw = (json.len() as f64 * amp) as u64;
        let full_packed = (packed.len() as f64 * amp) as u64;

        let t_plain = qp + net.transfer_cost(full_raw);
        let t_comp = qp
            + VDuration::from_secs_f64(full_raw as f64 / COMPRESS_BYTES_PER_SEC)
            + net.transfer_cost(full_packed);
        println!(
            "{:>7} {:>14.2} {:>14.2} {:>8.2}x",
            h,
            t_plain.as_secs_f64(),
            t_comp.as_secs_f64(),
            t_plain.as_secs_f64() / t_comp.as_secs_f64()
        );
    }
    println!("\npaper: ≈2x faster overall with compression on long ranges");
}
