//! Dashboard-storm benchmark: the serving layer (watermark-validity
//! result cache, request coalescing, cost-based admission) under an
//! open-loop fleet of dashboard subscribers. Writes machine-readable
//! `BENCH_serve.json` for cross-PR perf tracking.
//!
//! The workload is the paper's operational endgame: one Metrics Builder
//! serving the same handful of dashboard panels to an entire HPC
//! center. Every subscriber polls a panel on its own 30/45/60-second
//! refresh, so each 60-second tick delivers a storm of requests that
//! collapses onto ~22 unique URLs. Three things are measured:
//!
//! * **storage-scan reduction** — TSDB queries and points scanned by the
//!   cached + coalescing service vs a cache-off baseline serving the
//!   identical request stream. The baseline executes each unique URL
//!   once on a cache-off router and multiplies the per-URL counter
//!   deltas by that URL's request count (cache-off execution is
//!   deterministic per URL at fixed db state), so 100 000 subscribers
//!   are priced exactly without 100 000 executions.
//! * **byte identity** — every storm response is compared byte-for-byte
//!   against the cache-off execution of the same URL in the same tick.
//!   A validity bug (a cache entry surviving a write that changed its
//!   window) shows up as a mismatch, not a silent wrong dashboard.
//! * **admission** — a rogue tenant issues full-history queries whose
//!   modelled cost sits above the reject threshold; every one must come
//!   back `429` with a `Retry-After`, and none may poison the cache.
//!
//! Admission thresholds are derived from the seeded data at setup:
//! `cheap = 2x` the most expensive panel's modelled cost (panels always
//! admitted), `reject = 0.6x` the rogue query's modelled cost (rogue
//! always turned away) — the gap is asserted before the storm starts.
//!
//! Usage: `dashboard_storm [--quick]` — quick mode shrinks the fleet for
//! CI smoke runs; the committed `BENCH_serve.json` comes from a full run.

use monster_bench::storm::{
    catalog, modelled_secs, percentile, rfc3339, sample_batch, splitmix, subscriber, HISTORY_SECS,
    NODES, STORM_WORKERS, TICK_SECS,
};
use monster_builder::service::{router, ServiceConfig};
use monster_builder::{AdmissionConfig, BuilderRequest, ExecMode};
use monster_http::{Request, Status};
use monster_json::jobj;
use monster_tsdb::{Aggregation, Db, DbConfig};
use monster_util::pool::ThreadPool;
use monster_util::{EpochSecs, NodeId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

struct Workload {
    subscribers: usize,
    ticks: usize,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let wl = if quick {
        Workload { subscribers: 5_000, ticks: 2 }
    } else {
        Workload { subscribers: 100_000, ticks: 4 }
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let nodes = NodeId::enumerate(NODES, 4);
    let panels = catalog();

    // --- seed history -----------------------------------------------------
    // 15-minute shards: at a 10 s cadence that is the shard sizing a real
    // deployment would pick, and it lets the cost model see the
    // difference between a 30-minute panel and a full-history scan.
    let db = Arc::new(Db::new(DbConfig { shard_duration: 900, ..DbConfig::default() }));
    let ingest = Instant::now();
    let mut seeded = 0usize;
    for hour in 0..(HISTORY_SECS / 3600) {
        let batch = sample_batch(&nodes, hour * 3600, (hour + 1) * 3600);
        seeded += batch.len();
        db.write_batch(&batch).unwrap();
    }
    db.compact();
    let ingest_secs = ingest.elapsed().as_secs_f64();
    let mut now = HISTORY_SECS;

    // --- derive admission thresholds from the data ------------------------
    let panel_est =
        panels.iter().map(|p| modelled_secs(&db, &nodes, &p.request(now))).fold(0.0f64, f64::max);
    let rogue_req =
        BuilderRequest::new(EpochSecs::new(0), EpochSecs::new(now), 60, Aggregation::Mean).unwrap();
    let rogue_est = modelled_secs(&db, &nodes, &rogue_req);
    let cheap_secs = panel_est * 2.0;
    let reject_secs = rogue_est * 0.6;
    assert!(
        reject_secs > cheap_secs,
        "no admission headroom: panel max {panel_est:.4}s vs rogue {rogue_est:.4}s"
    );

    // --- the two services over ONE db -------------------------------------
    let storm_router = router(
        Arc::clone(&db),
        nodes.clone(),
        ServiceConfig {
            exec: ExecMode::Sequential,
            admission: AdmissionConfig { cheap_secs, reject_secs, ..AdmissionConfig::default() },
            ..ServiceConfig::default()
        },
    );
    let baseline_router = router(
        Arc::clone(&db),
        nodes.clone(),
        ServiceConfig {
            exec: ExecMode::Sequential,
            cache_entries: 0,
            coalesce: false,
            admission: AdmissionConfig { enabled: false, ..AdmissionConfig::default() },
            ..ServiceConfig::default()
        },
    );

    let q_counter = monster_obs::counter("monster_tsdb_queries_total");
    let p_counter = monster_obs::counter("monster_tsdb_query_points_total");
    let pool = ThreadPool::new(STORM_WORKERS);

    let mut baseline_queries = 0u64;
    let mut baseline_points = 0u64;
    let mut cached_queries = 0u64;
    let mut cached_points = 0u64;
    let mut total_requests = 0usize;
    let mut unique_urls = 0usize;
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut coalesced = 0usize;
    let mut mismatches = 0usize;
    let mut rogue_requests = 0usize;
    let mut rogue_rejected = 0usize;

    for tick in 0..wl.ticks {
        // New interval lands: writes that invalidate every open sliding
        // window but, under watermark validity, none of the closed ones.
        db.write_batch(&sample_batch(&nodes, now, now + TICK_SECS)).unwrap();
        now += TICK_SECS;

        // Who fires this tick, collapsed to URL -> request count.
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for id in 0..wl.subscribers as u64 {
            let sub = subscriber(id, panels.len());
            let n = sub.due((tick as i64) * TICK_SECS);
            if n > 0 {
                *counts.entry(sub.panel).or_insert(0) += n;
            }
        }
        let urls: Vec<(String, usize)> =
            counts.iter().map(|(&panel, &n)| (panels[panel].url(now), n)).collect();
        unique_urls += urls.len();

        // Cache-off baseline: execute each unique URL once, price the
        // whole storm by multiplying the per-URL scan deltas.
        let mut expected: Vec<monster_http::Body> = Vec::with_capacity(urls.len());
        for (url, n) in &urls {
            let (q0, p0) = (q_counter.get(), p_counter.get());
            let resp = baseline_router.dispatch(&Request::get(url));
            assert_eq!(resp.status, Status::OK, "baseline {url}");
            baseline_queries += (q_counter.get() - q0) * *n as u64;
            baseline_points += (p_counter.get() - p0) * *n as u64;
            expected.push(resp.body);
        }

        // The storm: every due request, dispatched concurrently against
        // the cached + coalescing router, interleaved across URLs.
        let mut jobs: Vec<usize> = Vec::new();
        for (i, (_, n)) in urls.iter().enumerate() {
            jobs.extend(std::iter::repeat_n(i, *n));
        }
        // Deterministic shuffle so requests for different URLs interleave
        // on the pool the way real subscribers would.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&k| splitmix(k as u64 ^ ((tick as u64) << 40)));
        let jobs: Vec<usize> = order.into_iter().map(|k| jobs[k]).collect();
        total_requests += jobs.len();

        let (q0, p0) = (q_counter.get(), p_counter.get());
        let outcomes = pool.scope_map(jobs, |i| {
            let (url, _) = &urls[i];
            let t = Instant::now();
            let resp = storm_router.dispatch(&Request::get(url));
            let us = t.elapsed().as_secs_f64() * 1e6;
            let cache = match resp.headers.get("X-Cache") {
                Some("hit") => 0u8,
                Some("miss") => 1,
                Some("coalesced") => 2,
                _ => 3,
            };
            let ok = resp.status == Status::OK && resp.body == expected[i];
            (us, cache, ok)
        });
        cached_queries += q_counter.get() - q0;
        cached_points += p_counter.get() - p0;
        for (us, cache, ok) in outcomes {
            latencies_us.push(us);
            match cache {
                0 => hits += 1,
                1 => misses += 1,
                2 => coalesced += 1,
                _ => {}
            }
            if !ok {
                mismatches += 1;
            }
        }

        // The rogue tenant asks for everything since the epoch; distinct
        // start offsets defeat the cache, so every request faces
        // admission — and every one is over the reject threshold.
        for i in 0..4i64 {
            let url = format!(
                "/v1/metrics?start={}&end={}&interval=1m&aggregation=mean",
                rfc3339(i),
                rfc3339(now)
            );
            let resp = storm_router.dispatch(&Request::get(&url).with_header("X-Tenant", "rogue"));
            rogue_requests += 1;
            if resp.status == Status::TOO_MANY_REQUESTS {
                assert!(resp.headers.get("Retry-After").is_some(), "429 without Retry-After");
                rogue_rejected += 1;
            }
        }
    }

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies_us, 0.50);
    let p99 = percentile(&latencies_us, 0.99);
    let query_reduction = baseline_queries as f64 / cached_queries.max(1) as f64;
    let point_reduction = baseline_points as f64 / cached_points.max(1) as f64;

    println!(
        "== dashboard storm ({cores} core(s), {} subscribers, {} panels, {} tick(s), \
         {seeded} seeded points, {ingest_secs:.1}s ingest) ==",
        wl.subscribers,
        panels.len(),
        wl.ticks
    );
    println!(
        "requests: {total_requests} over {unique_urls} unique URLs \
         ({hits} hits / {misses} misses / {coalesced} coalesced)"
    );
    println!(
        "storage scans: {cached_queries} queries / {cached_points} points cached \
         vs {baseline_queries} / {baseline_points} cache-off \
         ({query_reduction:.0}x / {point_reduction:.0}x reduction)"
    );
    println!("latency: p50 {p50:.0}us, p99 {p99:.0}us; body mismatches: {mismatches}");
    println!(
        "admission: {rogue_rejected}/{rogue_requests} rogue requests rejected \
         (cheap {cheap_secs:.3}s, reject {reject_secs:.3}s, rogue est {rogue_est:.3}s)"
    );

    let doc = jobj! {
        "bench" => "dashboard_storm",
        "quick" => quick,
        "cores" => cores as i64,
        "subscribers" => wl.subscribers as i64,
        "ticks" => wl.ticks as i64,
        "panels" => panels.len() as i64,
        "seeded_points" => seeded as i64,
        "requests" => jobj! {
            "total" => total_requests as i64,
            "unique_urls" => unique_urls as i64,
            "hits" => hits as i64,
            "misses" => misses as i64,
            "coalesced" => coalesced as i64,
            "body_mismatches" => mismatches as i64,
        },
        "storage_scans" => jobj! {
            "cached_queries" => cached_queries as i64,
            "cached_points" => cached_points as i64,
            "baseline_queries" => baseline_queries as i64,
            "baseline_points" => baseline_points as i64,
            "query_reduction" => query_reduction,
            "point_reduction" => point_reduction,
        },
        "latency" => jobj! {
            "p50_us" => p50,
            "p99_us" => p99,
        },
        "admission" => jobj! {
            "rogue_requests" => rogue_requests as i64,
            "rogue_rejected" => rogue_rejected as i64,
            "cheap_secs" => cheap_secs,
            "reject_secs" => reject_secs,
            "rogue_estimate_secs" => rogue_est,
        },
    };
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out, doc.to_string_pretty() + "\n").unwrap();
    println!("wrote {out}");

    // Acceptance bars, quick and full alike: the cache must absorb the
    // fan-out (>= 10x fewer storage scans than serving every request
    // cache-off), every body must match the cache-off execution exactly,
    // and the rogue tenant must be turned away with 429 + Retry-After.
    assert_eq!(mismatches, 0, "cached responses diverged from cache-off execution");
    assert!(query_reduction >= 10.0, "storage query reduction {query_reduction:.1}x < 10x");
    assert!(point_reduction >= 10.0, "storage point reduction {point_reduction:.1}x < 10x");
    assert_eq!(rogue_rejected, rogue_requests, "every over-budget rogue request must be rejected");
}
