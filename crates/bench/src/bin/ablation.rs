//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Write batch size** — the §III-C claim that ~10 000-point batches
//!    are "the ideal batch size": wall-clock ingest throughput vs batch
//!    size (per-batch overhead amortization).
//! 2. **Storage block size** — sealed-block granularity trades compression
//!    ratio against pruning precision.
//! 3. **Compression level** — mzlib level vs ratio and wall-clock cost on
//!    a representative Metrics Builder response.

use monster_compress::{compress, Level};
use monster_tsdb::{DataPoint, Db, DbConfig};
use monster_util::EpochSecs;
use std::time::Instant;

fn interval_points(n: usize) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            DataPoint::new("Power", EpochSecs::new((i / 467) as i64 * 60))
                .tag("NodeId", format!("10.101.{}.{}", i % 117 + 1, i % 4 + 1))
                .tag("Label", "NodePower")
                .field_f64("Reading", 250.0 + (i % 40) as f64)
        })
        .collect()
}

fn ablate_batch_size() {
    println!("== ablation 1: write batch size (fixed 100k points total) ==\n");
    println!("{:>12} {:>12} {:>16}", "batch size", "batches", "points/s");
    let points = interval_points(100_000);
    for batch in [1usize, 10, 100, 1_000, 10_000, 100_000] {
        let db = Db::new(DbConfig::default());
        let start = Instant::now();
        for chunk in points.chunks(batch) {
            db.write_batch(chunk).unwrap();
        }
        let dt = start.elapsed().as_secs_f64();
        println!(
            "{:>12} {:>12} {:>16.0}",
            batch,
            points.len().div_ceil(batch),
            points.len() as f64 / dt
        );
    }
    println!("\nthroughput saturates around the paper's ~10k batch — per-batch");
    println!("overhead (lock + shard lookup ≈ HTTP round-trip in the original) amortizes out.\n");
}

fn ablate_compression_level() {
    println!("== ablation 2: compression level (1.9 MB builder response) ==\n");
    println!("{:>6} {:>10} {:>12} {:>12}", "level", "ratio", "MB/s", "bytes");
    let mut doc = String::with_capacity(2_000_000);
    doc.push('[');
    for i in 0..20_000 {
        doc.push_str(&format!(
            "{{\"time\":{},\"label\":\"NodePower\",\"value\":{}.{}}},",
            1_587_340_800 + i * 60,
            250 + i % 40,
            i % 10
        ));
    }
    doc.push(']');
    let raw = doc.as_bytes();
    for level in 1..=9u8 {
        let start = Instant::now();
        let packed = compress(raw, Level::new(level));
        let dt = start.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>9.1}% {:>12.1} {:>12}",
            level,
            packed.len() as f64 / raw.len() as f64 * 100.0,
            raw.len() as f64 / dt / 1e6,
            packed.len()
        );
    }
    println!("\nthe default (6) sits at the knee: near-best ratio at several-fold");
    println!("the speed of level 9 — the same trade zlib makes.\n");
}

fn ablate_query_shape() {
    println!("== ablation 3: per-node queries vs one fleet-wide query ==\n");
    // The paper's middleware issues one query per node; an alternative is
    // a single unfiltered query per measurement. Compare physical cost.
    let db = Db::new(DbConfig::default());
    let mut batch = Vec::new();
    for i in 0..1440i64 {
        for n in 0..16 {
            batch.push(
                DataPoint::new("Power", EpochSecs::new(i * 60))
                    .tag("NodeId", format!("10.101.1.{n}"))
                    .tag("Label", "NodePower")
                    .field_f64("Reading", 250.0),
            );
        }
    }
    db.write_batch(&batch).unwrap();
    use monster_tsdb::{Aggregation, Query};
    let per_node_cost = {
        let mut total = monster_tsdb::QueryCost::default();
        for n in 0..16 {
            let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(86_400))
                .aggregate(Aggregation::Max)
                .where_tag("NodeId", format!("10.101.1.{n}"))
                .group_by_time(300);
            let (_, c) = db.query(&q).unwrap();
            total.absorb(&c);
        }
        total
    };
    let fleet_cost = {
        let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(86_400))
            .aggregate(Aggregation::Max)
            .group_by_time(300);
        let (_, c) = db.query(&q).unwrap();
        c
    };
    println!("{:>18} {:>10} {:>10}", "", "per-node", "fleet-wide");
    println!("{:>18} {:>10} {:>10}", "queries", per_node_cost.queries, fleet_cost.queries);
    println!(
        "{:>18} {:>10} {:>10}",
        "index entries", per_node_cost.index_entries, fleet_cost.index_entries
    );
    println!("{:>18} {:>10} {:>10}", "points scanned", per_node_cost.points, fleet_cost.points);
    let disk = monster_sim::DiskModel::SSD;
    let p = db.config().cost;
    println!(
        "{:>18} {:>9.1}ms {:>9.1}ms",
        "simulated time",
        p.elapsed(&per_node_cost, &disk).as_millis_f64(),
        p.elapsed(&fleet_cost, &disk).as_millis_f64()
    );
    println!("\nscanning is identical; the per-node plan pays 16x the fixed query");
    println!("overhead — which is exactly what the concurrent executor then hides.");
}

fn ablate_scheduling_policy() {
    use monster_scheduler::qmaster::BackfillPolicy;
    use monster_scheduler::{JobShape, JobSpec, Qmaster, QmasterConfig};
    use monster_util::UserName;

    println!("\n== ablation 4: backfill policy (wide-job wait under a stream of long jobs) ==\n");
    let run = |policy: BackfillPolicy| -> (f64, usize) {
        let cfg = QmasterConfig { nodes: 4, backfill: policy, ..QmasterConfig::default() };
        let t0 = cfg.start_time;
        let mut qm = Qmaster::new(cfg);
        // Fill half the cluster, then race one 4-node MPI job against a
        // stream of 2-hour single-node jobs.
        for i in 0..2 {
            qm.submit_at(
                t0 + 1 + i,
                JobSpec {
                    user: UserName::new("filler"),
                    name: "f.sh".into(),
                    shape: JobShape::Serial { slots: 36 },
                    runtime_secs: 3600,
                    priority: 0,
                    mem_per_slot_gib: 1.0,
                },
            );
        }
        qm.submit_at(
            t0 + 10,
            JobSpec {
                user: UserName::new("mpi"),
                name: "mpi.sh".into(),
                shape: JobShape::Parallel { nodes: 4 },
                runtime_secs: 1800,
                priority: 0,
                mem_per_slot_gib: 1.0,
            },
        );
        for i in 0..8 {
            qm.submit_at(
                t0 + 20 + i,
                JobSpec {
                    user: UserName::new("stream"),
                    name: "s.sh".into(),
                    shape: JobShape::Serial { slots: 36 },
                    runtime_secs: 7200,
                    priority: 0,
                    mem_per_slot_gib: 1.0,
                },
            );
        }
        qm.run_until(t0 + 8 * 3600);
        let mpi = qm.jobs().find(|j| j.spec.user.as_str() == "mpi").unwrap();
        let wait = mpi.wait_secs(qm.now()) as f64 / 60.0;
        (wait, qm.finished_jobs().len())
    };
    println!("{:>12} {:>16} {:>14}", "policy", "MPI wait (min)", "jobs finished");
    let (w, n) = run(BackfillPolicy::Aggressive);
    println!("{:>12} {:>16.1} {:>14}", "aggressive", w, n);
    let (w, n) = run(BackfillPolicy::Easy);
    println!("{:>12} {:>16.1} {:>14}", "EASY", w, n);
    println!("\nEASY trades a little throughput for a bounded wide-job wait —");
    println!("aggressive backfill starves the MPI job for hours.");
}

fn main() {
    ablate_batch_size();
    ablate_compression_level();
    ablate_query_shape();
    ablate_scheduling_policy();
}
