//! Table IV — network bandwidth consumed for transmission of accounting
//! information.
//!
//! Paper: 298.43 KB/s total, 0.32 KB/s per node, 0.38 KB/s per job for 467
//! nodes and an average of ~400 jobs on a 60 s interval. Here the payloads
//! are real (the accounting documents the simulated ARCo serves), so the
//! bandwidth numbers are measured, not assumed.

use monster_scheduler::accounting::bandwidth_report;
use monster_scheduler::{Qmaster, QmasterConfig, WorkloadConfig, WorkloadGenerator};

fn main() {
    // Quanah-sized cluster under a production-density workload, advanced
    // until the running-job census sits near the paper's ~400.
    let cfg = QmasterConfig::default();
    let t0 = cfg.start_time;
    let mut qm = Qmaster::new(cfg);
    let mut gen = WorkloadGenerator::new(WorkloadConfig {
        mpi_users: 6,
        array_users: 5,
        serial_users: 140,
        submissions_per_user_day: 24.0,
        seed: 2019,
    });
    gen.drive(&mut qm, t0, t0 + 24 * 3600);
    let mut t = t0;
    for _ in 0..(24 * 60) {
        t = t + 60;
        qm.run_until(t);
        let running = qm.running_jobs().len();
        if (350..=450).contains(&running) && t - t0 > 4 * 3600 {
            break;
        }
    }
    println!("(census at {}: {} running jobs)", qm.now(), qm.running_jobs().len());

    let bw = bandwidth_report(&qm, 60.0);
    println!("TABLE IV — NETWORK BANDWIDTH FOR ACCOUNTING TRANSMISSION\n");
    println!("nodes: {}   jobs (non-pending): {}\n", bw.nodes, bw.jobs);
    println!("| Monitoring BW | Monitoring BW/Node | Monitoring BW/Job |");
    println!("|---------------|--------------------|-------------------|");
    println!(
        "| {:>9.2} KB/s | {:>14.2} KB/s | {:>13.2} KB/s |",
        bw.total_kb_per_sec, bw.per_node_kb_per_sec, bw.per_job_kb_per_sec
    );
    println!("\npaper:  298.43 KB/s | 0.32 KB/s | 0.38 KB/s  (467 nodes, ~400 jobs)");

    let gige_effective = monster_sim::NetModel::GIGABIT_LAN.bandwidth / 1024.0; // KB/s
    println!(
        "\nshare of 1 GbE management link: {:.3}% — \"negligible\", as §IV-A concludes",
        bw.total_kb_per_sec / gige_effective * 100.0
    );
}
