//! Fig. 17 — query-processing time vs transmission time for a remote
//! consumer, uncompressed. Paper: for long ranges, transmission exceeds
//! query-processing by up to 1.65×.

use monster_bench::{data_start, populated};
use monster_builder::{BuilderRequest, ExecMode};
use monster_collector::SchemaVersion;
use monster_sim::{DiskModel, NetModel, VDuration};
use monster_tsdb::Aggregation;

fn main() {
    eprintln!("populating 7 days (optimized schema, SSD)...");
    let m = populated(SchemaVersion::Optimized, DiskModel::SSD, 7, 60);
    let t0 = data_start();
    let amp = m.db().config().cost.amplification;
    let net = NetModel::CAMPUS;

    println!("FIG. 17 — QUERY-PROCESSING vs TRANSMISSION (uncompressed, campus consumer)\n");
    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>8}",
        "hours", "query+proc (s)", "payload (MB)", "transmit (s)", "tx share"
    );
    for h in [6i64, 24, 72, 168] {
        let req = BuilderRequest::new(t0, t0 + h * 3600, 300, Aggregation::Max).unwrap();
        let out = m.builder_query(&req, ExecMode::Concurrent { workers: 16 }).unwrap();
        // Payload at full cluster scale: bytes grow linearly with nodes.
        let raw_bytes = out.document.to_string_compact().len();
        let full_bytes = (raw_bytes as f64 * amp) as u64;
        let qp = out.query_processing_time();
        let tx = net.transfer_cost(full_bytes);
        let share = tx.as_secs_f64() / (tx + qp).as_secs_f64() * 100.0;
        println!(
            "{:>7} {:>14.2} {:>14.1} {:>14.2} {:>7.1}%",
            h,
            qp.as_secs_f64(),
            full_bytes as f64 / 1e6,
            tx.as_secs_f64(),
            share
        );
        let _: VDuration = tx;
    }
    println!("\npaper: transmission grows past query time on long ranges (up to 1.65x longer)");
}
