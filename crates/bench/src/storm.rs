//! The dashboard-storm workload mix, shared between benches.
//!
//! `dashboard_storm` (serving-layer scan reduction + byte identity) and
//! `query_observe` (flight-recorder overhead + estimator accuracy) must
//! measure the **same** request mix or their numbers don't compose: the
//! recorder-overhead gate is only meaningful against the storm the
//! serving bench established as the operational baseline. This module
//! holds that mix: the panel catalog, the deterministic subscriber
//! fleet, the sample generator that seeds and advances the db, and the
//! shared math helpers.

use monster_builder::{build_plan, estimate_plan_cost, BuilderRequest};
use monster_tsdb::{Aggregation, DataPoint, Db};
use monster_util::{EpochSecs, NodeId};

/// Fleet size of the storm fixture (chassis slots of 4).
pub const NODES: usize = 4;
/// Seeded history before the storm starts.
pub const HISTORY_SECS: i64 = 4 * 3600;
/// Sample cadence, seed and live.
pub const CADENCE_SECS: i64 = 10;
/// One dashboard tick: writes land, then subscribers fire.
pub const TICK_SECS: i64 = 60;
/// Concurrent dispatchers in the storm pool.
pub const STORM_WORKERS: usize = 8;

/// One dashboard panel. Sliding panels end at the current tick (their
/// URL changes every tick, so subscribers of the same panel share one
/// cache entry per tick); fixed panels are closed historical windows
/// whose URL never changes — under watermark validity they stay cached
/// across every tick's writes.
#[derive(Clone, Copy)]
pub struct Panel {
    pub window_secs: i64,
    pub interval: &'static str,
    pub aggregation: &'static str,
    /// `None` → sliding (end = now); `Some(end)` → fixed historical.
    pub fixed_end: Option<i64>,
}

/// The 16-panel catalog: 12 sliding windows crossed over window size,
/// interval, and aggregation, plus 4 closed historical windows fully
/// inside the seeded history.
pub fn catalog() -> Vec<Panel> {
    let mut panels = Vec::new();
    for window_secs in [300, 900, 1800] {
        for interval in ["1m", "5m"] {
            for aggregation in ["max", "mean"] {
                panels.push(Panel { window_secs, interval, aggregation, fixed_end: None });
            }
        }
    }
    panels.push(Panel {
        window_secs: 1800,
        interval: "5m",
        aggregation: "max",
        fixed_end: Some(1800),
    });
    panels.push(Panel {
        window_secs: 1800,
        interval: "1m",
        aggregation: "mean",
        fixed_end: Some(3600),
    });
    panels.push(Panel {
        window_secs: 900,
        interval: "5m",
        aggregation: "max",
        fixed_end: Some(7200),
    });
    panels.push(Panel {
        window_secs: 1800,
        interval: "5m",
        aggregation: "mean",
        fixed_end: Some(10800),
    });
    panels
}

impl Panel {
    pub fn range(&self, now: i64) -> (i64, i64) {
        let end = self.fixed_end.unwrap_or(now);
        (end - self.window_secs, end)
    }

    pub fn url(&self, now: i64) -> String {
        let (start, end) = self.range(now);
        format!(
            "/v1/metrics?start={}&end={}&interval={}&aggregation={}",
            rfc3339(start),
            rfc3339(end),
            self.interval,
            self.aggregation
        )
    }

    pub fn request(&self, now: i64) -> BuilderRequest {
        let (start, end) = self.range(now);
        let agg = if self.aggregation == "max" { Aggregation::Max } else { Aggregation::Mean };
        let interval = if self.interval == "1m" { 60 } else { 300 };
        BuilderRequest::new(EpochSecs::new(start), EpochSecs::new(end), interval, agg).unwrap()
    }
}

/// `1970-01-01T..Z` for epoch seconds < 86 400.
pub fn rfc3339(ts: i64) -> String {
    format!("1970-01-01T{:02}:{:02}:{:02}Z", ts / 3600, (ts % 3600) / 60, ts % 60)
}

/// SplitMix64: all per-subscriber attributes derive from this, so the
/// fleet is deterministic without a rand dependency in the hot loop.
pub fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

pub struct Subscriber {
    pub panel: usize,
    pub refresh_secs: i64,
    pub phase: i64,
}

/// Derive subscriber `id`'s panel, refresh cadence, and phase.
pub fn subscriber(id: u64, panels: usize) -> Subscriber {
    let h = splitmix(id);
    // Square the unit hash to skew panel popularity: a few panels take
    // most of the fleet, the tail stays warm — the dashboard reality.
    let unit = (h % 10_000) as f64 / 10_000.0;
    let panel = ((unit * unit) * panels as f64) as usize;
    let refresh_secs = [30, 45, 60][(h >> 17) as usize % 3];
    Subscriber { panel: panel.min(panels - 1), refresh_secs, phase: (h >> 33) as i64 }
}

impl Subscriber {
    /// Open-loop arrivals: how many refreshes land in [t0, t0 + TICK).
    pub fn due(&self, t0: i64) -> usize {
        let fires = |t: i64| (t + self.phase % self.refresh_secs) / self.refresh_secs;
        (fires(t0 + TICK_SECS) - fires(t0)) as usize
    }
}

/// Power/Thermal×2/UGE samples for every node at the storm cadence over
/// `[from, to)` — the seed batch and the per-tick live batch alike.
pub fn sample_batch(nodes: &[NodeId], from: i64, to: i64) -> Vec<DataPoint> {
    let mut batch = Vec::new();
    let mut ts = from;
    while ts < to {
        for (i, n) in nodes.iter().enumerate() {
            let v = 250.0 + ((ts + i as i64 * 13) % 359) as f64 * 0.25;
            batch.push(
                DataPoint::new("Power", EpochSecs::new(ts))
                    .tag("NodeId", n.bmc_addr())
                    .tag("Label", "NodePower")
                    .field_f64("Reading", v),
            );
            for label in ["CPU1 Temp", "CPU2 Temp"] {
                batch.push(
                    DataPoint::new("Thermal", EpochSecs::new(ts))
                        .tag("NodeId", n.bmc_addr())
                        .tag("Label", label)
                        .field_f64("Reading", 40.0 + (v % 17.0)),
                );
            }
            batch.push(
                DataPoint::new("UGE", EpochSecs::new(ts))
                    .tag("NodeId", n.bmc_addr())
                    .field_f64("CPUUsage", v % 36.0)
                    .field_f64("MemUsed", v % 128.0),
            );
        }
        ts += CADENCE_SECS;
    }
    batch
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Modelled seconds for one URL's plan against the current db state.
pub fn modelled_secs(db: &Db, nodes: &[NodeId], req: &BuilderRequest) -> f64 {
    let plan = build_plan(monster_collector::SchemaVersion::Optimized, nodes, req);
    db.simulate_elapsed(&estimate_plan_cost(db, &plan)).as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_fleet_is_deterministic_and_skewed() {
        let panels = catalog().len();
        let a = subscriber(42, panels);
        let b = subscriber(42, panels);
        assert_eq!((a.panel, a.refresh_secs, a.phase), (b.panel, b.refresh_secs, b.phase));
        // Popularity skew: the bottom half of the panel index space takes
        // the clear majority of a 10k fleet.
        let low = (0..10_000u64).filter(|&id| subscriber(id, panels).panel < panels / 2).count();
        assert!(low > 6_000, "skew collapsed: {low}/10000 in the lower half");
        // Open-loop arrivals over an hour match the refresh cadence.
        let s = subscriber(7, panels);
        let fired: usize = (0..60).map(|t| s.due(t * TICK_SECS)).sum();
        assert_eq!(fired as i64, 3600 / s.refresh_secs);
    }

    #[test]
    fn sample_batch_covers_every_series() {
        let nodes = NodeId::enumerate(2, 4);
        let batch = sample_batch(&nodes, 0, TICK_SECS);
        // Per node per cadence step: Power + 2×Thermal + UGE.
        assert_eq!(batch.len(), nodes.len() * (TICK_SECS / CADENCE_SECS) as usize * 4);
    }
}
