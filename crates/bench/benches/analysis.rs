//! Wall-clock benchmarks for the analysis layer.

use criterion::{criterion_group, criterion_main, Criterion};
use monster_analysis::kmeans::{KMeans, KMeansConfig};
use monster_analysis::radar::{fleet_normalized, RadarProfile};
use monster_sim::SimRng;

fn fleet(n: usize) -> Vec<Vec<f64>> {
    let mut rng = SimRng::derive(3, "bench-fleet");
    (0..n)
        .map(|_| {
            let load = rng.uniform01();
            vec![
                36.0 + 48.0 * load + rng.normal(0.0, 1.0),
                36.0 + 48.0 * load + rng.normal(0.0, 1.0),
                rng.uniform(17.0, 23.0),
                4200.0 + 9000.0 * load,
                4200.0 + 9000.0 * load,
                4200.0 + 9000.0 * load,
                4200.0 + 9000.0 * load,
                118.0 + 270.0 * load,
                load,
            ]
        })
        .collect()
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(20);
    let data = fleet(467);
    g.bench_function("kmeans_k7_467_nodes", |b| {
        b.iter(|| KMeans::fit(&data, &KMeansConfig::default()))
    });
    let km = KMeans::fit(&data, &KMeansConfig::default());
    g.bench_function("kmeans_predict", |b| b.iter(|| km.predict(&data[13])));
    let raw: Vec<[f64; 9]> = data
        .iter()
        .map(|r| {
            let mut a = [0.0; 9];
            a.copy_from_slice(r);
            a
        })
        .collect();
    g.bench_function("fleet_normalize_467", |b| b.iter(|| fleet_normalized(&raw)));
    g.bench_function("radar_profile_build", |b| b.iter(|| RadarProfile::new("1-31", raw[0])));
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
