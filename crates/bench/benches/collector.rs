//! Wall-clock benchmarks for the collection pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use monster_collector::schema::{bmc_points, uge_points};
use monster_collector::{Collector, CollectorConfig, SchemaVersion};
use monster_redfish::bmc::BmcConfig;
use monster_redfish::cluster::{ClusterConfig, SimulatedCluster};
use monster_redfish::NodeReading;
use monster_scheduler::host::LoadReport;
use monster_scheduler::{Qmaster, QmasterConfig};
use monster_util::{EpochSecs, JobId, NodeId};

fn bench_collector(c: &mut Criterion) {
    let mut g = c.benchmark_group("collector");
    g.sample_size(15);

    let reading = NodeReading::Thermal {
        cpu_temps: vec![54.2, 55.9],
        inlet: 21.0,
        fans: vec![4400.0, 4410.0, 4390.0, 4420.0],
    };
    let node = NodeId::new(1, 1);
    let t = EpochSecs::new(1_587_340_800);
    g.bench_function("schema_points_optimized", |b| {
        b.iter(|| bmc_points(SchemaVersion::Optimized, node, &reading, t))
    });
    g.bench_function("schema_points_previous", |b| {
        b.iter(|| bmc_points(SchemaVersion::Previous, node, &reading, t))
    });
    let report = LoadReport {
        node,
        cpu_usage: 0.5,
        mem_total_gib: 192.0,
        mem_used_gib: 96.0,
        swap_total_gib: 4.0,
        swap_used_gib: 0.0,
        job_list: vec![JobId(1_291_784), JobId(1_318_962)],
    };
    g.bench_function("uge_points_optimized", |b| {
        b.iter(|| uge_points(SchemaVersion::Optimized, &report, t))
    });

    // A full 64-node interval through the wire layer.
    let cluster = SimulatedCluster::new(ClusterConfig {
        nodes: 64,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..ClusterConfig::small(64, 5)
    });
    let qm = Qmaster::new(QmasterConfig { nodes: 64, ..QmasterConfig::default() });
    g.bench_function("collect_interval_64_nodes", |b| {
        let mut col = Collector::new(CollectorConfig::default());
        b.iter(|| col.collect_interval(&cluster, &qm, EpochSecs::new(1_587_340_860)))
    });
    g.finish();
}

criterion_group!(benches, bench_collector);
criterion_main!(benches);
