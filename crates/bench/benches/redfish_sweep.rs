//! Wall-clock benchmarks for the Redfish substrate: payload construction,
//! parsing, and full-fleet sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use monster_redfish::bmc::BmcConfig;
use monster_redfish::cluster::{ClusterConfig, SimulatedCluster};
use monster_redfish::{Category, RedfishClient};
use monster_sim::SimRng;

fn bench_redfish(c: &mut Criterion) {
    let mut g = c.benchmark_group("redfish");
    g.sample_size(15);

    let mut rng = SimRng::derive(1, "bench-sensors");
    let sensors = monster_redfish::sensors::NodeSensors::new(&mut rng);
    let node = monster_util::NodeId::new(1, 1);
    g.bench_function("thermal_payload_build", |b| {
        b.iter(|| monster_redfish::model::payload(Category::Thermal, node, &sensors))
    });
    let payload = monster_redfish::model::payload(Category::Thermal, node, &sensors);
    g.bench_function("thermal_payload_parse", |b| {
        b.iter(|| monster_redfish::model::parse_reading(Category::Thermal, &payload).unwrap())
    });

    let cluster = SimulatedCluster::new(ClusterConfig {
        nodes: 467,
        bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
        ..ClusterConfig::default()
    });
    let client = RedfishClient::default();
    g.bench_function("full_sweep_467_nodes", |b| b.iter(|| client.sweep(&cluster)));
    g.bench_function("cluster_step_467_nodes", |b| b.iter(|| cluster.step(60.0, |_| 0.5)));
    g.finish();
}

criterion_group!(benches, bench_redfish);
criterion_main!(benches);
