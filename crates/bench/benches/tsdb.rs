//! Wall-clock benchmarks for the TSDB: codecs, ingest, query.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use monster_tsdb::query::Aggregation;
use monster_tsdb::{DataPoint, Db, DbConfig, Query};
use monster_util::EpochSecs;

fn batch(nodes: usize, samples: i64) -> Vec<DataPoint> {
    let mut out = Vec::new();
    for i in 0..samples {
        for n in 0..nodes {
            out.push(
                DataPoint::new("Power", EpochSecs::new(i * 60))
                    .tag("NodeId", format!("10.101.1.{n}"))
                    .tag("Label", "NodePower")
                    .field_f64("Reading", 250.0 + (i % 40) as f64 * 1.3),
            );
        }
    }
    out
}

/// Encode/decode throughput of all five column codecs over one sealed
/// block's worth of realistic data (4096 elements).
fn bench_codecs(c: &mut Criterion) {
    const N: usize = 4096;
    let mut g = c.benchmark_group("tsdb/codecs");
    g.throughput(Throughput::Elements(N as u64));

    let ts: Vec<i64> = (0..N as i64).map(|i| 1_583_792_296 + i * 60).collect();
    g.bench_function("timestamps_encode", |b| {
        b.iter(|| monster_tsdb::encode::timestamps::encode(&ts))
    });
    let enc = monster_tsdb::encode::timestamps::encode(&ts);
    g.bench_function("timestamps_decode", |b| {
        b.iter(|| monster_tsdb::encode::timestamps::decode(&enc, ts.len()).unwrap())
    });

    let vals: Vec<f64> = (0..N).map(|i| 273.8 + (i % 60) as f64 * 0.1).collect();
    g.bench_function("floats_encode", |b| b.iter(|| monster_tsdb::encode::floats::encode(&vals)));
    let fenc = monster_tsdb::encode::floats::encode(&vals);
    g.bench_function("floats_decode", |b| {
        b.iter(|| monster_tsdb::encode::floats::decode(&fenc, vals.len()).unwrap())
    });

    // Slowly-drifting counters (sequence numbers, memory gauges).
    let ints: Vec<i64> = (0..N as i64).map(|i| 1_000_000 + i * 7 - (i % 5) * 3).collect();
    g.bench_function("ints_encode", |b| b.iter(|| monster_tsdb::encode::ints::encode(&ints)));
    let ienc = monster_tsdb::encode::ints::encode(&ints);
    g.bench_function("ints_decode", |b| {
        b.iter(|| monster_tsdb::encode::ints::decode(&ienc, ints.len()).unwrap())
    });

    // Mostly-healthy flags with occasional flips.
    let bools: Vec<bool> = (0..N).map(|i| i % 97 == 0).collect();
    g.bench_function("bools_encode", |b| b.iter(|| monster_tsdb::encode::bools::encode(&bools)));
    let benc = monster_tsdb::encode::bools::encode(&bools);
    g.bench_function("bools_decode", |b| {
        b.iter(|| monster_tsdb::encode::bools::decode(&benc, bools.len()).unwrap())
    });

    // Job lists cycling through a small vocabulary (dictionary-friendly).
    let strings: Vec<String> =
        (0..N).map(|i| format!("['131{}', '1318962', '1318307']", i % 23)).collect();
    g.bench_function("strings_encode", |b| {
        b.iter(|| monster_tsdb::encode::strings::encode(&strings))
    });
    let senc = monster_tsdb::encode::strings::encode(&strings);
    g.bench_function("strings_decode", |b| {
        b.iter(|| monster_tsdb::encode::strings::decode(&senc, strings.len()).unwrap())
    });
    g.finish();
}

/// Whole-block array decoding (`decode_into` into a reused buffer — the
/// path query scans and snapshot restore now ride) versus the streaming
/// point-at-a-time `iter()` reference decoder, for all five codecs over
/// one sealed block's worth of data. The spread between the two is the
/// vectorization win the batch-staging rework banks on.
fn bench_batch_codecs(c: &mut Criterion) {
    const N: usize = 4096;
    let mut g = c.benchmark_group("tsdb/batch_codecs");
    g.throughput(Throughput::Elements(N as u64));

    let ts: Vec<i64> = (0..N as i64).map(|i| 1_583_792_296 + i * 60).collect();
    let tenc = monster_tsdb::encode::timestamps::encode(&ts);
    let mut tbuf: Vec<i64> = Vec::new();
    g.bench_function("timestamps_array", |b| {
        b.iter(|| monster_tsdb::encode::timestamps::decode_into(&tenc, N, &mut tbuf).unwrap())
    });
    g.bench_function("timestamps_iter", |b| {
        b.iter(|| monster_tsdb::encode::timestamps::iter(&tenc, N).map(|r| r.unwrap()).sum::<i64>())
    });

    let vals: Vec<f64> = (0..N).map(|i| 273.8 + (i % 60) as f64 * 0.1).collect();
    let fenc = monster_tsdb::encode::floats::encode(&vals);
    let mut fbuf: Vec<f64> = Vec::new();
    g.bench_function("floats_array", |b| {
        b.iter(|| monster_tsdb::encode::floats::decode_into(&fenc, N, &mut fbuf).unwrap())
    });
    g.bench_function("floats_iter", |b| {
        b.iter(|| monster_tsdb::encode::floats::iter(&fenc, N).map(|r| r.unwrap()).sum::<f64>())
    });

    let ints: Vec<i64> = (0..N as i64).map(|i| 1_000_000 + i * 7 - (i % 5) * 3).collect();
    let ienc = monster_tsdb::encode::ints::encode(&ints);
    let mut ibuf: Vec<i64> = Vec::new();
    g.bench_function("ints_array", |b| {
        b.iter(|| monster_tsdb::encode::ints::decode_into(&ienc, N, &mut ibuf).unwrap())
    });
    g.bench_function("ints_iter", |b| {
        b.iter(|| monster_tsdb::encode::ints::iter(&ienc, N).map(|r| r.unwrap()).sum::<i64>())
    });

    let bools: Vec<bool> = (0..N).map(|i| i % 97 == 0).collect();
    let benc = monster_tsdb::encode::bools::encode(&bools);
    let mut bbuf: Vec<bool> = Vec::new();
    g.bench_function("bools_array", |b| {
        b.iter(|| monster_tsdb::encode::bools::decode_into(&benc, N, &mut bbuf).unwrap())
    });
    g.bench_function("bools_iter", |b| {
        b.iter(|| {
            monster_tsdb::encode::bools::iter(&benc, N).filter(|r| *r.as_ref().unwrap()).count()
        })
    });

    let strings: Vec<String> =
        (0..N).map(|i| format!("['131{}', '1318962', '1318307']", i % 23)).collect();
    let senc = monster_tsdb::encode::strings::encode(&strings);
    let mut sbuf: Vec<String> = Vec::new();
    g.bench_function("strings_array", |b| {
        b.iter(|| monster_tsdb::encode::strings::decode_into(&senc, N, &mut sbuf).unwrap())
    });
    g.bench_function("strings_iter", |b| {
        b.iter(|| {
            monster_tsdb::encode::strings::iter(&senc, N).map(|r| r.unwrap().len()).sum::<usize>()
        })
    });
    g.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsdb/ingest");
    g.sample_size(20);
    let points = batch(16, 600); // 9600 points ≈ one collection interval
    g.throughput(Throughput::Elements(points.len() as u64));
    g.bench_function("write_batch_10k", |b| {
        b.iter_batched(
            || (Db::new(DbConfig::default()), points.clone()),
            |(db, pts)| db.write_batch(&pts).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("stage_batch_10k", |b| {
        b.iter_batched(
            || (Db::new(DbConfig::default()), points.clone()),
            |(db, pts)| {
                let mut stager = db.stager();
                stager.stage_batch(&pts).unwrap();
                stager.flush().unwrap();
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Ingest under write contention: 4 threads writing disjoint days (their
/// own shards) versus 4 threads forced through one global write lock —
/// the shape of the engine before per-shard locking. The `contention`
/// binary records the canonical numbers in `BENCH_tsdb.json`; this group
/// keeps the comparison visible in routine criterion runs.
fn bench_contention(c: &mut Criterion) {
    use std::sync::{Arc, RwLock};

    let mut g = c.benchmark_group("tsdb/contention");
    g.sample_size(10);
    const WRITERS: usize = 4;
    let per_writer: Vec<Vec<Vec<DataPoint>>> = (0..WRITERS)
        .map(|w| {
            (0..8)
                .map(|b| {
                    (0..500)
                        .map(|i| {
                            let k = b * 500 + i;
                            DataPoint::new(
                                "Power",
                                EpochSecs::new(w as i64 * 86_400 + k as i64 * 20),
                            )
                            .tag("NodeId", format!("10.101.1.{}", k % 16))
                            .tag("Label", "NodePower")
                            .field_f64("Reading", 250.0 + (k % 40) as f64)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let points: usize = per_writer.iter().flatten().map(Vec::len).sum();
    g.throughput(Throughput::Elements(points as u64));

    let run = |global: bool, batches: &[Vec<Vec<DataPoint>>]| {
        let db = Arc::new(Db::new(DbConfig::default()));
        let big_lock = Arc::new(RwLock::new(()));
        std::thread::scope(|s| {
            for writer in batches {
                let db = Arc::clone(&db);
                let big_lock = Arc::clone(&big_lock);
                s.spawn(move || {
                    for b in writer {
                        let _g = global.then(|| big_lock.write().unwrap());
                        db.write_batch(b).unwrap();
                    }
                });
            }
        });
        db
    };
    g.bench_function("4_writers_sharded", |b| b.iter(|| run(false, &per_writer)));
    g.bench_function("4_writers_global_lock", |b| b.iter(|| run(true, &per_writer)));
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsdb/query");
    g.sample_size(30);
    let db = Db::new(DbConfig::default());
    db.write_batch(&batch(16, 1440)).unwrap(); // one day
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(86_400))
        .aggregate(Aggregation::Max)
        .where_tag("NodeId", "10.101.1.1")
        .group_by_time(300);
    g.bench_function("aggregate_one_node_day", |b| b.iter(|| db.query(&q).unwrap()));
    let q_all = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(86_400))
        .aggregate(Aggregation::Mean)
        .group_by_time(300);
    g.bench_function("aggregate_fleet_day", |b| b.iter(|| db.query(&q_all).unwrap()));
    g.bench_function("parse_query_string", |b| {
        b.iter(|| {
            monster_tsdb::query::parse_query(
                "SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
                 Label='NodePower' AND time >= '2020-04-20T12:00:00Z' AND \
                 time < '2020-04-21T12:00:00Z' GROUP BY time(5m)",
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codecs,
    bench_batch_codecs,
    bench_ingest,
    bench_contention,
    bench_query
);
criterion_main!(benches);
