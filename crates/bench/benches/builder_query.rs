//! Wall-clock benchmarks for the Metrics Builder pipeline: plan building,
//! sequential vs concurrent execution, response encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use monster_builder::{build_plan, exec::execute, BuilderRequest, ExecMode};
use monster_collector::SchemaVersion;
use monster_sim::NetModel;
use monster_tsdb::{Aggregation, DataPoint, Db, DbConfig};
use monster_util::{EpochSecs, NodeId};
use std::sync::Arc;

fn seeded(nodes: usize, hours: i64) -> (Arc<Db>, Vec<NodeId>) {
    let db = Db::new(DbConfig::default());
    let ids = NodeId::enumerate(nodes, 4);
    let mut batch = Vec::new();
    for i in 0..(hours * 60) {
        for &n in &ids {
            batch.push(
                DataPoint::new("Power", EpochSecs::new(i * 60))
                    .tag("NodeId", n.bmc_addr())
                    .tag("Label", "NodePower")
                    .field_f64("Reading", 250.0 + (i % 31) as f64),
            );
            batch.push(
                DataPoint::new("UGE", EpochSecs::new(i * 60))
                    .tag("NodeId", n.bmc_addr())
                    .field_f64("CPUUsage", (i % 10) as f64 / 10.0)
                    .field_f64("MemUsed", 90.0),
            );
        }
    }
    db.write_batch(&batch).unwrap();
    (Arc::new(db), ids)
}

fn bench_builder(c: &mut Criterion) {
    let mut g = c.benchmark_group("builder");
    g.sample_size(15);
    let (db, ids) = seeded(16, 24);
    let t0 = EpochSecs::new(0);
    let req = BuilderRequest::new(t0, t0 + 86_400, 300, Aggregation::Max).unwrap();

    g.bench_function("build_plan_16_nodes", |b| {
        b.iter(|| build_plan(SchemaVersion::Optimized, &ids, &req))
    });
    let plan = build_plan(SchemaVersion::Optimized, &ids, &req);
    g.bench_function("execute_sequential", |b| {
        b.iter(|| execute(&db, &plan, ExecMode::Sequential).unwrap())
    });
    g.bench_function("execute_concurrent_8", |b| {
        b.iter(|| execute(&db, &plan, ExecMode::Concurrent { workers: 8 }).unwrap())
    });
    let outcome = execute(&db, &plan, ExecMode::Sequential).unwrap();
    g.bench_function("encode_response_compressed", |b| {
        b.iter(|| {
            monster_builder::encode_response(
                &outcome,
                true,
                monster_compress::Level::default(),
                &NetModel::CAMPUS,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_builder);
criterion_main!(benches);
