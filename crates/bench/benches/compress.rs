//! Wall-clock benchmarks for the mzlib codec on representative payloads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use monster_compress::{adler32, compress, decompress, Level};

fn builder_json(points: usize) -> Vec<u8> {
    let mut doc = String::from("{\"10.101.1.1\":{\"power\":[");
    for i in 0..points {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&format!(
            "{{\"time\":{},\"label\":\"NodePower\",\"value\":{}.{}}}",
            1_587_340_800 + i * 300,
            250 + i % 40,
            i % 10
        ));
    }
    doc.push_str("]}}");
    doc.into_bytes()
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("compress");
    g.sample_size(20);
    let payload = builder_json(4096);
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for level in [Level::FAST, Level::default(), Level::BEST] {
        g.bench_function(format!("compress_level{}", level.get()), |b| {
            b.iter(|| compress(&payload, level))
        });
    }
    let packed = compress(&payload, Level::default());
    g.bench_function("decompress", |b| b.iter(|| decompress(&packed).unwrap()));
    g.bench_function("adler32", |b| b.iter(|| adler32(&payload)));
    g.finish();
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
