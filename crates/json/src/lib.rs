//! `monster-json` — a self-contained JSON implementation.
//!
//! MonSTer's public surfaces are JSON over HTTP: the Redfish resource tree,
//! the Metrics Builder API responses, and the stored job metadata all use
//! JSON documents. The workspace policy allows only a small set of external
//! crates (no `serde_json`), so this crate provides the JSON [`Value`]
//! model, a recursive-descent [`parse`](parse()), and compact/pretty
//! serializers.
//!
//! Design notes:
//! * Object member order is **preserved** (insertion order) — Redfish
//!   payloads and the paper's sample data points are reproduced verbatim in
//!   docs and goldens, so deterministic ordering matters.
//! * Numbers are stored as `f64` with an integer fast path on
//!   serialization; this matches what InfluxDB's JSON results carry.

#![warn(missing_docs)]

mod object;
mod parse;
mod ser;
mod value;

pub use object::Object;
pub use parse::parse;
pub use value::Value;

/// Build an object [`Value`] literal concisely in tests and examples.
///
/// ```
/// use monster_json::{jobj, Value};
/// let v = jobj! {
///     "measurement" => "Power",
///     "reading" => 273.8,
/// };
/// assert_eq!(v.get("measurement").unwrap().as_str(), Some("Power"));
/// ```
#[macro_export]
macro_rules! jobj {
    { $($k:expr => $v:expr),* $(,)? } => {{
        #[allow(unused_mut)]
        let mut obj = $crate::Object::new();
        $( obj.insert($k, $crate::Value::from($v)); )*
        $crate::Value::Object(obj)
    }};
}

/// Build a JSON array [`Value`] from a list of convertible expressions.
#[macro_export]
macro_rules! jarr {
    [ $($v:expr),* $(,)? ] => {
        $crate::Value::Array(vec![ $( $crate::Value::from($v) ),* ])
    };
}
