//! The JSON value model.

use crate::Object;

/// Any JSON value.
///
/// Numbers keep their source distinction between integers and floats:
/// MonSTer's schema optimization (§III-B3 of the paper) stores state codes
/// and epoch times as integers, and the volume accounting in Fig. 13 depends
/// on integers serializing without a fractional part.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without decimal point).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with preserved member order.
    Object(Object),
}

impl Value {
    /// `Some(bool)` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(i64)` if this is an integer, or a float with an exact integer
    /// value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// `Some(f64)` for any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// `Some(&str)` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(&[Value])` if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some(&Object)` if this is an object.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutable object access.
    pub fn as_object_mut(&mut self) -> Option<&mut Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }

    /// Array element lookup; `None` for non-arrays or out of range.
    pub fn at(&self, idx: usize) -> Option<&Value> {
        self.as_array()?.get(idx)
    }

    /// Follow a `/`-separated path of object keys and array indices,
    /// mirroring how Redfish clients address nested resources.
    ///
    /// ```
    /// use monster_json::parse;
    /// let v = parse(r#"{"Fans": [{"Reading": 4440}]}"#).unwrap();
    /// assert_eq!(v.pointer("Fans/0/Reading").unwrap().as_i64(), Some(4440));
    /// ```
    pub fn pointer(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            cur = match cur {
                Value::Object(o) => o.get(seg)?,
                Value::Array(a) => a.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        crate::ser::to_string(self, false)
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        crate::ser::to_string(self, true)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Object> for Value {
    fn from(o: Object) -> Self {
        Value::Object(o)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobj;

    #[test]
    fn accessors_discriminate_types() {
        assert_eq!(Value::Int(5).as_i64(), Some(5));
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Float(2.5).as_i64(), None);
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn pointer_walks_nested_structure() {
        let v = jobj! {
            "a" => jobj! { "b" => Value::Array(vec![Value::Int(1), Value::Int(2)]) },
        };
        assert_eq!(v.pointer("a/b/1").unwrap().as_i64(), Some(2));
        assert_eq!(v.pointer("a/b/7"), None);
        assert_eq!(v.pointer("a/z"), None);
        assert_eq!(v.pointer(""), Some(&v));
    }

    #[test]
    fn from_impls_cover_common_types() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u64), Value::Int(3));
        assert_eq!(Value::from(vec![1i64, 2]), jarr());
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(7i64)), Value::Int(7));
        fn jarr() -> Value {
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        }
    }
}
