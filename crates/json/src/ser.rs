//! JSON serialization: compact and pretty writers.

use crate::Value;

/// Serialize `v`; `pretty` selects two-space indentation.
pub fn to_string(v: &Value, pretty: bool) -> String {
    let mut out = String::with_capacity(128);
    write_value(&mut out, v, pretty, 0);
    out
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(out, indent + 1);
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                newline_indent(out, indent);
            }
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(out, indent + 1);
                }
                write_string(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, indent + 1);
            }
            if pretty {
                newline_indent(out, indent);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Floats serialize via Rust's shortest round-trip formatting; non-finite
/// values (not representable in JSON) degrade to `null`, matching what
/// InfluxDB's HTTP layer does.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // `{}` prints integral floats without a dot ("3"); keep the float type
    // distinguishable on re-parse.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::{jobj, parse, Value};

    #[test]
    fn compact_matches_expected_layout() {
        let v = jobj! {
            "time" => 1_583_792_296i64,
            "fields" => jobj! { "Reading" => 273.8 },
        };
        assert_eq!(v.to_string_compact(), r#"{"time":1583792296,"fields":{"Reading":273.8}}"#);
    }

    #[test]
    fn pretty_indents() {
        let v = jobj! { "a" => Value::Array(vec![Value::Int(1)]) };
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn integral_float_keeps_type_on_round_trip() {
        let v = Value::Float(3.0);
        let s = v.to_string_compact();
        assert_eq!(s, "3.0");
        assert_eq!(parse(&s).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("a\"b\\c\nd\u{0001}".into());
        assert_eq!(v.to_string_compact(), r#""a\"b\\c\nd\u0001""#);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(jobj! {}.to_string_compact(), "{}");
        assert_eq!(Value::Array(vec![]).to_string_compact(), "[]");
        assert_eq!(jobj! {}.to_string_pretty(), "{}");
    }

    #[test]
    fn round_trips_nested_document() {
        let v = jobj! {
            "nodes" => Value::Array(vec![
                jobj! { "id" => "10.101.1.1", "power" => 273.8, "ok" => true },
                jobj! { "id" => "10.101.1.2", "power" => Value::Null },
            ]),
            "count" => 2i64,
        };
        for s in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&s).unwrap(), v);
        }
    }
}
