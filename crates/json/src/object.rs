//! Insertion-ordered JSON object.

use crate::Value;

/// A JSON object that preserves member insertion order.
///
/// Backed by a `Vec` of pairs plus linear search: MonSTer's documents are
/// small (a Redfish Thermal payload has a few dozen members), so a vector
/// beats a hash map on both memory and iteration determinism.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Object {
    members: Vec<(String, Value)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object { members: Vec::new() }
    }

    /// An empty object with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Object { members: Vec::with_capacity(cap) }
    }

    /// Insert or replace a member. Replacement keeps the member's original
    /// position (JSON objects are keyed, not multisets).
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.members.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.members.push((key, value));
        }
    }

    /// Look a member up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.members.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Remove a member, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.members.iter().position(|(k, _)| k == key)?;
        Some(self.members.remove(idx).1)
    }

    /// Whether a member with this key exists.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the object has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterate members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.members.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.members.iter().map(|(k, _)| k.as_str())
    }
}

impl FromIterator<(String, Value)> for Object {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut obj = Object::new();
        for (k, v) in iter {
            obj.insert(k, v);
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_insertion_order() {
        let mut o = Object::new();
        o.insert("z", 1i64);
        o.insert("a", 2i64);
        o.insert("m", 3i64);
        let keys: Vec<_> = o.keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn insert_replaces_in_place() {
        let mut o = Object::new();
        o.insert("a", 1i64);
        o.insert("b", 2i64);
        o.insert("a", 10i64);
        assert_eq!(o.len(), 2);
        assert_eq!(o.get("a").unwrap().as_i64(), Some(10));
        assert_eq!(o.keys().next(), Some("a"));
    }

    #[test]
    fn remove_and_contains() {
        let mut o = Object::new();
        o.insert("a", 1i64);
        assert!(o.contains_key("a"));
        assert_eq!(o.remove("a").unwrap().as_i64(), Some(1));
        assert!(!o.contains_key("a"));
        assert!(o.remove("a").is_none());
        assert!(o.is_empty());
    }
}
