//! Recursive-descent JSON parser (RFC 8259).

use crate::{Object, Value};
use monster_util::{Error, Result};

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting limit: deep enough for any Redfish payload, shallow enough to
/// keep malicious inputs from blowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::parse(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected literal {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut obj = Object::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(obj));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            obj.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
        self.depth -= 1;
        Ok(Value::Object(obj))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(arr));
        }
        loop {
            self.skip_ws();
            arr.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
        self.depth -= 1;
        Ok(Value::Array(arr))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Handle UTF-16 surrogate pairs.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"))?,
                            );
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?);
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the full sequence through.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 lead byte")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d =
                (b as char).to_digit(16).ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.peek() == Some(b'0') {
            self.pos += 1;
            // Leading zeros are not allowed: "01" is invalid JSON.
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("leading zero in number"));
            }
        } else {
            let mut any = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                any = true;
            }
            if !any {
                return Err(self.err("expected digits"));
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let mut any = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                any = true;
            }
            if !any {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut any = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                any = true;
            }
            if !any {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            // Integer overflow: fall back to float like most parsers do.
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("273.8").unwrap(), Value::Float(273.8));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("-2.5E-2").unwrap(), Value::Float(-0.025));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_paper_fig4_sample() {
        // The Fig. 4 sample data point from the paper.
        let doc = r#"{
            "time": 1583792296,
            "measurement": "Power",
            "tags": {"NodeId": "10.101.1.1", "Label": "NodePower"},
            "fields": {"Reading": 273.8}
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.pointer("time").unwrap().as_i64(), Some(1_583_792_296));
        assert_eq!(v.pointer("tags/NodeId").unwrap().as_str(), Some("10.101.1.1"));
        assert_eq!(v.pointer("fields/Reading").unwrap().as_f64(), Some(273.8));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(parse(r#""a\"b\\c\/d\n\tA""#).unwrap(), Value::Str("a\"b\\c/d\n\tA".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            ".5",
            "1e",
            "+1",
            "\"\\x\"",
            "\"unterminated",
            "tru",
            "nul",
            "[1]]",
            "{\"a\":1}extra",
            "\"\\ud800\"",
            "\"\\udc00\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integer_overflow_degrades_to_float() {
        let v = parse("99999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn whitespace_tolerated_everywhere() {
        let v = parse(" \t\n { \"a\" : [ 1 , 2 ] } \r\n ").unwrap();
        assert_eq!(v.pointer("a/0").unwrap().as_i64(), Some(1));
    }
}
