//! Property tests: any generated JSON value survives serialize → parse,
//! in both compact and pretty form.

use monster_json::{parse, Object, Value};
use proptest::prelude::*;

/// Strategy for arbitrary JSON values with bounded depth/size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN/inf intentionally do not round-trip.
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        "[ -~]{0,20}".prop_map(Value::Str), // printable ASCII
        "\\PC{0,8}".prop_map(Value::Str),   // arbitrary printable unicode
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec(("[a-zA-Z0-9_]{1,8}", inner), 0..6).prop_map(|pairs| {
                let mut obj = Object::new();
                for (k, v) in pairs {
                    obj.insert(k, v);
                }
                Value::Object(obj)
            }),
        ]
    })
}

proptest! {
    #[test]
    fn compact_round_trips(v in arb_value()) {
        let s = v.to_string_compact();
        let back = parse(&s).expect("reparse compact");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trips(v in arb_value()) {
        let s = v.to_string_pretty();
        let back = parse(&s).expect("reparse pretty");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,64}") {
        let _ = parse(&s);
    }

    #[test]
    fn strings_round_trip_exactly(s in "\\PC{0,64}") {
        let v = Value::Str(s.clone());
        let parsed = parse(&v.to_string_compact()).unwrap();
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }
}
