//! Storage schemas: the original layout and the §IV-B2 redesign.
//!
//! Schema choice is the paper's single biggest storage/performance lever
//! (Fig. 13: the optimized schema holds the same information in 28 % of
//! the volume; Fig. 14: queries run 1.6–1.76× faster). Both generations
//! are implemented end-to-end so those comparisons measure real bytes and
//! real series cardinality.

use crate::preprocess::health_code_if_abnormal;
use monster_redfish::{HealthState, NodeReading};
use monster_scheduler::host::LoadReport;
use monster_scheduler::{Job, JobState};
use monster_tsdb::DataPoint;
use monster_util::{EpochSecs, NodeId};

/// Which schema generation to build points for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaVersion {
    /// The original deployment: version-1 per-metric measurements with
    /// threshold metadata and string timestamps/health, coexisting with
    /// the version-2 unified measurement and per-job dedicated
    /// measurements. High cardinality, high volume.
    Previous,
    /// The redesign: consolidated measurements, binary health codes kept
    /// only when abnormal, integer epoch times.
    Optimized,
}

/// Build the points for one node's BMC reading.
pub fn bmc_points(
    schema: SchemaVersion,
    node: NodeId,
    reading: &NodeReading,
    t: EpochSecs,
) -> Vec<DataPoint> {
    match schema {
        SchemaVersion::Optimized => optimized_bmc(node, reading, t),
        SchemaVersion::Previous => previous_bmc(node, reading, t),
    }
}

fn labeled(measurement: &str, node: NodeId, label: &str, v: f64, t: EpochSecs) -> DataPoint {
    DataPoint::new(measurement, t)
        .tag("NodeId", node.bmc_addr())
        .tag("Label", label)
        .field_f64("Reading", v)
}

fn optimized_bmc(node: NodeId, reading: &NodeReading, t: EpochSecs) -> Vec<DataPoint> {
    match reading {
        NodeReading::Thermal { cpu_temps, inlet, fans } => {
            let mut pts = Vec::with_capacity(cpu_temps.len() + 1 + fans.len());
            for (i, temp) in cpu_temps.iter().enumerate() {
                pts.push(labeled("Thermal", node, &format!("CPU{} Temp", i + 1), *temp, t));
            }
            pts.push(labeled("Thermal", node, "Inlet Temp", *inlet, t));
            for (i, rpm) in fans.iter().enumerate() {
                pts.push(labeled("Thermal", node, &format!("Fan {}", i + 1), *rpm, t));
            }
            pts
        }
        NodeReading::Power { usage_watts, voltages } => {
            // The Fig. 4 sample point: Power measurement, Label tag so
            // "the power consumption of other components can also be
            // saved to the Power measurement".
            let mut pts = vec![labeled("Power", node, "NodePower", *usage_watts, t)];
            for (i, v) in voltages.iter().enumerate() {
                pts.push(labeled("Power", node, &format!("Voltage {}", i + 1), *v, t));
            }
            pts
        }
        NodeReading::Manager { health } => health_point(node, "BMC", *health, t),
        NodeReading::System { health } => health_point(node, "System", *health, t),
    }
}

fn health_point(node: NodeId, label: &str, h: HealthState, t: EpochSecs) -> Vec<DataPoint> {
    // Abnormal-only retention: "we keep only abnormal status ... as the
    // majority of systems is usually healthy."
    match health_code_if_abnormal(h) {
        Some(code) => vec![DataPoint::new("Health", t)
            .tag("NodeId", node.bmc_addr())
            .tag("Label", label)
            .field_i64("Code", code)],
        None => Vec::new(),
    }
}

/// Version-1 point: its own measurement per metric, with threshold
/// metadata fields and a redundant human-readable timestamp string. The
/// `Sensor` tag separates same-timestamp instances (fan 1..4, CPU 1..2)
/// within one measurement.
fn v1_point(measurement: &str, node: NodeId, value: f64, t: EpochSecs, units: &str) -> DataPoint {
    v1_point_tagged(measurement, node, "0", value, t, units)
}

fn v1_point_tagged(
    measurement: &str,
    node: NodeId,
    sensor: &str,
    value: f64,
    t: EpochSecs,
    units: &str,
) -> DataPoint {
    DataPoint::new(measurement, t)
        .tag("NodeId", node.bmc_addr())
        .tag("Sensor", sensor)
        .field_f64("Reading", value)
        .field_str("Units", units)
        .field_f64("UpperThresholdCritical", value.abs() * 2.0 + 100.0)
        .field_f64("UpperThresholdNonCritical", value.abs() * 1.5 + 50.0)
        .field_f64("LowerThresholdCritical", -10.0)
        .field_str("CollectedAt", t.to_rfc3339())
}

/// Version-2 point: the unified measurement, `MetricName` as a tag.
fn v2_point(metric: &str, node: NodeId, value: f64, t: EpochSecs) -> DataPoint {
    DataPoint::new("Metrics", t)
        .tag("NodeId", node.bmc_addr())
        .tag("MetricName", metric)
        .field_f64("Value", value)
}

fn previous_bmc(node: NodeId, reading: &NodeReading, t: EpochSecs) -> Vec<DataPoint> {
    // Both coexisting generations are written ("both versions of the
    // schema coexist in the same database").
    let mut pts = Vec::new();
    let mut both = |measurement: &str, sensor: &str, metric: &str, v: f64, units: &str| {
        pts.push(v1_point_tagged(measurement, node, sensor, v, t, units));
        pts.push(v2_point(metric, node, v, t));
    };
    match reading {
        NodeReading::Thermal { cpu_temps, inlet, fans } => {
            for (i, temp) in cpu_temps.iter().enumerate() {
                let n = (i + 1).to_string();
                both("CPUTemperature", &n, &format!("cpu{}_temp", i + 1), *temp, "Celsius");
            }
            both("InletTemperature", "0", "inlet_temp", *inlet, "Celsius");
            for (i, rpm) in fans.iter().enumerate() {
                let n = (i + 1).to_string();
                both("FanSpeed", &n, &format!("fan{}_rpm", i + 1), *rpm, "RPM");
            }
        }
        NodeReading::Power { usage_watts, voltages } => {
            both("PowerUsage", "0", "node_power", *usage_watts, "Watts");
            for (i, v) in voltages.iter().enumerate() {
                let n = (i + 1).to_string();
                both("Voltage", &n, &format!("voltage_{}", i + 1), *v, "Volts");
            }
        }
        NodeReading::Manager { health } => {
            // v1 stored every health sample, as a string.
            pts.push(
                DataPoint::new("BMCHealth", t)
                    .tag("NodeId", node.bmc_addr())
                    .field_str("Health", health.as_str())
                    .field_str("CollectedAt", t.to_rfc3339()),
            );
            pts.push(v2_point("bmc_health", node, health.code() as f64, t));
        }
        NodeReading::System { health } => {
            pts.push(
                DataPoint::new("SystemHealth", t)
                    .tag("NodeId", node.bmc_addr())
                    .field_str("Health", health.as_str())
                    .field_str("CollectedAt", t.to_rfc3339()),
            );
            pts.push(v2_point("system_health", node, health.code() as f64, t));
        }
    }
    pts
}

/// Build the points for one node's resource-manager report.
pub fn uge_points(schema: SchemaVersion, report: &LoadReport, t: EpochSecs) -> Vec<DataPoint> {
    let node = report.node;
    let joblist = format!(
        "[{}]",
        report.job_list.iter().map(|j| format!("'{j}'")).collect::<Vec<_>>().join(", ")
    );
    match schema {
        SchemaVersion::Optimized => vec![
            DataPoint::new("UGE", t)
                .tag("NodeId", node.bmc_addr())
                .field_f64("CPUUsage", report.cpu_usage)
                .field_f64("MemUsed", report.mem_used_gib)
                .field_f64("MemTotal", report.mem_total_gib)
                .field_f64(
                    "MemUsage",
                    crate::preprocess::memory_usage_fraction(
                        report.mem_used_gib,
                        report.mem_total_gib,
                    ),
                )
                .field_f64("UsedSwap", report.swap_used_gib)
                .field_f64("FreeSwap", report.swap_free_gib()),
            // The Fig. 5 sample point: stringified job list, because
            // "data types in InfluxDB do not include array".
            DataPoint::new("NodeJobs", t)
                .tag("NodeId", node.bmc_addr())
                .field_str("JobList", joblist),
        ],
        SchemaVersion::Previous => vec![
            v1_point("CPUUsage", node, report.cpu_usage, t, "Fraction"),
            v1_point("MemoryUsed", node, report.mem_used_gib, t, "GiB"),
            v1_point("MemoryTotal", node, report.mem_total_gib, t, "GiB"),
            v1_point("SwapUsed", node, report.swap_used_gib, t, "GiB"),
            v1_point("SwapFree", node, report.swap_free_gib(), t, "GiB"),
            v2_point("cpu_usage", node, report.cpu_usage, t),
            v2_point("mem_used", node, report.mem_used_gib, t),
            DataPoint::new("NodeJobList", t)
                .tag("NodeId", node.bmc_addr())
                .field_str("JobList", joblist.clone())
                .field_str("CollectedAt", t.to_rfc3339()),
        ],
    }
}

/// Build the points describing one job.
pub fn job_points(schema: SchemaVersion, job: &Job, t: EpochSecs) -> Vec<DataPoint> {
    let (state_code, start, end) = match &job.state {
        JobState::Pending => (0i64, None, None),
        JobState::Running { start, .. } => (1, Some(*start), None),
        JobState::Done { start, end, .. } => (2, Some(*start), Some(*end)),
        JobState::Failed { start, end, .. } => (3, Some(*start), Some(*end)),
    };
    let slots = job.total_slots(monster_scheduler::host::SLOTS_PER_NODE) as i64;
    let nodes = job.hosts().len() as i64;
    match schema {
        SchemaVersion::Optimized => {
            let mut p = DataPoint::new("JobsInfo", t)
                .tag("JobId", job.id.to_string())
                .field_str("User", job.spec.user.as_str())
                .field_i64("SubmitTime", job.submit_time.as_secs())
                .field_i64("State", state_code)
                .field_i64("TotalCores", slots)
                .field_i64("TotalNodes", nodes);
            if let Some(s) = start {
                p = p.field_i64("StartTime", s.as_secs());
            }
            if let Some(e) = end {
                p = p.field_i64("FinishTime", e.as_secs());
            }
            vec![p]
        }
        SchemaVersion::Previous => {
            // "each job information is stored into a dedicated
            // measurement" — the v2 cardinality accident: measurement
            // name carries the job id.
            let mut p = DataPoint::new(format!("Job_{}", job.id), t)
                .tag("Owner", job.spec.user.as_str())
                .field_str("User", job.spec.user.as_str())
                .field_str("SubmitTime", job.submit_time.to_rfc3339())
                .field_str("State", format!("{state_code}"))
                .field_i64("TotalCores", slots)
                .field_i64("TotalNodes", nodes)
                .field_str("JobName", job.spec.name.as_str());
            if let Some(s) = start {
                p = p.field_str("StartTime", s.to_rfc3339());
            }
            if let Some(e) = end {
                p = p.field_str("FinishTime", e.to_rfc3339());
            }
            vec![p]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_scheduler::{JobShape, JobSpec};
    use monster_util::{JobId, UserName};

    fn t() -> EpochSecs {
        EpochSecs::new(1_583_792_296)
    }

    fn node() -> NodeId {
        NodeId::new(1, 1)
    }

    fn thermal() -> NodeReading {
        NodeReading::Thermal {
            cpu_temps: vec![54.0, 56.5],
            inlet: 21.0,
            fans: vec![4400.0, 4410.0, 4390.0, 4420.0],
        }
    }

    #[test]
    fn optimized_power_point_matches_fig4() {
        let r = NodeReading::Power { usage_watts: 273.8, voltages: vec![12.0, 5.0, 3.3] };
        let pts = bmc_points(SchemaVersion::Optimized, node(), &r, t());
        let p = &pts[0];
        assert_eq!(p.measurement, "Power");
        assert_eq!(p.get_tag("NodeId"), Some("10.101.1.1"));
        assert_eq!(p.get_tag("Label"), Some("NodePower"));
        assert_eq!(p.get_field("Reading").unwrap().as_f64(), Some(273.8));
        assert_eq!(p.time, t());
        assert_eq!(pts.len(), 4); // power + 3 voltages
    }

    #[test]
    fn optimized_health_stores_only_abnormal() {
        let ok = NodeReading::Manager { health: HealthState::Ok };
        assert!(bmc_points(SchemaVersion::Optimized, node(), &ok, t()).is_empty());
        let warn = NodeReading::System { health: HealthState::Warning };
        let pts = bmc_points(SchemaVersion::Optimized, node(), &warn, t());
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].measurement, "Health");
        assert_eq!(pts[0].get_field("Code").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn previous_stores_all_health_as_strings() {
        let ok = NodeReading::Manager { health: HealthState::Ok };
        let pts = bmc_points(SchemaVersion::Previous, node(), &ok, t());
        assert_eq!(pts.len(), 2); // v1 string point + v2 unified point
        assert_eq!(pts[0].get_field("Health").unwrap().as_str(), Some("OK"));
    }

    #[test]
    fn previous_schema_is_much_heavier() {
        let r = thermal();
        let old: usize = bmc_points(SchemaVersion::Previous, node(), &r, t())
            .iter()
            .map(DataPoint::wire_size)
            .sum();
        let new: usize = bmc_points(SchemaVersion::Optimized, node(), &r, t())
            .iter()
            .map(DataPoint::wire_size)
            .sum();
        // Raw wire volume should be several times larger (Fig. 13's ~3.6x
        // comes from this plus the health/job effects).
        assert!(old > new * 3, "old={old} new={new}");
    }

    #[test]
    fn previous_job_measurement_carries_job_id() {
        let job = Job {
            id: JobId(1_291_784),
            spec: JobSpec {
                user: UserName::new("jieyao"),
                name: "mpi.sh".into(),
                shape: JobShape::Parallel { nodes: 58 },
                runtime_secs: 3600,
                priority: 0,
                mem_per_slot_gib: 2.0,
            },
            submit_time: EpochSecs::new(1_583_790_000),
            state: JobState::Pending,
        };
        let pts = job_points(SchemaVersion::Previous, &job, t());
        assert_eq!(pts[0].measurement, "Job_1291784");
        // String timestamps in the old schema.
        assert!(pts[0].get_field("SubmitTime").unwrap().as_str().is_some());
        let pts = job_points(SchemaVersion::Optimized, &job, t());
        assert_eq!(pts[0].measurement, "JobsInfo");
        assert_eq!(pts[0].get_field("SubmitTime").unwrap().as_i64(), Some(1_583_790_000));
        assert_eq!(pts[0].get_field("TotalCores").unwrap().as_i64(), Some(2088));
    }

    #[test]
    fn uge_points_cover_table2() {
        let report = LoadReport {
            node: node(),
            cpu_usage: 0.5,
            mem_total_gib: 192.0,
            mem_used_gib: 96.0,
            swap_total_gib: 4.0,
            swap_used_gib: 1.0,
            job_list: vec![JobId(1_291_784), JobId(1_318_962)],
        };
        let pts = uge_points(SchemaVersion::Optimized, &report, t());
        assert_eq!(pts.len(), 2);
        let uge = &pts[0];
        assert_eq!(uge.get_field("CPUUsage").unwrap().as_f64(), Some(0.5));
        assert_eq!(uge.get_field("MemUsage").unwrap().as_f64(), Some(0.5));
        assert_eq!(uge.get_field("FreeSwap").unwrap().as_f64(), Some(3.0));
        // The Fig. 5 stringified job list.
        let nj = &pts[1];
        assert_eq!(nj.measurement, "NodeJobs");
        assert_eq!(nj.get_field("JobList").unwrap().as_str(), Some("['1291784', '1318962']"));
    }

    #[test]
    fn thermal_point_counts() {
        let r = thermal();
        assert_eq!(bmc_points(SchemaVersion::Optimized, node(), &r, t()).len(), 7);
        assert_eq!(bmc_points(SchemaVersion::Previous, node(), &r, t()).len(), 14);
    }
}
