//! The collection loop: sweep BMCs, pull the resource manager, build
//! points, batch-write.

use crate::preprocess::FinishEstimator;
use crate::schema::{bmc_points, job_points, uge_points, SchemaVersion};
use monster_alert::{AnomalyEvent, DetectorBank, DetectorConfig};
use monster_redfish::client::{ClientConfig, RedfishClient, SweepOutcome};
use monster_redfish::resilience::{BreakerCounts, HealthRegistry, ResilienceConfig};
use monster_redfish::types::{Category, NodeReading};
use monster_redfish::SimulatedCluster;
use monster_scheduler::{JobState, Qmaster};
use monster_sim::VDuration;
use monster_tsdb::{DataPoint, Db};
use monster_util::{EpochSecs, JobId, NodeId, Result};
use std::collections::HashMap;

/// Collector configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Storage schema generation to build points for.
    pub schema: SchemaVersion,
    /// Collection interval in seconds (the paper settles on 60 s,
    /// §III-B4).
    pub interval_secs: i64,
    /// Redfish client settings.
    pub client: ClientConfig,
    /// When set, sweeps run through the resilience layer: per-BMC circuit
    /// breakers, jittered retry backoff, and the deadline-aware degraded
    /// sweep scheduler with last-known-good staleness substitution.
    pub resilience: Option<ResilienceConfig>,
    /// When set, every live reading is folded through the streaming
    /// anomaly detectors (EWMA z-score, rate-of-change, flatline) as it is
    /// ingested, and transitions surface in
    /// [`IntervalOutput::anomalies`]. On by default — detection is the
    /// product, not an add-on.
    pub detectors: Option<DetectorConfig>,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            schema: SchemaVersion::Optimized,
            interval_secs: 60,
            client: ClientConfig::default(),
            resilience: None,
            detectors: Some(DetectorConfig::default()),
        }
    }
}

/// What one interval produced.
pub struct IntervalOutput {
    /// The trace this interval's pipeline pass belongs to: the sweep, its
    /// per-BMC children, and (via [`Collector::collect_and_store`]) the
    /// TSDB write batches all hang off this context's span.
    pub trace: monster_obs::TraceContext,
    /// Points built this interval.
    pub points: Vec<DataPoint>,
    /// The BMC sweep outcome (latency/makespan statistics).
    pub sweep: SweepOutcome,
    /// Bytes of accounting payload pulled from the resource manager.
    pub uge_bytes: usize,
    /// Jobs whose finish was *estimated* this interval by job-list
    /// diffing.
    pub estimated_finishes: Vec<(JobId, EpochSecs)>,
    /// Simulated time the whole interval's collection took (sweep
    /// makespan; the UGE pull runs concurrently and is much faster).
    pub simulated_collection_time: VDuration,
    /// Last-known-good points written tagged `Stale=true` in place of
    /// missing readings (resilient path only).
    pub stale_points: usize,
    /// Nodes that got at least one stale substitution this interval, with
    /// the number of sweeps since that node was last fully fresh.
    pub stale_nodes: Vec<(NodeId, u64)>,
    /// True when the sweep skipped or failed anything — the interval ran
    /// on partial data.
    pub degraded: bool,
    /// Breaker census at sweep end (all-closed on the legacy path).
    pub breakers: BreakerCounts,
    /// Detector transitions observed while ingesting this interval's live
    /// readings (empty when detectors are off — and on a healthy interval).
    pub anomalies: Vec<AnomalyEvent>,
}

/// The Metrics Collector service.
pub struct Collector {
    config: CollectorConfig,
    client: RedfishClient,
    finish_estimator: FinishEstimator,
    /// Per-BMC health and breakers (resilient path only).
    registry: Option<HealthRegistry>,
    /// Last successfully parsed reading per (node, category), served
    /// tagged stale while the node is skipped or failing.
    last_good: HashMap<(NodeId, Category), NodeReading>,
    /// Sweep index at which each (node, category) was last fresh.
    last_fresh: HashMap<(NodeId, Category), u64>,
    /// Streaming per-(node, signal) anomaly detectors, fed live readings.
    detectors: Option<DetectorBank>,
}

impl Collector {
    /// Build a collector.
    pub fn new(config: CollectorConfig) -> Self {
        let client = RedfishClient::new(config.client.clone());
        let registry = config.resilience.clone().map(HealthRegistry::new);
        let detectors = config.detectors.map(DetectorBank::new);
        if detectors.is_some() {
            // Register the event counter up front so a scrape before the
            // first anomaly sees an explicit 0, not a missing family.
            monster_obs::counter_help(
                "monster_anomaly_events_total",
                "Streaming detector transitions (raises + clears) observed at ingest.",
            );
        }
        Collector {
            config,
            client,
            finish_estimator: FinishEstimator::new(),
            registry,
            last_good: HashMap::new(),
            last_fresh: HashMap::new(),
            detectors,
        }
    }

    /// The streaming detector bank, when detection is on.
    pub fn detector_bank(&self) -> Option<&DetectorBank> {
        self.detectors.as_ref()
    }

    /// The per-BMC health registry, when the resilience layer is on.
    pub fn registry(&self) -> Option<&HealthRegistry> {
        self.registry.as_ref()
    }

    /// The active configuration.
    pub fn config(&self) -> &CollectorConfig {
        &self.config
    }

    /// Collect one interval at time `now`: sweep all BMCs, pull the
    /// resource manager, pre-process, and build data points.
    pub fn collect_interval(
        &mut self,
        cluster: &SimulatedCluster,
        qm: &Qmaster,
        now: EpochSecs,
    ) -> IntervalOutput {
        let span = monster_obs::Span::enter("collector.interval");
        // Mint this interval's trace context and install it for the
        // duration: the sweep, its per-BMC child spans, and any TSDB
        // writes made while we hold the guard all join the same trace.
        let trace_ctx = span.context();
        let _trace_guard = monster_obs::trace::set_current(trace_ctx);

        // --- out-of-band: Redfish sweep ---
        // Resilient when configured: breakers + backoff + deadline budget;
        // otherwise the legacy fan-out with immediate retries.
        let sweep = match &self.registry {
            Some(registry) => self.client.sweep_resilient(cluster, registry),
            None => self.client.sweep(cluster),
        };
        let resilient = self.registry.is_some();
        let current_sweep = self.registry.as_ref().map(|r| r.sweep_index()).unwrap_or(0);
        let mut points: Vec<DataPoint> = Vec::with_capacity(cluster.len() * 16);
        let mut stale_points = 0usize;
        let mut stale_age: HashMap<NodeId, u64> = HashMap::new();
        // `Vec::new` defers its first allocation to the first push, so a
        // healthy interval (no transitions) stays allocation-free here.
        let mut anomalies: Vec<AnomalyEvent> = Vec::new();
        for outcome in &sweep.results {
            if let Some(reading) = &outcome.reading {
                points.extend(bmc_points(self.config.schema, outcome.node, reading, now));
                // Streaming detection happens at ingest: only *live*
                // readings are evaluated — stale substitutions repeat
                // last-known-good values and would fake flatlines.
                if let Some(bank) = &mut self.detectors {
                    bank.observe_reading(
                        outcome.node,
                        reading,
                        now,
                        Some(trace_ctx),
                        &mut anomalies,
                    );
                }
                // A live reading advances this series' last-good-ingest
                // watermark — the raw material of the freshness SLO.
                monster_obs::freshness().record_ingest(
                    &outcome.node.to_string(),
                    &outcome.category.to_string(),
                    now.as_secs() as f64,
                );
                if resilient {
                    self.last_good.insert((outcome.node, outcome.category), reading.clone());
                    self.last_fresh.insert((outcome.node, outcome.category), current_sweep);
                }
            } else if resilient {
                // Degraded: serve the last-known-good reading for this
                // (node, category), tagged stale so queries can tell
                // substituted values from live ones.
                let key = (outcome.node, outcome.category);
                if let Some(prev) = self.last_good.get(&key) {
                    let substituted = bmc_points(self.config.schema, outcome.node, prev, now)
                        .into_iter()
                        .map(|p| p.tag("Stale", "true"));
                    let before = points.len();
                    points.extend(substituted);
                    stale_points += points.len() - before;
                    let age = current_sweep
                        .saturating_sub(self.last_fresh.get(&key).copied().unwrap_or(0));
                    let entry = stale_age.entry(outcome.node).or_insert(0);
                    *entry = (*entry).max(age);
                }
            }
        }
        let mut stale_nodes: Vec<(NodeId, u64)> = stale_age.into_iter().collect();
        stale_nodes.sort_unstable();
        let degraded = sweep.degraded();
        let breakers = self.registry.as_ref().map(|r| r.breaker_counts()).unwrap_or_default();

        // --- in-band: resource manager pull ---
        let (_, uge_bytes) = monster_scheduler::accounting::accounting_pull(qm);
        let mut running_ids: Vec<JobId> = Vec::new();
        for report in qm.all_load_reports() {
            points.extend(uge_points(self.config.schema, &report, now));
            running_ids.extend(report.job_list.iter().copied());
        }
        running_ids.sort_unstable();
        running_ids.dedup();

        // Job documents: running jobs every interval, finished jobs once
        // (when ARCo first reports them done).
        for job in qm.jobs() {
            let fresh_finish = match &job.state {
                JobState::Done { end, .. } | JobState::Failed { end, .. } => {
                    *end > now - self.config.interval_secs
                }
                JobState::Running { .. } => true,
                JobState::Pending => false,
            };
            if fresh_finish {
                points.extend(job_points(self.config.schema, job, now));
            }
        }

        // Finish-time estimation from job-list diffs.
        let estimated_finishes = self.finish_estimator.observe(running_ids, now);

        let simulated_collection_time = sweep.makespan;

        // Self-monitoring: one interval's worth of `monster_collector_*`
        // series (the sweep itself reported its own statistics).
        monster_obs::counter("monster_collector_intervals_total").inc();
        monster_obs::counter("monster_collector_points_total").add(points.len() as u64);
        monster_obs::counter("monster_collector_finish_estimates_total")
            .add(estimated_finishes.len() as u64);
        monster_obs::histo("monster_collector_interval_seconds")
            .observe_vdur(simulated_collection_time);
        monster_obs::counter("monster_collector_stale_points_total").add(stale_points as u64);
        monster_obs::gauge("monster_collector_stale_nodes").set(stale_nodes.len() as i64);
        if degraded {
            monster_obs::counter("monster_collector_degraded_sweeps_total").inc();
        }
        if !anomalies.is_empty() {
            monster_obs::counter("monster_anomaly_events_total").add(anomalies.len() as u64);
        }
        // Sweep tick: freezes this interval's attainment sample for the
        // burn-rate windows and advances the lag reference time.
        monster_obs::freshness().record_sweep(now.as_secs() as f64);
        span.finish_after(simulated_collection_time);

        IntervalOutput {
            trace: trace_ctx,
            points,
            sweep,
            uge_bytes,
            estimated_finishes,
            simulated_collection_time,
            stale_points,
            stale_nodes,
            degraded,
            breakers,
            anomalies,
        }
    }

    /// Collect one interval **without** the Redfish wire layer: readings
    /// are synthesized directly from the simulated sensors (same schema
    /// builders, same pre-processing). This is the bulk-load path for
    /// long-horizon experiments (Figs. 10/12/13/14/15 need days of data);
    /// the full Redfish path is exercised by `collect_interval` and the
    /// integration tests.
    pub fn collect_interval_direct(
        &mut self,
        cluster: &SimulatedCluster,
        qm: &Qmaster,
        now: EpochSecs,
    ) -> Vec<DataPoint> {
        use monster_redfish::NodeReading;
        let mut points: Vec<DataPoint> = Vec::with_capacity(cluster.len() * 16);
        for &node in cluster.node_ids() {
            let s = cluster.sensors(node).expect("node exists");
            let readings = [
                NodeReading::Thermal {
                    cpu_temps: s.cpu_temps.to_vec(),
                    inlet: s.inlet,
                    fans: s.fans.to_vec(),
                },
                NodeReading::Power {
                    usage_watts: s.power,
                    voltages: monster_redfish::sensors::VOLTAGE_RAILS.to_vec(),
                },
                NodeReading::Manager { health: s.bmc_health },
                NodeReading::System { health: s.host_health },
            ];
            for r in &readings {
                points.extend(bmc_points(self.config.schema, node, r, now));
            }
        }
        let mut running_ids: Vec<JobId> = Vec::new();
        for report in qm.all_load_reports() {
            points.extend(uge_points(self.config.schema, &report, now));
            running_ids.extend(report.job_list.iter().copied());
        }
        running_ids.sort_unstable();
        running_ids.dedup();
        for job in qm.jobs() {
            let fresh = match &job.state {
                JobState::Done { end, .. } | JobState::Failed { end, .. } => {
                    *end > now - self.config.interval_secs
                }
                JobState::Running { .. } => true,
                JobState::Pending => false,
            };
            if fresh {
                points.extend(job_points(self.config.schema, job, now));
            }
        }
        self.finish_estimator.observe(running_ids, now);
        points
    }

    /// Collect one interval through the **Telemetry Service** (the §VI
    /// future-work path): one metric-report fetch per node yields every
    /// fast-cadence sample recorded since the last fetch — sub-minute
    /// resolution for one request's worth of BMC latency per node.
    ///
    /// Health and resource-manager data still flow through the regular
    /// paths; telemetry covers the Thermal/Power sensors.
    pub fn collect_interval_telemetry(
        &mut self,
        telemetry: &mut monster_redfish::telemetry::TelemetryService,
        cluster: &SimulatedCluster,
        qm: &Qmaster,
        now: EpochSecs,
    ) -> Result<Vec<DataPoint>> {
        use monster_redfish::telemetry::parse_report;
        use monster_redfish::NodeReading;
        let mut points: Vec<DataPoint> = Vec::with_capacity(cluster.len() * 90);
        for &node in cluster.node_ids() {
            let report = telemetry.take_report(node)?;
            for sample in parse_report(&report)? {
                let thermal = NodeReading::Thermal {
                    cpu_temps: sample.cpu_temps.to_vec(),
                    inlet: sample.inlet,
                    fans: sample.fans.to_vec(),
                };
                points.extend(bmc_points(self.config.schema, node, &thermal, sample.time));
                let power = NodeReading::Power { usage_watts: sample.power, voltages: Vec::new() };
                points.extend(bmc_points(self.config.schema, node, &power, sample.time));
            }
        }
        let mut running_ids: Vec<JobId> = Vec::new();
        for report in qm.all_load_reports() {
            points.extend(uge_points(self.config.schema, &report, now));
            running_ids.extend(report.job_list.iter().copied());
        }
        running_ids.sort_unstable();
        running_ids.dedup();
        self.finish_estimator.observe(running_ids, now);
        Ok(points)
    }

    /// Collect one interval and write it to `db` in batches.
    ///
    /// §III-C: the collector writes ~10 000 points per interval in batches
    /// ("the ideal batch size for InfluxDB"), amortizing connection
    /// overhead. With the sharded-lock engine the batch size also bounds
    /// lock work: all of an interval's points share one timestamp, so each
    /// chunk resolves its ids under a single index acquisition and lands in
    /// exactly one shard's critical section. Chunks are written
    /// sequentially on purpose — same-timestamp points must reach a shard
    /// in collection order so raw (unaggregated) queries, which sort by
    /// timestamp only, replay them deterministically.
    pub fn collect_and_store(
        &mut self,
        cluster: &SimulatedCluster,
        qm: &Qmaster,
        now: EpochSecs,
        db: &Db,
    ) -> Result<IntervalOutput> {
        let out = self.collect_interval(cluster, qm, now);
        // Re-install the interval's trace context so the write batches
        // join it (the guard inside collect_interval has already dropped).
        let _trace_guard = monster_obs::trace::set_current(out.trace);
        for chunk in out.points.chunks(10_000) {
            db.write_batch(chunk)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_redfish::bmc::BmcConfig;
    use monster_redfish::cluster::ClusterConfig;
    use monster_scheduler::{JobShape, JobSpec, QmasterConfig, WorkloadConfig, WorkloadGenerator};
    use monster_tsdb::DbConfig;
    use monster_util::UserName;

    fn rig(nodes: usize, seed: u64) -> (SimulatedCluster, Qmaster) {
        let cluster = SimulatedCluster::new(ClusterConfig {
            nodes,
            bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
            ..ClusterConfig::small(nodes, seed)
        });
        let qm = Qmaster::new(QmasterConfig { nodes, ..QmasterConfig::default() });
        (cluster, qm)
    }

    fn t0() -> EpochSecs {
        QmasterConfig::default().start_time
    }

    #[test]
    fn one_interval_produces_expected_point_mix() {
        let (cluster, mut qm) = rig(8, 1);
        qm.submit_at(
            t0() + 1,
            JobSpec {
                user: UserName::new("alice"),
                name: "a.sh".into(),
                shape: JobShape::Serial { slots: 8 },
                runtime_secs: 100_000,
                priority: 0,
                mem_per_slot_gib: 1.0,
            },
        );
        qm.run_until(t0() + 60);
        cluster.step(60.0, |n| qm.utilization(n));
        let mut col = Collector::new(CollectorConfig::default());
        let out = col.collect_interval(&cluster, &qm, t0() + 60);

        let measurements: std::collections::HashSet<&str> =
            out.points.iter().map(|p| p.measurement.as_str()).collect();
        for m in ["Power", "Thermal", "UGE", "NodeJobs", "JobsInfo"] {
            assert!(measurements.contains(m), "missing {m}; got {measurements:?}");
        }
        // Optimized schema: ~16 BMC+UGE points per node + 1 job.
        let per_node = out.points.len() as f64 / 8.0;
        assert!((10.0..20.0).contains(&per_node), "points/node {per_node}");
        assert!(out.sweep.successes() == 32);
        assert!(out.uge_bytes > 1000);
    }

    #[test]
    fn quanah_scale_interval_is_about_10k_points() {
        // The paper: "the total number of data points generated within
        // each interval is approximately 10,000".
        let (cluster, mut qm) = rig(467, 2);
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default());
        gen.drive(&mut qm, t0(), t0() + 3600);
        qm.run_until(t0() + 3600);
        cluster.step(60.0, |n| qm.utilization(n));
        let mut col = Collector::new(CollectorConfig::default());
        let out = col.collect_interval(&cluster, &qm, t0() + 3600);
        assert!(
            (6_000..16_000).contains(&out.points.len()),
            "points per interval: {}",
            out.points.len()
        );
    }

    #[test]
    fn finish_estimation_fires_when_job_vanishes() {
        let (cluster, mut qm) = rig(2, 3);
        qm.submit_at(
            t0() + 1,
            JobSpec {
                user: UserName::new("bob"),
                name: "short.sh".into(),
                shape: JobShape::Serial { slots: 2 },
                runtime_secs: 90,
                priority: 0,
                mem_per_slot_gib: 1.0,
            },
        );
        let mut col = Collector::new(CollectorConfig::default());
        // Interval 1: job running.
        qm.run_until(t0() + 60);
        let out1 = col.collect_interval(&cluster, &qm, t0() + 60);
        assert!(out1.estimated_finishes.is_empty());
        // Interval 2: job finished between the pulls.
        qm.run_until(t0() + 120);
        let out2 = col.collect_interval(&cluster, &qm, t0() + 120);
        assert_eq!(out2.estimated_finishes.len(), 1);
        assert_eq!(out2.estimated_finishes[0].1, t0() + 120);
    }

    #[test]
    fn collect_and_store_lands_in_db() {
        let (cluster, mut qm) = rig(4, 4);
        qm.run_until(t0() + 60);
        cluster.step(60.0, |n| qm.utilization(n));
        let db = Db::new(DbConfig::default());
        let mut col = Collector::new(CollectorConfig::default());
        let out = col.collect_and_store(&cluster, &qm, t0() + 60, &db).unwrap();
        let stats = db.stats();
        assert!(stats.points > 0);
        assert!(stats.cardinality > 0);
        // Every point written (fields counted individually by the db).
        let field_count: usize = out.points.iter().map(|p| p.fields.len()).sum();
        assert_eq!(stats.points, field_count);
    }

    #[test]
    fn previous_schema_writes_more_volume_than_optimized() {
        let (cluster, mut qm) = rig(6, 5);
        qm.submit_at(
            t0() + 1,
            JobSpec {
                user: UserName::new("carol"),
                name: "c.sh".into(),
                shape: JobShape::Serial { slots: 4 },
                runtime_secs: 100_000,
                priority: 0,
                mem_per_slot_gib: 1.0,
            },
        );
        qm.run_until(t0() + 60);
        cluster.step(60.0, |n| qm.utilization(n));

        let run = |schema: SchemaVersion| {
            let db = Db::new(DbConfig::default());
            let mut col = Collector::new(CollectorConfig { schema, ..CollectorConfig::default() });
            for k in 1..=5 {
                col.collect_and_store(&cluster, &qm, t0() + 60 * k, &db).unwrap();
            }
            db.stats()
        };
        let old = run(SchemaVersion::Previous);
        let new = run(SchemaVersion::Optimized);
        assert!(
            old.wire_bytes > new.wire_bytes * 3,
            "old={} new={}",
            old.wire_bytes,
            new.wire_bytes
        );
        assert!(old.cardinality > new.cardinality, "cardinality didn't drop");
    }
}
