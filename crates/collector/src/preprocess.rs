//! The §III-B3 pre-processing rules.
//!
//! "Pre-processing the collected metrics has significantly reduced the
//! amount of data": health strings become binary integers and only
//! abnormal states are kept; date strings become integer epoch times; job
//! lists are diffed across intervals to estimate finish times UGE doesn't
//! report in real time; and derived metrics (cores/nodes per job, memory
//! usage) are computed once at collection time.

use monster_redfish::HealthState;
use monster_scheduler::{Job, JobState};
use monster_util::{EpochSecs, JobId};
use std::collections::{HashMap, HashSet};

use monster_util::NodeId;

/// Health-string compaction: `None` when the state is healthy (not
/// stored), `Some(code)` for abnormal states.
pub fn health_code_if_abnormal(h: HealthState) -> Option<i64> {
    match h {
        HealthState::Ok => None,
        other => Some(other.code()),
    }
}

/// Date-string → epoch conversion (the storage-side optimization; parsing
/// failures surface rather than silently storing the string).
pub fn date_to_epoch(s: &str) -> monster_util::Result<i64> {
    Ok(EpochSecs::parse_rfc3339(s)?.as_secs())
}

/// Derived job metrics: how many cores and distinct nodes a job occupies
/// ("based on the 'Job List on Node' information, we can summarize how
/// many cores a job uses and how many nodes a job takes up").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobFootprint {
    /// Total cores.
    pub cores: u32,
    /// Distinct nodes.
    pub nodes: u32,
}

/// Compute footprints for all running jobs from per-node job lists.
pub fn job_footprints(
    node_jobs: &[(NodeId, Vec<JobId>)],
    slots_of: impl Fn(JobId, NodeId) -> u32,
) -> HashMap<JobId, JobFootprint> {
    let mut out: HashMap<JobId, JobFootprint> = HashMap::new();
    for (node, jobs) in node_jobs {
        for &job in jobs {
            let f = out.entry(job).or_insert(JobFootprint { cores: 0, nodes: 0 });
            f.cores += slots_of(job, *node);
            f.nodes += 1;
        }
    }
    out
}

/// Tracks job lists across intervals to estimate finish times: "if a job
/// is in the previous list, but not in the current job list, then that job
/// should be completed before the current collection interval."
#[derive(Debug, Default)]
pub struct FinishEstimator {
    prev: HashSet<JobId>,
}

impl FinishEstimator {
    /// Fresh estimator (first interval estimates nothing).
    pub fn new() -> Self {
        FinishEstimator::default()
    }

    /// Feed the current interval's running set; returns jobs estimated to
    /// have finished since the previous interval, stamped with `now`.
    pub fn observe(
        &mut self,
        running: impl IntoIterator<Item = JobId>,
        now: EpochSecs,
    ) -> Vec<(JobId, EpochSecs)> {
        let current: HashSet<JobId> = running.into_iter().collect();
        let finished: Vec<(JobId, EpochSecs)> =
            self.prev.difference(&current).map(|&id| (id, now)).collect();
        self.prev = current;
        finished
    }
}

/// Reconcile an estimated finish time with ARCo's accurate one once it
/// appears ("this estimated finish time can be updated when ARCo provides
/// an accurate finish time"). Returns the authoritative value.
pub fn reconcile_finish(estimated: EpochSecs, job: &Job) -> EpochSecs {
    match &job.state {
        JobState::Done { end, .. } | JobState::Failed { end, .. } => *end,
        _ => estimated,
    }
}

/// Memory usage standardization: used/total → fraction in [0, 1].
pub fn memory_usage_fraction(used_gib: f64, total_gib: f64) -> f64 {
    if total_gib <= 0.0 {
        return 0.0;
    }
    (used_gib / total_gib).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abnormal_only_health_retention() {
        assert_eq!(health_code_if_abnormal(HealthState::Ok), None);
        assert_eq!(health_code_if_abnormal(HealthState::Warning), Some(1));
        assert_eq!(health_code_if_abnormal(HealthState::Critical), Some(2));
    }

    #[test]
    fn date_conversion() {
        assert_eq!(date_to_epoch("2020-03-09T22:18:16Z").unwrap(), 1_583_792_296);
        assert!(date_to_epoch("not a date").is_err());
    }

    #[test]
    fn finish_estimation_by_list_diff() {
        let mut est = FinishEstimator::new();
        let t1 = EpochSecs::new(60);
        let t2 = EpochSecs::new(120);
        let t3 = EpochSecs::new(180);
        // First interval: nothing to diff against.
        assert!(est.observe([JobId(1), JobId(2)], t1).is_empty());
        // Job 1 disappears.
        let fin = est.observe([JobId(2), JobId(3)], t2);
        assert_eq!(fin, vec![(JobId(1), t2)]);
        // All disappear.
        let mut fin = est.observe([], t3);
        fin.sort();
        assert_eq!(fin, vec![(JobId(2), t3), (JobId(3), t3)]);
        // Empty → empty: nothing spurious.
        assert!(est.observe([], t3 + 60).is_empty());
    }

    #[test]
    fn footprints_summarize_cores_and_nodes() {
        let node_jobs = vec![
            (NodeId::new(1, 1), vec![JobId(10), JobId(11)]),
            (NodeId::new(1, 2), vec![JobId(10)]),
            (NodeId::new(1, 3), vec![JobId(10)]),
        ];
        let fp = job_footprints(&node_jobs, |job, _| if job == JobId(10) { 36 } else { 4 });
        assert_eq!(fp[&JobId(10)], JobFootprint { cores: 108, nodes: 3 });
        assert_eq!(fp[&JobId(11)], JobFootprint { cores: 4, nodes: 1 });
    }

    #[test]
    fn memory_fraction_clamps() {
        assert_eq!(memory_usage_fraction(96.0, 192.0), 0.5);
        assert_eq!(memory_usage_fraction(300.0, 192.0), 1.0);
        assert_eq!(memory_usage_fraction(1.0, 0.0), 0.0);
    }

    #[test]
    fn reconcile_prefers_accurate_end_time() {
        use monster_scheduler::{JobShape, JobSpec};
        use monster_util::UserName;
        let spec = JobSpec {
            user: UserName::new("u"),
            name: "j".into(),
            shape: JobShape::Serial { slots: 1 },
            runtime_secs: 100,
            priority: 0,
            mem_per_slot_gib: 1.0,
        };
        let mut job = Job {
            id: JobId(5),
            spec,
            submit_time: EpochSecs::new(0),
            state: JobState::Running { start: EpochSecs::new(10), hosts: vec![] },
        };
        let est = EpochSecs::new(115);
        assert_eq!(reconcile_finish(est, &job), est);
        job.state =
            JobState::Done { start: EpochSecs::new(10), end: EpochSecs::new(110), hosts: vec![] };
        assert_eq!(reconcile_finish(est, &job), EpochSecs::new(110));
    }
}
