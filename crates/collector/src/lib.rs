//! `monster-collector` — the Metrics Collector service.
//!
//! The centralized collecting agent of §III-B: every interval (60 s) it
//! fans requests out to all BMCs, pulls node/job accounting from the
//! resource manager, **pre-processes** the raw readings (§III-B3), builds
//! data points against a storage schema, and batch-writes them to the
//! TSDB.
//!
//! Two complete schema generations are implemented because the paper's
//! Fig. 13/14 experiments compare them:
//!
//! * [`schema::SchemaVersion::Previous`] — the original deployment's
//!   layout: per-metric measurements carrying threshold metadata and
//!   human-readable date/health strings, **plus** the coexisting second
//!   iteration (a unified metric measurement and one dedicated measurement
//!   per job), exactly the cardinality accident §IV-B2 describes;
//! * [`schema::SchemaVersion::Optimized`] — the redesigned layout: binary
//!   health codes stored only when abnormal, integer epoch times,
//!   consolidated measurements (`Health`, `Power`, `Thermal`, `UGE`,
//!   `JobsInfo`, `NodeJobs` — the §III-C inventory).
//!
//! Pre-processing ([`preprocess`]) implements the §III-B3 rules: health
//! string → binary code (abnormal-only retention), date string → epoch
//! int, job-list diffing to estimate finish times UGE does not report, and
//! derived per-job core/node counts.

#![warn(missing_docs)]

pub mod collector;
pub mod preprocess;
pub mod schema;

pub use collector::{Collector, CollectorConfig, IntervalOutput};
pub use schema::SchemaVersion;
