//! Wire parsing for HTTP/1.1 messages.
//!
//! Framing is `Content-Length` only (MonSTer peers never send chunked
//! bodies). The parsers take the complete message bytes; [`read_message`]
//! handles pulling a full message off a socket.

use crate::message::{Headers, Method, Request, Response, Status};
use monster_util::{Error, Result};
use std::io::Read;

/// Hard cap on header block size — guards the server against garbage.
const MAX_HEAD: usize = 64 * 1024;
/// Hard cap on body size (a full-range uncompressed Metrics Builder
/// response is tens of MB; give headroom).
const MAX_BODY: usize = 512 * 1024 * 1024;

/// Split raw bytes into (head, body) at the CRLFCRLF boundary.
fn split_head(raw: &[u8]) -> Result<(&str, &[u8])> {
    let pos = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| Error::parse("missing header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..pos]).map_err(|_| Error::parse("non-UTF-8 header block"))?;
    Ok((head, &raw[pos + 4..]))
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers> {
    let mut headers = Headers::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| Error::parse(format!("malformed header line {line:?}")))?;
        headers.set(name.trim(), value.trim());
    }
    Ok(headers)
}

fn body_from(headers: &Headers, rest: &[u8]) -> Result<Vec<u8>> {
    let len: usize = headers
        .get("Content-Length")
        .unwrap_or("0")
        .parse()
        .map_err(|_| Error::parse("bad Content-Length"))?;
    if len > MAX_BODY {
        return Err(Error::invalid("body exceeds size cap"));
    }
    if rest.len() < len {
        return Err(Error::parse("body shorter than Content-Length"));
    }
    Ok(rest[..len].to_vec())
}

/// Parse a complete request message.
pub fn parse_request(raw: &[u8]) -> Result<Request> {
    let (head, rest) = split_head(raw)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| Error::parse("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().and_then(Method::parse).ok_or_else(|| Error::parse("bad method"))?;
    let target = parts.next().ok_or_else(|| Error::parse("missing target"))?;
    let version = parts.next().ok_or_else(|| Error::parse("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(Error::parse(format!("unsupported version {version:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let headers = parse_headers(lines)?;
    let body = body_from(&headers, rest)?;
    let keep_alive =
        headers.get("Connection").map(|v| v.eq_ignore_ascii_case("keep-alive")).unwrap_or(false);
    Ok(Request { method, path, query, headers, body, keep_alive })
}

/// Parse a complete response message.
pub fn parse_response(raw: &[u8]) -> Result<Response> {
    let (head, rest) = split_head(raw)?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| Error::parse("empty response"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().ok_or_else(|| Error::parse("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(Error::parse(format!("unsupported version {version:?}")));
    }
    let code: u16 = parts
        .next()
        .ok_or_else(|| Error::parse("missing status"))?
        .parse()
        .map_err(|_| Error::parse("non-numeric status"))?;
    let headers = parse_headers(lines)?;
    let body = body_from(&headers, rest)?;
    Ok(Response { status: Status(code), headers, body: body.into() })
}

/// Read one full `Connection: close`-style message from a stream: reads
/// until the header block is complete, then until `Content-Length` bytes of
/// body have arrived.
pub fn read_message(stream: &mut impl Read) -> Result<Vec<u8>> {
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    // Phase 1: until CRLFCRLF.
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > MAX_HEAD {
            return Err(Error::invalid("header block exceeds size cap"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(Error::Network("connection closed mid-header".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    // Phase 2: find Content-Length in the head.
    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| Error::parse("non-UTF-8 header block"))?;
    let mut content_length = 0usize;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| Error::parse("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(Error::invalid("body exceeds size cap"));
    }
    let total = head_end + content_length;
    while buf.len() < total {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(Error::Network("connection closed mid-body".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    buf.truncate(total);
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_json::jobj;

    #[test]
    fn request_round_trip() {
        let mut r = Request::get("/v1/metrics?interval=5m");
        r.headers.set("Accept", "application/json");
        let parsed = parse_request(&r.to_bytes()).unwrap();
        assert_eq!(parsed.method, Method::Get);
        assert_eq!(parsed.path, "/v1/metrics");
        assert_eq!(parsed.query, "interval=5m");
        assert_eq!(parsed.headers.get("accept"), Some("application/json"));
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn post_round_trip_preserves_body() {
        let v = jobj! { "points" => vec![1i64, 2, 3] };
        let r = Request::post_json("/v1/write", &v);
        let parsed = parse_request(&r.to_bytes()).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(monster_json::parse(std::str::from_utf8(&parsed.body).unwrap()).unwrap(), v);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json(&jobj! { "ok" => true });
        let parsed = parse_response(&resp.to_bytes()).unwrap();
        assert_eq!(parsed.status, Status::OK);
        assert_eq!(parsed.json_body().unwrap(), jobj! { "ok" => true });
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b"GARBAGE"[..],
            b"PATCH / HTTP/1.1\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(parse_request(bad).is_err());
        }
    }

    #[test]
    fn read_message_handles_fragmented_delivery() {
        // A reader that returns one byte at a time.
        struct Trickle(Vec<u8>, usize);
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let msg = Response::json(&jobj! { "v" => 42i64 }).to_bytes();
        let mut t = Trickle(msg.clone(), 0);
        let got = read_message(&mut t).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn read_message_errors_on_truncation() {
        struct Fixed(std::io::Cursor<Vec<u8>>);
        impl Read for Fixed {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.0.read(buf)
            }
        }
        let mut msg = Response::json(&jobj! { "v" => 42i64 }).to_bytes();
        msg.truncate(msg.len() - 3);
        let mut f = Fixed(std::io::Cursor::new(msg));
        assert!(matches!(read_message(&mut f), Err(Error::Network(_))));
    }

    #[test]
    fn status_codes_survive_round_trip() {
        for status in [Status::NOT_FOUND, Status::SERVICE_UNAVAILABLE, Status::BAD_REQUEST] {
            let resp = Response::error(status, "why");
            let parsed = parse_response(&resp.to_bytes()).unwrap();
            assert_eq!(parsed.status, status);
            assert_eq!(parsed.body, b"why");
        }
    }
}
