//! `monster-http` — a minimal HTTP/1.1 stack.
//!
//! MonSTer's external surfaces are HTTP: the Redfish API the Metrics
//! Collector polls, and the Metrics Builder API that analysis tools like
//! HiperJobViz consume (§III-D). The workspace cannot pull in a web
//! framework, so this crate implements the slice of HTTP/1.1 the system
//! needs:
//!
//! * [`Request`] / [`Response`] messages with case-insensitive headers;
//! * a wire [`parse`](parse::parse_request) / serializer pair;
//! * a thread-per-connection [`Server`] with a path-pattern [`Router`];
//! * a blocking [`Client`] with connect/read timeouts;
//! * `Content-Encoding: mz1` response compression via `monster-compress`
//!   (both peers are in-workspace, so the private coding is fine).
//!
//! Bodies are `Content-Length`-framed. Connections default to
//! `Connection: close`; clients that poll repeatedly (the collector, the
//! Metrics Builder's database link) use [`PersistentClient`] and
//! `Connection: keep-alive` to amortize handshakes.

#![warn(missing_docs)]

mod client;
mod message;
mod parse;
mod router;
mod server;

pub use client::{Client, PersistentClient};
pub use message::{Body, Headers, Method, Request, Response, Status};
pub use parse::{parse_request, parse_response};
pub use router::{PathParams, Router};
pub use server::Server;
