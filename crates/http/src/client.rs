//! A blocking HTTP client with connect/read timeouts.
//!
//! The Metrics Collector's BMC polling loop needs exactly what §III-B1
//! describes: "connection timeout, read timeout, and retry mechanisms".
//! Timeouts live here; the retry policy lives with the caller (the Redfish
//! client), which knows which failures are worth retrying.

use crate::message::{Request, Response};
use crate::parse::{parse_response, read_message};
use monster_util::{Error, Result};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A reusable client configuration (no connection pooling — peers close
/// after one exchange).
#[derive(Debug, Clone)]
pub struct Client {
    connect_timeout: Duration,
    read_timeout: Duration,
}

impl Default for Client {
    fn default() -> Self {
        Self::new()
    }
}

impl Client {
    /// Defaults: 5 s connect, 30 s read.
    pub fn new() -> Self {
        Client { connect_timeout: Duration::from_secs(5), read_timeout: Duration::from_secs(30) }
    }

    /// Override the connect timeout.
    pub fn with_connect_timeout(mut self, d: Duration) -> Self {
        self.connect_timeout = d;
        self
    }

    /// Override the read timeout.
    pub fn with_read_timeout(mut self, d: Duration) -> Self {
        self.read_timeout = d;
        self
    }

    /// Send one request and wait for the full response.
    pub fn send(&self, addr: SocketAddr, req: &Request) -> Result<Response> {
        let mut stream = TcpStream::connect_timeout(&addr, self.connect_timeout).map_err(|e| {
            match e.kind() {
                std::io::ErrorKind::TimedOut => Error::Timeout("connect".into()),
                _ => Error::Network(format!("connect to {addr}: {e}")),
            }
        })?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        stream.set_nodelay(true).ok();
        stream.write_all(&req.to_bytes()).map_err(|e| Error::Network(format!("send: {e}")))?;
        let raw = read_message(&mut stream)?;
        let resp = parse_response(&raw)?;
        Ok(resp)
    }

    /// Send and fail unless the status is 2xx.
    pub fn send_ok(&self, addr: SocketAddr, req: &Request) -> Result<Response> {
        let resp = self.send(addr, req)?;
        if resp.status.is_success() {
            Ok(resp)
        } else {
            Err(Error::Http {
                status: resp.status.0,
                message: String::from_utf8_lossy(&resp.body).into_owned(),
            })
        }
    }
}

/// A client that holds one TCP connection open across requests
/// (`Connection: keep-alive`) — what a production collector uses to avoid
/// 1868 handshakes per sweep. Reconnects transparently after errors or a
/// server-side close.
pub struct PersistentClient {
    addr: SocketAddr,
    config: Client,
    stream: Option<TcpStream>,
    /// Exchanges completed on the current connection (observability).
    reused: usize,
}

impl PersistentClient {
    /// A persistent client for one peer.
    pub fn new(addr: SocketAddr, config: Client) -> Self {
        PersistentClient { addr, config, stream: None, reused: 0 }
    }

    /// Exchanges served without reconnecting.
    pub fn reuse_count(&self) -> usize {
        self.reused
    }

    fn connect(&mut self) -> Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
                .map_err(|e| Error::Network(format!("connect to {}: {e}", self.addr)))?;
            stream.set_read_timeout(Some(self.config.read_timeout))?;
            stream.set_nodelay(true).ok();
            self.stream = Some(stream);
            self.reused = 0;
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Send one request over the persistent connection. The request is
    /// forced to `keep-alive`; one transparent retry covers a stale
    /// connection the server already closed.
    pub fn send(&mut self, req: &Request) -> Result<Response> {
        let wire = req.clone().keep_alive().to_bytes();
        for attempt in 0..2 {
            let stream = self.connect()?;
            let outcome = stream
                .write_all(&wire)
                .map_err(|e| Error::Network(format!("send: {e}")))
                .and_then(|()| read_message(stream))
                .and_then(|raw| parse_response(&raw));
            match outcome {
                Ok(resp) => {
                    self.reused += 1;
                    return Ok(resp);
                }
                Err(e @ Error::Network(_)) if attempt == 0 => {
                    // Stale connection (server closed between exchanges):
                    // reconnect once. Timeouts are NOT replayed — the peer
                    // may have processed the request (double-writes on
                    // POST /write would corrupt the database).
                    let _ = e;
                    self.stream = None;
                }
                Err(e) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
        unreachable!("loop returns on success or error")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Method, Status};
    use crate::router::Router;
    use crate::server::Server;
    use monster_json::jobj;

    #[test]
    fn send_ok_raises_on_http_error() {
        let router = Router::new().route(Method::Get, "/boom", |_, _| {
            Response::error(Status::SERVICE_UNAVAILABLE, "bmc busy")
        });
        let server = Server::spawn(0, router).unwrap();
        let client = Client::new();
        let err = client.send_ok(server.addr(), &Request::get("/boom")).unwrap_err();
        assert_eq!(err, Error::Http { status: 503, message: "bmc busy".into() });
    }

    #[test]
    fn connect_to_dead_port_is_network_error() {
        // Bind then drop to get a port that refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = Client::new().with_connect_timeout(Duration::from_millis(500));
        let err = client.send(addr, &Request::get("/")).unwrap_err();
        assert!(err.is_retryable(), "got {err}");
    }

    #[test]
    fn read_timeout_fires_on_silent_server() {
        // A listener that accepts but never responds.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _keep = std::thread::spawn(move || {
            let conn = listener.accept().map(|(s, _)| s);
            std::thread::sleep(Duration::from_secs(2));
            drop(conn);
        });
        let client = Client::new().with_read_timeout(Duration::from_millis(200));
        let start = std::time::Instant::now();
        let err = client.send(addr, &Request::get("/")).unwrap_err();
        assert!(err.is_retryable(), "got {err}");
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn full_exchange_against_real_server() {
        let router = Router::new()
            .route(Method::Get, "/v", |_, _| Response::json(&jobj! { "version" => "1.0" }));
        let server = Server::spawn(0, router).unwrap();
        let resp = Client::new().send_ok(server.addr(), &Request::get("/v")).unwrap();
        assert_eq!(resp.json_body().unwrap().get("version").unwrap().as_str(), Some("1.0"));
    }
}
