//! A thread-per-connection HTTP server.
//!
//! Serves a [`Router`] on a TCP listener. Each connection serves one
//! exchange by default, or a sequence of them under `Connection:
//! keep-alive`. Shutdown is cooperative: a flag plus a self-connect to
//! unblock `accept`.

use crate::message::{Response, Status};
use crate::parse::{parse_request, read_message};
use crate::router::Router;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running HTTP server.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind to `127.0.0.1:port` (port 0 picks a free port) and serve
    /// `router` until [`Server::shutdown`] or drop.
    pub fn spawn(port: u16, router: Router) -> monster_util::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let router = Arc::new(router);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let router = Arc::clone(&router);
                // A thread per connection is plenty for the monitoring
                // workload: a handful of persistent peers plus occasional
                // one-shot consumers.
                std::thread::spawn(move || {
                    handle_connection(stream, &router);
                });
            }
        });
        Ok(Server { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL (`http://127.0.0.1:PORT`).
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, router: &Router) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
    // Serve exchanges until the client closes, asks to close, or errors.
    loop {
        let (response, keep_alive) =
            match read_message(&mut stream).and_then(|raw| parse_request(&raw)) {
                Ok(req) => {
                    let keep = req.keep_alive;
                    (router.dispatch(&req), keep)
                }
                Err(monster_util::Error::Network(_)) => return, // client went away
                Err(e) => (Response::error(Status::BAD_REQUEST, &e.to_string()), false),
            };
        let wire = if keep_alive { response.to_bytes_keep_alive() } else { response.to_bytes() };
        if stream.write_all(&wire).is_err() || stream.flush().is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::message::{Method, Request};
    use monster_json::jobj;

    fn test_router() -> Router {
        Router::new()
            .route(Method::Get, "/ping", |_, _| Response::json(&jobj! { "pong" => true }))
            .route(Method::Post, "/echo", |req, _| {
                Response::bytes(req.body.clone(), "application/octet-stream")
            })
    }

    #[test]
    fn serves_and_shuts_down() {
        let mut server = Server::spawn(0, test_router()).unwrap();
        let client = Client::new();
        let resp = client.send(server.addr(), &Request::get("/ping")).unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.json_body().unwrap(), jobj! { "pong" => true });
        server.shutdown();
        // Idempotent shutdown.
        server.shutdown();
    }

    #[test]
    fn post_bodies_echo() {
        let server = Server::spawn(0, test_router()).unwrap();
        let client = Client::new();
        let payload = jobj! { "xs" => vec![1i64, 2, 3] };
        let resp = client.send(server.addr(), &Request::post_json("/echo", &payload)).unwrap();
        assert_eq!(resp.body, payload.to_string_compact().into_bytes());
    }

    #[test]
    fn unknown_route_is_404() {
        let server = Server::spawn(0, test_router()).unwrap();
        let client = Client::new();
        let resp = client.send(server.addr(), &Request::get("/missing")).unwrap();
        assert_eq!(resp.status, Status::NOT_FOUND);
    }

    #[test]
    fn concurrent_requests_all_answered() {
        let server = Server::spawn(0, test_router()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                std::thread::spawn(move || {
                    let client = Client::new();
                    client.send(addr, &Request::get("/ping")).unwrap().status
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), Status::OK);
        }
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = Server::spawn(0, test_router()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let raw = read_message(&mut stream).unwrap();
        let resp = crate::parse::parse_response(&raw).unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
    }
}
