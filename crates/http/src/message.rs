//! HTTP message types: methods, statuses, headers, requests, responses.

use monster_json::Value;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Request methods MonSTer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Resource reads (Redfish queries, Metrics Builder API).
    Get,
    /// Writes (TSDB batch ingest endpoint).
    Post,
    /// Deletes (administrative endpoints).
    Delete,
}

impl Method {
    /// Parse from the request-line token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }

    /// The wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Response status codes MonSTer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// 200.
    pub const OK: Status = Status(200);
    /// 204.
    pub const NO_CONTENT: Status = Status(204);
    /// 400.
    pub const BAD_REQUEST: Status = Status(400);
    /// 404.
    pub const NOT_FOUND: Status = Status(404);
    /// 405.
    pub const METHOD_NOT_ALLOWED: Status = Status(405);
    /// 429 — cost-based admission control turning work away; comes with a
    /// `Retry-After` header.
    pub const TOO_MANY_REQUESTS: Status = Status(429);
    /// 500.
    pub const INTERNAL_ERROR: Status = Status(500);
    /// 503 — what an overloaded iDRAC answers (§III-B1's retry motivation).
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    /// Canonical reason phrase.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// 2xx check.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// Case-insensitive header multimap (last write wins per name).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Empty header set.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Set a header, replacing any existing value for the same
    /// (case-insensitive) name.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n.eq_ignore_ascii_case(&name)) {
            e.1 = value;
        } else {
            self.entries.push((name, value));
        }
    }

    /// Case-insensitive lookup.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Remove a header (case-insensitive), returning its value if present.
    pub fn remove(&mut self, name: &str) -> Option<String> {
        let idx = self.entries.iter().position(|(n, _)| n.eq_ignore_ascii_case(name))?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path component (no scheme/host), e.g. `/redfish/v1/Chassis/...`.
    pub path: String,
    /// Raw query string (without `?`), empty if none.
    pub query: String,
    /// Headers.
    pub headers: Headers,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Request connection reuse after this exchange (`Connection:
    /// keep-alive`). Default: close.
    pub keep_alive: bool,
}

impl Request {
    /// A GET request for `path` (optionally with `?query`).
    pub fn get(path_and_query: &str) -> Request {
        let (path, query) = split_query(path_and_query);
        Request {
            method: Method::Get,
            path,
            query,
            headers: Headers::new(),
            body: Vec::new(),
            keep_alive: false,
        }
    }

    /// Request connection reuse after this exchange.
    pub fn keep_alive(mut self) -> Request {
        self.keep_alive = true;
        self
    }

    /// Builder-style header attachment (e.g. a `traceparent` to join the
    /// caller's distributed trace).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.set(name, value);
        self
    }

    /// A POST with a JSON body.
    pub fn post_json(path_and_query: &str, v: &Value) -> Request {
        let (path, query) = split_query(path_and_query);
        let body = v.to_string_compact().into_bytes();
        let mut headers = Headers::new();
        headers.set("Content-Type", "application/json");
        Request { method: Method::Post, path, query, headers, body, keep_alive: false }
    }

    /// Decode one query parameter (`key=value`, percent-decoding not needed
    /// for MonSTer's token-only parameters).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Serialize onto the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        let target = if self.query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, self.query)
        };
        out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", self.method, target).as_bytes());
        for (n, v) in self.headers.iter() {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        if self.keep_alive {
            out.extend_from_slice(b"Connection: keep-alive\r\n\r\n");
        } else {
            out.extend_from_slice(b"Connection: close\r\n\r\n");
        }
        out.extend_from_slice(&self.body);
        out
    }
}

fn split_query(s: &str) -> (String, String) {
    match s.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (s.to_string(), String::new()),
    }
}

/// Response body bytes behind a shared, immutable buffer.
///
/// Cloning a `Body` (and therefore a [`Response`]) bumps a reference
/// count instead of copying the payload — the builder's response cache
/// serves one stored body to any number of concurrent dashboard requests
/// with zero byte copies. Reads go through `Deref<Target = [u8]>`, so
/// `&resp.body` works anywhere a byte slice is expected.
#[derive(Debug, Clone)]
pub struct Body(Arc<[u8]>);

impl Body {
    /// An empty body.
    pub fn empty() -> Body {
        Body(Arc::from(&[][..]))
    }

    /// Copy the bytes out into an owned vector (the one place a copy is
    /// explicit).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Body {
    fn default() -> Self {
        Body::empty()
    }
}

impl Deref for Body {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Body {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Body {
    fn from(bytes: Vec<u8>) -> Body {
        Body(Arc::from(bytes))
    }
}

impl From<&[u8]> for Body {
    fn from(bytes: &[u8]) -> Body {
        Body(Arc::from(bytes))
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Body) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Body {}

impl PartialEq<Vec<u8>> for Body {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Body {
    fn eq(&self, other: &&[u8]) -> bool {
        self.0[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Body {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.0[..] == other[..]
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Headers.
    pub headers: Headers,
    /// Body bytes (shared; see [`Body`]).
    pub body: Body,
}

impl Response {
    /// 200 with a JSON body.
    pub fn json(v: &Value) -> Response {
        let mut headers = Headers::new();
        headers.set("Content-Type", "application/json");
        Response { status: Status::OK, headers, body: v.to_string_compact().into_bytes().into() }
    }

    /// 200 with raw bytes and a content type.
    pub fn bytes(body: Vec<u8>, content_type: &str) -> Response {
        let mut headers = Headers::new();
        headers.set("Content-Type", content_type.to_string());
        Response { status: Status::OK, headers, body: body.into() }
    }

    /// An error response with a plain-text body.
    pub fn error(status: Status, msg: &str) -> Response {
        let mut headers = Headers::new();
        headers.set("Content-Type", "text/plain");
        Response { status, headers, body: msg.as_bytes().into() }
    }

    /// Parse the body as JSON (after transparent `mz1` decoding if the
    /// `Content-Encoding` header says so).
    pub fn json_body(&self) -> monster_util::Result<Value> {
        let body = self.decoded_body()?;
        monster_json::parse(
            std::str::from_utf8(&body)
                .map_err(|_| monster_util::Error::parse("response body is not UTF-8"))?,
        )
    }

    /// The body with any `mz1` content-encoding removed.
    pub fn decoded_body(&self) -> monster_util::Result<Vec<u8>> {
        if self.headers.get("Content-Encoding") == Some("mz1") {
            monster_compress::decompress(&self.body)
        } else {
            Ok(self.body.to_vec())
        }
    }

    /// Compress the body in place with `mz1` and tag the header.
    pub fn compressed(mut self, level: monster_compress::Level) -> Response {
        self.body = monster_compress::compress(&self.body, level).into();
        self.headers.set("Content-Encoding", "mz1");
        self
    }

    /// Serialize onto the wire with `Connection: close`.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode(false)
    }

    /// Serialize onto the wire with `Connection: keep-alive`.
    pub fn to_bytes_keep_alive(&self) -> Vec<u8> {
        self.encode(true)
    }

    fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status.0, self.status.reason()).as_bytes(),
        );
        for (n, v) in self.headers.iter() {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        if keep_alive {
            out.extend_from_slice(b"Connection: keep-alive\r\n\r\n");
        } else {
            out.extend_from_slice(b"Connection: close\r\n\r\n");
        }
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_json::jobj;

    #[test]
    fn headers_are_case_insensitive_and_replace() {
        let mut h = Headers::new();
        h.set("Content-Type", "a");
        h.set("content-type", "b");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("CONTENT-TYPE"), Some("b"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn headers_remove_is_case_insensitive() {
        let mut h = Headers::new();
        h.set("Content-Type", "a");
        h.set("X-Cache", "hit");
        assert_eq!(h.remove("content-type"), Some("a".to_string()));
        assert_eq!(h.remove("content-type"), None);
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("X-Cache"), Some("hit"));
    }

    #[test]
    fn query_param_extraction() {
        let r = Request::get("/v1/metrics?start=2020-04-20T12:00:00Z&interval=5m&agg=max");
        assert_eq!(r.path, "/v1/metrics");
        assert_eq!(r.query_param("interval"), Some("5m"));
        assert_eq!(r.query_param("agg"), Some("max"));
        assert_eq!(r.query_param("nope"), None);
    }

    #[test]
    fn request_wire_format() {
        let r = Request::get("/redfish/v1/Chassis/System.Embedded.1/Thermal/");
        let s = String::from_utf8(r.to_bytes()).unwrap();
        assert!(s.starts_with("GET /redfish/v1/Chassis/System.Embedded.1/Thermal/ HTTP/1.1\r\n"));
        assert!(s.contains("Content-Length: 0\r\n"));
        assert!(s.ends_with("\r\n\r\n"));
    }

    #[test]
    fn response_json_round_trip() {
        let v = jobj! { "Reading" => 273.8 };
        let resp = Response::json(&v);
        assert_eq!(resp.json_body().unwrap(), v);
        assert!(resp.status.is_success());
    }

    #[test]
    fn compressed_response_decodes_transparently() {
        let v = jobj! { "data" => "x".repeat(2000) };
        let resp = Response::json(&v).compressed(monster_compress::Level::default());
        assert_eq!(resp.headers.get("Content-Encoding"), Some("mz1"));
        assert!(resp.body.len() < 500);
        assert_eq!(resp.json_body().unwrap(), v);
    }

    #[test]
    fn status_reasons() {
        assert_eq!(Status::OK.reason(), "OK");
        assert_eq!(Status::SERVICE_UNAVAILABLE.reason(), "Service Unavailable");
        assert!(!Status::NOT_FOUND.is_success());
    }

    #[test]
    fn method_parsing() {
        assert_eq!(Method::parse("GET"), Some(Method::Get));
        assert_eq!(Method::parse("POST"), Some(Method::Post));
        assert_eq!(Method::parse("PATCH"), None);
    }
}
