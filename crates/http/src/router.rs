//! Path-pattern routing.
//!
//! Patterns are `/`-separated segments; a segment starting with `:` binds a
//! parameter, and a trailing `*rest` binds the remainder of the path. The
//! Redfish tree uses the wildcard form (`/redfish/v1/*rest`), the Metrics
//! Builder API uses named params (`/v1/metrics/:node`).

use crate::message::{Method, Request, Response, Status};
use std::collections::HashMap;

/// Parameters bound by a route match.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathParams {
    map: HashMap<String, String>,
}

impl PathParams {
    /// Look up a bound parameter.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }
}

type Handler = Box<dyn Fn(&Request, &PathParams) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Seg>,
    handler: Handler,
}

enum Seg {
    Literal(String),
    Param(String),
    Wildcard(String),
}

/// A method+path router.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Router { routes: Vec::new() }
    }

    /// Register a route. Panics on malformed patterns (a wildcard not in
    /// final position).
    pub fn route(
        mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> Self {
        let segments: Vec<Seg> = pattern
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Seg::Param(name.to_string())
                } else if let Some(name) = s.strip_prefix('*') {
                    Seg::Wildcard(name.to_string())
                } else {
                    Seg::Literal(s.to_string())
                }
            })
            .collect();
        let wild_pos = segments.iter().position(|s| matches!(s, Seg::Wildcard(_)));
        if let Some(p) = wild_pos {
            assert!(p == segments.len() - 1, "wildcard must be final segment");
        }
        self.routes.push(Route { method, segments, handler: Box::new(handler) });
        self
    }

    /// Dispatch a request. Distinguishes 404 (no path match) from 405
    /// (path matched under a different method).
    pub fn dispatch(&self, req: &Request) -> Response {
        let parts: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        let mut path_matched = false;
        for route in &self.routes {
            if let Some(params) = match_route(&route.segments, &parts) {
                if route.method == req.method {
                    return (route.handler)(req, &params);
                }
                path_matched = true;
            }
        }
        if path_matched {
            Response::error(Status::METHOD_NOT_ALLOWED, "method not allowed")
        } else {
            Response::error(Status::NOT_FOUND, &format!("no route for {}", req.path))
        }
    }
}

fn match_route(segments: &[Seg], parts: &[&str]) -> Option<PathParams> {
    let mut params = PathParams::default();
    let mut i = 0;
    for seg in segments {
        match seg {
            Seg::Literal(lit) => {
                if parts.get(i) != Some(&lit.as_str()) {
                    return None;
                }
                i += 1;
            }
            Seg::Param(name) => {
                let v = parts.get(i)?;
                params.map.insert(name.clone(), (*v).to_string());
                i += 1;
            }
            Seg::Wildcard(name) => {
                // Bind the rest (possibly empty) and consume everything.
                params.map.insert(name.clone(), parts[i..].join("/"));
                i = parts.len();
            }
        }
    }
    (i == parts.len()).then_some(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_json::jobj;

    fn router() -> Router {
        Router::new()
            .route(Method::Get, "/v1/health", |_, _| Response::json(&jobj! { "ok" => true }))
            .route(Method::Get, "/v1/metrics/:node", |_, p| {
                Response::json(&jobj! { "node" => p.get("node").unwrap() })
            })
            .route(Method::Get, "/redfish/v1/*rest", |_, p| {
                Response::json(&jobj! { "rest" => p.get("rest").unwrap() })
            })
            .route(Method::Post, "/v1/write", |req, _| {
                Response::json(&jobj! { "received" => req.body.len() })
            })
    }

    #[test]
    fn literal_route() {
        let r = router().dispatch(&Request::get("/v1/health"));
        assert_eq!(r.status, Status::OK);
    }

    #[test]
    fn param_binding() {
        let r = router().dispatch(&Request::get("/v1/metrics/10.101.1.1"));
        assert_eq!(r.json_body().unwrap().get("node").unwrap().as_str(), Some("10.101.1.1"));
    }

    #[test]
    fn wildcard_binds_remainder() {
        let r = router().dispatch(&Request::get("/redfish/v1/Chassis/System.Embedded.1/Thermal"));
        assert_eq!(
            r.json_body().unwrap().get("rest").unwrap().as_str(),
            Some("Chassis/System.Embedded.1/Thermal")
        );
    }

    #[test]
    fn not_found_vs_method_not_allowed() {
        assert_eq!(router().dispatch(&Request::get("/nope")).status, Status::NOT_FOUND);
        let mut post = Request::get("/v1/health");
        post.method = Method::Post;
        assert_eq!(router().dispatch(&post).status, Status::METHOD_NOT_ALLOWED);
    }

    #[test]
    fn trailing_slash_is_tolerated() {
        // Redfish URLs in the paper end with '/'.
        let r = router().dispatch(&Request::get("/v1/health/"));
        assert_eq!(r.status, Status::OK);
    }

    #[test]
    fn param_routes_do_not_eat_longer_paths() {
        assert_eq!(router().dispatch(&Request::get("/v1/metrics/a/b")).status, Status::NOT_FOUND);
    }

    #[test]
    #[should_panic(expected = "wildcard")]
    fn wildcard_must_be_last() {
        let _ = Router::new().route(Method::Get, "/a/*x/b", |_, _| Response::error(Status::OK, ""));
    }
}
