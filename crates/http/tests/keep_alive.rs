//! Keep-alive behaviour: one connection, many exchanges.

use monster_http::{Client, Method, PersistentClient, Request, Response, Router, Server, Status};
use monster_json::jobj;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A router that counts requests and reports a per-connection-ish counter.
fn counting_router(counter: Arc<AtomicUsize>) -> Router {
    Router::new().route(Method::Get, "/n", move |_, _| {
        let n = counter.fetch_add(1, Ordering::SeqCst);
        Response::json(&jobj! { "n" => n as i64 })
    })
}

#[test]
fn persistent_client_reuses_one_connection() {
    let counter = Arc::new(AtomicUsize::new(0));
    let server = Server::spawn(0, counting_router(Arc::clone(&counter))).unwrap();
    let mut pc = PersistentClient::new(server.addr(), Client::new());
    for expect in 0..10i64 {
        let resp = pc.send(&Request::get("/n")).unwrap();
        assert_eq!(resp.json_body().unwrap().get("n").unwrap().as_i64(), Some(expect));
    }
    // All ten exchanges went over the same connection.
    assert_eq!(pc.reuse_count(), 10);
    assert_eq!(counter.load(Ordering::SeqCst), 10);
}

#[test]
fn close_requests_still_close() {
    let counter = Arc::new(AtomicUsize::new(0));
    let server = Server::spawn(0, counting_router(counter)).unwrap();
    // The plain client sends Connection: close; a fresh connection each
    // time still works against the keep-alive-capable server.
    let client = Client::new();
    for _ in 0..3 {
        let resp = client.send(server.addr(), &Request::get("/n")).unwrap();
        assert_eq!(resp.status, Status::OK);
        // Server honours close: the response says so.
        assert_eq!(resp.headers.get("Connection"), Some("close"));
    }
}

#[test]
fn persistent_client_survives_server_restart() {
    let counter = Arc::new(AtomicUsize::new(0));
    let mut server = Server::spawn(0, counting_router(Arc::clone(&counter))).unwrap();
    let addr = server.addr();
    let mut pc = PersistentClient::new(addr, Client::new());
    assert!(pc.send(&Request::get("/n")).is_ok());

    // Kill and rebind on the same port (retry a few times: the OS may
    // briefly hold the port).
    server.shutdown();
    drop(server);
    let mut revived = None;
    for _ in 0..20 {
        match Server::spawn(addr.port(), counting_router(Arc::clone(&counter))) {
            Ok(s) => {
                revived = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }
    let _revived = revived.expect("rebind");

    // The old connection is dead; the client reconnects transparently.
    let resp = pc.send(&Request::get("/n")).unwrap();
    assert_eq!(resp.status, Status::OK);
}

#[test]
fn mixed_keep_alive_and_close_on_same_server() {
    let counter = Arc::new(AtomicUsize::new(0));
    let server = Server::spawn(0, counting_router(counter)).unwrap();
    let mut pc = PersistentClient::new(server.addr(), Client::new());
    let oneshot = Client::new();
    for _ in 0..3 {
        assert!(pc.send(&Request::get("/n")).is_ok());
        assert!(oneshot.send(server.addr(), &Request::get("/n")).is_ok());
    }
    assert_eq!(pc.reuse_count(), 3);
}
