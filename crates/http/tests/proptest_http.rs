//! Property tests: HTTP wire codec round trips and parser robustness.

use monster_http::{parse_request, parse_response, Method, Request, Response, Status};
use proptest::prelude::*;

fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9._-]{1,12}", 1..5)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn get_requests_round_trip(
        path in arb_path(),
        params in prop::collection::vec(("[a-z]{1,8}", "[a-zA-Z0-9:.-]{1,16}"), 0..4),
    ) {
        let query: String = params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("&");
        let target = if query.is_empty() { path.clone() } else { format!("{path}?{query}") };
        let req = Request::get(&target);
        let parsed = parse_request(&req.to_bytes()).unwrap();
        prop_assert_eq!(parsed.method, Method::Get);
        prop_assert_eq!(&parsed.path, &path);
        for (k, v) in &params {
            // Later duplicates shadow earlier ones in query_param; check
            // the first occurrence only.
            if params.iter().position(|(k2, _)| k2 == k)
                == params.iter().position(|(k2, v2)| k2 == k && v2 == v)
            {
                prop_assert_eq!(parsed.query_param(k), Some(v.as_str()));
            }
        }
    }

    #[test]
    fn bodies_round_trip(body in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut req = Request::get("/upload");
        req.method = Method::Post;
        req.body = body.clone();
        let parsed = parse_request(&req.to_bytes()).unwrap();
        prop_assert_eq!(parsed.body, body.clone());

        let resp = Response::bytes(body.clone(), "application/octet-stream");
        let parsed = parse_response(&resp.to_bytes()).unwrap();
        prop_assert_eq!(parsed.status, Status::OK);
        prop_assert_eq!(parsed.body, body);
    }

    #[test]
    fn parsers_never_panic_on_garbage(data in prop::collection::vec(any::<u8>(), 0..1024)) {
        let _ = parse_request(&data);
        let _ = parse_response(&data);
    }

    #[test]
    fn truncated_messages_error_not_panic(body in prop::collection::vec(any::<u8>(), 1..256), cut_frac in 0.0f64..1.0) {
        let resp = Response::bytes(body, "application/octet-stream");
        let wire = resp.to_bytes();
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        if cut < wire.len() {
            // Either fails (truncated) or succeeds iff the cut only
            // removed body bytes beyond Content-Length (impossible here),
            // so: must fail.
            prop_assert!(parse_response(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn header_values_survive(value in "[ -~&&[^\r\n]]{1,40}") {
        let mut req = Request::get("/h");
        req.headers.set("X-Test", value.trim());
        let parsed = parse_request(&req.to_bytes()).unwrap();
        prop_assert_eq!(parsed.headers.get("x-test"), Some(value.trim()));
    }
}
