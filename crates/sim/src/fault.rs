//! Named fault profiles: deterministic, seeded schedules of per-entity
//! failure/stall-rate changes over virtual time.
//!
//! Production HPC monitors treat flaky node agents as the normal case, not
//! the exception: §III-B1 measures 4.29 s mean BMC requests with stalls and
//! drops against a 60 s cadence. A profile turns that qualitative statement
//! into a replayable schedule — given (profile, seed, entity index, tick) it
//! returns the fault rates in force, so a chaos run is exactly reproducible
//! across machines and across the CI matrix.
//!
//! Profiles are generic over "entities" (the Redfish layer maps them to
//! nodes) and "ticks" (the collector maps them to sweeps), so this module
//! stays free of any fleet-specific types.

use crate::rng::SimRng;

/// Racks a fleet is partitioned into for rack-granular profiles.
pub const RACKS: usize = 8;

/// The fault rates in force for one entity at one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability a request is refused outright, per attempt.
    pub failure_rate: f64,
    /// Probability a request stalls past the read timeout, per attempt.
    pub stall_rate: f64,
    /// The entity is entirely unreachable (powered off / crashed BMC).
    pub dead: bool,
}

impl FaultSpec {
    /// No faults injected.
    pub const NONE: FaultSpec = FaultSpec { failure_rate: 0.0, stall_rate: 0.0, dead: false };

    /// True when this spec perturbs the entity at all.
    pub fn is_faulty(&self) -> bool {
        self.dead || self.failure_rate > 0.0 || self.stall_rate > 0.0
    }
}

/// A named, seeded fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No faults, ever — the control cell.
    Calm,
    /// A seeded ~15% of entities stall heavily (the long-tail iDRACs the
    /// paper's retry machinery exists for); everyone else is clean.
    FlakyTail,
    /// A brownout window rolls across racks 0..6 every few ticks: the rack
    /// under the window refuses and stalls, then recovers as the window
    /// moves on. Racks 6 and 7 are never touched.
    RollingBrownout,
    /// One seeded rack is entirely dead (unreachable BMCs) for the active
    /// phase.
    DeadRack,
}

impl FaultProfile {
    /// Every profile, in matrix order.
    pub const ALL: [FaultProfile; 4] = [
        FaultProfile::Calm,
        FaultProfile::FlakyTail,
        FaultProfile::RollingBrownout,
        FaultProfile::DeadRack,
    ];

    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultProfile::Calm => "calm",
            FaultProfile::FlakyTail => "flaky-tail",
            FaultProfile::RollingBrownout => "rolling-brownout",
            FaultProfile::DeadRack => "dead-rack",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<FaultProfile> {
        FaultProfile::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Which rack an entity lives in (`RACKS` equal slices in index order).
    pub fn rack_of(entity: usize, total: usize) -> usize {
        if total == 0 {
            return 0;
        }
        (entity * RACKS / total).min(RACKS - 1)
    }

    /// The fault spec for `entity` (of `total`) at `tick`, while the
    /// profile is active for `active_ticks` ticks. From `active_ticks`
    /// onward every profile is clear — the recovery phase chaos runs use to
    /// assert that breakers close and staleness drains.
    ///
    /// Deterministic: depends only on (profile, seed, entity, total, tick).
    pub fn spec(
        &self,
        seed: u64,
        entity: usize,
        total: usize,
        tick: u64,
        active_ticks: u64,
    ) -> FaultSpec {
        if tick >= active_ticks {
            return FaultSpec::NONE;
        }
        match self {
            FaultProfile::Calm => FaultSpec::NONE,
            FaultProfile::FlakyTail => {
                let mut rng = SimRng::derive(seed, &format!("fault/flaky-tail/{entity}"));
                if rng.chance(0.15) {
                    FaultSpec { failure_rate: 0.10, stall_rate: 0.85, dead: false }
                } else {
                    FaultSpec::NONE
                }
            }
            FaultProfile::RollingBrownout => {
                // The window advances one rack every 3 ticks and never
                // reaches racks 6-7, so part of the fleet stays healthy.
                let window = (tick / 3) as usize % (RACKS - 2);
                if Self::rack_of(entity, total) == window {
                    FaultSpec { failure_rate: 0.60, stall_rate: 0.30, dead: false }
                } else {
                    FaultSpec::NONE
                }
            }
            FaultProfile::DeadRack => {
                let mut rng = SimRng::derive(seed, "fault/dead-rack");
                let victim = rng.below(RACKS);
                if Self::rack_of(entity, total) == victim {
                    FaultSpec { failure_rate: 0.0, stall_rate: 0.0, dead: true }
                } else {
                    FaultSpec::NONE
                }
            }
        }
    }

    /// Entities this profile ever perturbs over `[0, active_ticks)` — the
    /// complement is the "healthy set" chaos invariants are checked
    /// against.
    pub fn perturbed(&self, seed: u64, total: usize, active_ticks: u64) -> Vec<usize> {
        let mut out = Vec::new();
        for entity in 0..total {
            let touched = (0..active_ticks)
                .any(|t| self.spec(seed, entity, total, t, active_ticks).is_faulty());
            if touched {
                out.push(entity);
            }
        }
        out
    }

    /// Entities this profile kills outright (dead BMCs, not merely flaky)
    /// at any point in `[0, active_ticks)` — the set an alert engine must
    /// flag unreachable, with exactly one critical each.
    pub fn dead_entities(&self, seed: u64, total: usize, active_ticks: u64) -> Vec<usize> {
        (0..total)
            .filter(|&entity| {
                (0..active_ticks).any(|t| self.spec(seed, entity, total, t, active_ticks).dead)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in FaultProfile::ALL {
            assert_eq!(FaultProfile::parse(p.name()), Some(p));
        }
        assert_eq!(FaultProfile::parse("nope"), None);
    }

    #[test]
    fn calm_never_perturbs() {
        assert!(FaultProfile::Calm.perturbed(1, 64, 100).is_empty());
    }

    #[test]
    fn dead_entities_is_exactly_the_dead_rack() {
        // Only dead-rack kills; the flaky/brownout profiles perturb
        // without killing, so their dead set is empty.
        assert!(FaultProfile::FlakyTail.dead_entities(1, 96, 10).is_empty());
        assert!(FaultProfile::RollingBrownout.dead_entities(1, 96, 10).is_empty());
        let dead = FaultProfile::DeadRack.dead_entities(5, 96, 10);
        assert_eq!(dead.len(), 96 / RACKS);
        assert_eq!(
            dead,
            (0..96)
                .filter(|&e| FaultProfile::DeadRack.spec(5, e, 96, 0, 10).dead)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn profiles_clear_after_active_phase() {
        for p in FaultProfile::ALL {
            for e in 0..32 {
                assert_eq!(p.spec(7, e, 32, 20, 20), FaultSpec::NONE, "{} entity {e}", p.name());
            }
        }
    }

    #[test]
    fn flaky_tail_is_seeded_and_partial() {
        let a = FaultProfile::FlakyTail.perturbed(1, 96, 10);
        let b = FaultProfile::FlakyTail.perturbed(1, 96, 10);
        assert_eq!(a, b, "not deterministic");
        assert!(!a.is_empty(), "no tail selected");
        assert!(a.len() < 40, "tail too large: {}", a.len());
        let c = FaultProfile::FlakyTail.perturbed(2, 96, 10);
        assert_ne!(a, c, "seed has no effect");
    }

    #[test]
    fn rolling_brownout_moves_and_spares_last_racks() {
        let p = FaultProfile::RollingBrownout;
        let total = 96;
        // The perturbed set at tick 0 differs from tick 3 (window moved).
        let at = |tick| -> Vec<usize> {
            (0..total).filter(|&e| p.spec(3, e, total, tick, 60).is_faulty()).collect()
        };
        assert_ne!(at(0), at(3));
        // Racks 6 and 7 never see the window.
        let perturbed = p.perturbed(3, total, 60);
        for &e in &perturbed {
            assert!(FaultProfile::rack_of(e, total) < RACKS - 2);
        }
        assert!(!perturbed.is_empty());
    }

    #[test]
    fn dead_rack_kills_exactly_one_rack() {
        let p = FaultProfile::DeadRack;
        let total = 96;
        let dead: Vec<usize> = (0..total).filter(|&e| p.spec(5, e, total, 0, 10).dead).collect();
        assert_eq!(dead.len(), total / RACKS);
        let racks: std::collections::HashSet<usize> =
            dead.iter().map(|&e| FaultProfile::rack_of(e, total)).collect();
        assert_eq!(racks.len(), 1);
    }
}
