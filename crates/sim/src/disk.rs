//! Storage-device cost models for the HDD/SSD experiments.
//!
//! The paper measured 103 MB/s on the original HDD host and 391 MB/s after
//! migrating InfluxDB to SSDs (§IV-B1) and observed a 1.5–2.1× query
//! speedup. The query engine charges every read against one of these
//! models: a fixed per-access latency (seek/IOP cost) plus bytes divided by
//! sequential bandwidth.

use crate::vtime::VDuration;

/// A storage device's cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Human label for reports ("HDD", "SSD").
    pub name: &'static str,
    /// Sequential read bandwidth in bytes/second.
    pub read_bw: f64,
    /// Fixed cost per discrete access (head seek for HDD, IOP overhead for
    /// SSD), in seconds.
    pub access_latency: f64,
}

impl DiskModel {
    /// The paper's HDD storage host: 103 MB/s, ~8 ms average seek.
    pub const HDD: DiskModel = DiskModel { name: "HDD", read_bw: 103.0e6, access_latency: 8.0e-3 };

    /// The paper's SSD storage host: 391 MB/s, ~80 µs access.
    pub const SSD: DiskModel = DiskModel { name: "SSD", read_bw: 391.0e6, access_latency: 80.0e-6 };

    /// Cost of reading `bytes` in `accesses` discrete operations.
    pub fn read_cost(&self, bytes: u64, accesses: u64) -> VDuration {
        let transfer = bytes as f64 / self.read_bw;
        let seeks = accesses as f64 * self.access_latency;
        VDuration::from_secs_f64(transfer + seeks)
    }

    /// Cost of one sequential scan of `bytes`.
    pub fn scan_cost(&self, bytes: u64) -> VDuration {
        self.read_cost(bytes, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidths() {
        assert_eq!(DiskModel::HDD.read_bw, 103.0e6);
        assert_eq!(DiskModel::SSD.read_bw, 391.0e6);
        // "nearly 4x faster than an HDD" (§IV-B1).
        let ratio = DiskModel::SSD.read_bw / DiskModel::HDD.read_bw;
        assert!(ratio > 3.7 && ratio < 3.9);
    }

    #[test]
    fn scan_cost_is_linear_in_bytes() {
        let one = DiskModel::SSD.scan_cost(100 << 20);
        let two = DiskModel::SSD.scan_cost(200 << 20);
        let seek = VDuration::from_secs_f64(DiskModel::SSD.access_latency);
        assert_eq!((two - seek).as_nanos(), (one - seek).as_nanos() * 2);
    }

    #[test]
    fn seek_dominance_for_many_small_reads() {
        // 1000 random 4 KiB reads on HDD: seeks dominate transfer.
        let cost = DiskModel::HDD.read_cost(1000 * 4096, 1000);
        assert!(cost.as_secs_f64() > 7.9, "got {}", cost.as_secs_f64());
        // The same on SSD is two orders of magnitude cheaper.
        let ssd = DiskModel::SSD.read_cost(1000 * 4096, 1000);
        assert!(ssd.as_secs_f64() < 0.2);
    }

    #[test]
    fn hdd_vs_ssd_speedup_band_for_scans() {
        // Large sequential scans approach the raw bandwidth ratio (~3.8x);
        // seek-heavy workloads compress the gap. The paper's observed
        // 1.5-2.1x sits between, because queries mix both.
        let bytes = 500u64 << 20;
        let hdd = DiskModel::HDD.read_cost(bytes, 200);
        let ssd = DiskModel::SSD.read_cost(bytes, 200);
        let speedup = hdd.as_secs_f64() / ssd.as_secs_f64();
        assert!(speedup > 1.5 && speedup < 5.0, "speedup {speedup}");
        // Seek-heavy mixes (many series, few bytes each) land nearer the
        // paper's 1.5-2.1x because CPU/processing is a bigger share there.
        let hdd2 = DiskModel::HDD.read_cost(64 << 20, 5_000);
        let ssd2 = DiskModel::SSD.read_cost(64 << 20, 5_000);
        assert!(hdd2 > ssd2);
    }

    #[test]
    fn zero_bytes_costs_only_seeks() {
        let c = DiskModel::HDD.read_cost(0, 2);
        assert!((c.as_secs_f64() - 0.016).abs() < 1e-9);
    }
}
