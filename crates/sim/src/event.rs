//! A discrete-event queue: the core of the UGE and collection-loop
//! simulations.
//!
//! Events are `(VInstant, payload)` pairs popped in time order; ties break
//! FIFO (by insertion sequence) so simulations are fully deterministic.

use crate::vtime::VInstant;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

struct Entry<T> {
    at: VInstant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Min-heap of timed events with FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
    now: VInstant,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue positioned at the simulation epoch.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: VInstant::EPOCH }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> VInstant {
        self.now
    }

    /// Schedule `payload` at absolute time `at`. Scheduling in the past
    /// (before `now`) is a logic error and panics.
    pub fn schedule(&mut self, at: VInstant, payload: T) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Reverse(Entry { at, seq: self.seq, payload }));
        self.seq += 1;
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(VInstant, T)> {
        let Reverse(e) = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.payload))
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<VInstant> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vtime::VDuration;

    fn at(s: u64) -> VInstant {
        VInstant::EPOCH + VDuration::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at(30), "c");
        q.schedule(at(10), "a");
        q.schedule(at(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(at(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(at(7), ());
        assert_eq!(q.now(), VInstant::EPOCH);
        q.pop();
        assert_eq!(q.now(), at(7));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(at(10), ());
        q.pop();
        q.schedule(at(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(at(1), 1);
        q.schedule(at(100), 100);
        let (_, v) = q.pop().unwrap();
        assert_eq!(v, 1);
        // Schedule something between now and the far event.
        q.schedule(at(50), 50);
        assert_eq!(q.pop().unwrap().1, 50);
        assert_eq!(q.pop().unwrap().1, 100);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
    }
}
