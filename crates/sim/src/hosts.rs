//! The Table III host profiles, as configuration constants.
//!
//! The paper deploys the three MonSTer services on dedicated hosts; their
//! CPU core counts bound the concurrency the services can use, and the
//! storage/network specs feed the cost models.

use crate::disk::DiskModel;
use crate::net::NetModel;

/// One service host from Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostProfile {
    /// Service name.
    pub name: &'static str,
    /// Total hardware threads available to the service.
    pub cores: usize,
    /// RAM in GiB (informational; reported in Table III output).
    pub ram_gib: u32,
    /// Storage attached to the host.
    pub disk: DiskModel,
    /// NIC/network path.
    pub net: NetModel,
}

/// Metrics Collector host: 2×4-core Xeon @2.53 GHz, 23 GB, 2 TB HDD, GigE.
pub const COLLECTOR_HOST: HostProfile = HostProfile {
    name: "Metrics Collector Host",
    cores: 8,
    ram_gib: 23,
    disk: DiskModel::HDD,
    net: NetModel::GIGABIT_LAN,
};

/// Storage host as originally deployed: 2×8-core Xeon @2.50 GHz, 94 GB;
/// carries both a 400 GB SSD and a 500 GB HDD — the HDD held the database
/// before the §IV-B1 migration.
pub const STORAGE_HOST_HDD: HostProfile = HostProfile {
    name: "Storage Host (HDD)",
    cores: 16,
    ram_gib: 94,
    disk: DiskModel::HDD,
    net: NetModel::GIGABIT_LAN,
};

/// Storage host after migrating InfluxDB onto the SSD.
pub const STORAGE_HOST_SSD: HostProfile = HostProfile {
    name: "Storage Host (SSD)",
    cores: 16,
    ram_gib: 94,
    disk: DiskModel::SSD,
    net: NetModel::GIGABIT_LAN,
};

/// Metrics Builder host: 2×8-core Xeon @2.50 GHz, 125 GB, 24 TB HDD, GigE.
pub const BUILDER_HOST: HostProfile = HostProfile {
    name: "Metrics Builder Host",
    cores: 16,
    ram_gib: 125,
    disk: DiskModel::HDD,
    net: NetModel::GIGABIT_LAN,
};

/// All Table III rows, in paper order.
pub fn table3() -> [HostProfile; 3] {
    [COLLECTOR_HOST, STORAGE_HOST_HDD, BUILDER_HOST]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table3() {
        assert_eq!(COLLECTOR_HOST.cores, 8);
        assert_eq!(COLLECTOR_HOST.ram_gib, 23);
        assert_eq!(STORAGE_HOST_HDD.cores, 16);
        assert_eq!(STORAGE_HOST_HDD.ram_gib, 94);
        assert_eq!(BUILDER_HOST.ram_gib, 125);
        assert_eq!(table3().len(), 3);
    }

    #[test]
    fn storage_migration_changes_only_the_disk() {
        assert_eq!(STORAGE_HOST_HDD.cores, STORAGE_HOST_SSD.cores);
        assert_eq!(STORAGE_HOST_HDD.ram_gib, STORAGE_HOST_SSD.ram_gib);
        assert_ne!(STORAGE_HOST_HDD.disk, STORAGE_HOST_SSD.disk);
        assert_eq!(STORAGE_HOST_SSD.disk, DiskModel::SSD);
    }
}
