//! Virtual time: nanosecond-resolution durations and instants that never
//! touch the wall clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, stored as integer nanoseconds for exact,
/// platform-independent arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VDuration(u64);

impl VDuration {
    /// Zero-length duration.
    pub const ZERO: VDuration = VDuration(0);

    /// From integer nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        VDuration(n)
    }

    /// From integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VDuration(us * 1_000)
    }

    /// From integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VDuration(ms * 1_000_000)
    }

    /// From integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        VDuration(s * 1_000_000_000)
    }

    /// From fractional seconds; negative and non-finite inputs clamp to 0.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return VDuration::ZERO;
        }
        VDuration((s * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: VDuration) -> VDuration {
        VDuration(self.0.saturating_sub(other.0))
    }

    /// Larger of the two.
    pub fn max(self, other: VDuration) -> VDuration {
        VDuration(self.0.max(other.0))
    }
}

impl fmt::Display for VDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.2}s")
        } else if s >= 1e-3 {
            write!(f, "{:.2}ms", s * 1e3)
        } else {
            write!(f, "{:.0}µs", s * 1e6)
        }
    }
}

impl Add for VDuration {
    type Output = VDuration;
    fn add(self, rhs: VDuration) -> VDuration {
        VDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VDuration {
    fn add_assign(&mut self, rhs: VDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for VDuration {
    type Output = VDuration;
    fn sub(self, rhs: VDuration) -> VDuration {
        VDuration(self.0.checked_sub(rhs.0).expect("negative VDuration"))
    }
}

impl Mul<u64> for VDuration {
    type Output = VDuration;
    fn mul(self, rhs: u64) -> VDuration {
        VDuration(self.0 * rhs)
    }
}

impl Mul<f64> for VDuration {
    type Output = VDuration;
    fn mul(self, rhs: f64) -> VDuration {
        VDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for VDuration {
    type Output = VDuration;
    fn div(self, rhs: u64) -> VDuration {
        VDuration(self.0 / rhs)
    }
}

impl Sum for VDuration {
    fn sum<I: Iterator<Item = VDuration>>(iter: I) -> VDuration {
        iter.fold(VDuration::ZERO, Add::add)
    }
}

/// A point on the virtual timeline (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VInstant(u64);

impl VInstant {
    /// Simulation start.
    pub const EPOCH: VInstant = VInstant(0);

    /// From nanoseconds since simulation start.
    pub const fn from_nanos(n: u64) -> Self {
        VInstant(n)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant. Panics if `earlier` is later.
    pub fn since(self, earlier: VInstant) -> VDuration {
        VDuration(self.0.checked_sub(earlier.0).expect("instant ordering"))
    }
}

impl Add<VDuration> for VInstant {
    type Output = VInstant;
    fn add(self, rhs: VDuration) -> VInstant {
        VInstant(self.0 + rhs.as_nanos())
    }
}

impl Sub<VInstant> for VInstant {
    type Output = VDuration;
    fn sub(self, rhs: VInstant) -> VDuration {
        self.since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(VDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(VDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(VDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(VDuration::from_secs_f64(4.29).as_secs_f64(), 4.29);
        assert_eq!(VDuration::from_secs_f64(-1.0), VDuration::ZERO);
        assert_eq!(VDuration::from_secs_f64(f64::NAN), VDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = VDuration::from_secs(3);
        let b = VDuration::from_secs(1);
        assert_eq!(a + b, VDuration::from_secs(4));
        assert_eq!(a - b, VDuration::from_secs(2));
        assert_eq!(a * 2, VDuration::from_secs(6));
        assert_eq!(a / 3, VDuration::from_secs(1));
        assert_eq!(b.saturating_sub(a), VDuration::ZERO);
        assert_eq!(a.max(b), a);
        let total: VDuration = [a, b, b].into_iter().sum();
        assert_eq!(total, VDuration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn underflow_panics() {
        let _ = VDuration::from_secs(1) - VDuration::from_secs(2);
    }

    #[test]
    fn instants() {
        let t0 = VInstant::EPOCH;
        let t1 = t0 + VDuration::from_secs(60);
        assert_eq!(t1.since(t0), VDuration::from_secs(60));
        assert_eq!(t1 - t0, VDuration::from_secs(60));
        assert!(t1 > t0);
        assert_eq!(t1.as_secs_f64(), 60.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(VDuration::from_secs_f64(4.29).to_string(), "4.29s");
        assert_eq!(VDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(VDuration::from_micros(7).to_string(), "7µs");
    }

    #[test]
    fn float_scaling() {
        let d = VDuration::from_secs(10) * 1.65;
        assert!((d.as_secs_f64() - 16.5).abs() < 1e-9);
    }
}
