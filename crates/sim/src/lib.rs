//! `monster-sim` — deterministic simulation substrate.
//!
//! The paper evaluates MonSTer on production hardware: a 467-node cluster,
//! iDRAC BMCs that answer a Redfish call in ~4.29 s, an InfluxDB host with
//! HDDs (103 MB/s) later migrated to SSDs (391 MB/s), and a 1 Gbit/s
//! management Ethernet. None of that hardware is available here, so this
//! crate provides the pieces that stand in for it:
//!
//! * [`vtime`] — virtual durations/instants, decoupled from the wall clock;
//! * [`rng`] — named, seeded random streams and the latency distributions
//!   drawn from them (deterministic across runs **and** across threads,
//!   because each stream is derived from a label, not from global state);
//! * [`disk`] — storage cost models (seek + bandwidth) for the HDD/SSD
//!   experiments of Figs. 12 & 14;
//! * [`net`] — network cost model (RTT + bandwidth) for the transmission
//!   experiments of Figs. 17 & 19 and the Table IV bandwidth accounting;
//! * [`event`] — a discrete-event queue driving the UGE simulator and the
//!   collection loop;
//! * [`fault`] — named, seeded fault profiles (per-entity failure/stall
//!   schedules over virtual time) replayed by the chaos harness;
//! * [`hosts`] — the Table III host profiles as constants.
//!
//! Everything here returns *virtual* time ([`vtime::VDuration`]): paper-scale
//! experiments replay in milliseconds of wall-clock time and produce
//! identical numbers on every run.

#![warn(missing_docs)]

pub mod disk;
pub mod event;
pub mod fault;
pub mod hosts;
pub mod net;
pub mod rng;
pub mod vtime;

pub use disk::DiskModel;
pub use event::EventQueue;
pub use fault::{FaultProfile, FaultSpec};
pub use net::NetModel;
pub use rng::{LatencyDist, SimRng};
pub use vtime::{VDuration, VInstant};
