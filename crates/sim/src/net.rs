//! Network cost model: RTT plus bandwidth-limited transfer.
//!
//! All three MonSTer service hosts sit on 1 Gbit/s Ethernet (Table III);
//! the management network the BMC traffic crosses is the same class. The
//! transmission-time experiments (Figs. 17 & 19) and the Table IV bandwidth
//! accounting use this model.

use crate::vtime::VDuration;

/// A point-to-point network path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Human label for reports.
    pub name: &'static str,
    /// Usable bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Round-trip time in seconds.
    pub rtt: f64,
}

impl NetModel {
    /// 1 Gbit/s Ethernet with a LAN RTT, derated to ~70% achievable
    /// throughput for HTTP/TCP framing overhead (a conservative, standard
    /// derating for single-stream TCP on GigE).
    pub const GIGABIT_LAN: NetModel =
        NetModel { name: "1GbE LAN", bandwidth: 1.0e9 / 8.0 * 0.70, rtt: 200.0e-6 };

    /// The out-of-band management network the BMCs answer on. Same fabric
    /// class, but shared with other management traffic — derated harder.
    pub const MANAGEMENT: NetModel =
        NetModel { name: "management", bandwidth: 1.0e9 / 8.0 * 0.40, rtt: 500.0e-6 };

    /// A consumer invoking the Metrics Builder API from a campus network
    /// (the remote-analysis case of §IV-B4): ~200 Mbit/s effective, higher
    /// RTT. On this path transmission dominates query time for long ranges,
    /// which is what motivates response compression.
    pub const CAMPUS: NetModel = NetModel { name: "campus", bandwidth: 200.0e6 / 8.0, rtt: 4.0e-3 };

    /// Time to move `bytes` across the path once (one RTT of setup plus
    /// bandwidth-limited transfer).
    pub fn transfer_cost(&self, bytes: u64) -> VDuration {
        VDuration::from_secs_f64(self.rtt + bytes as f64 / self.bandwidth)
    }

    /// Steady-state rate in KB/s that `bytes_per_interval` over
    /// `interval_secs` consumes — the Table IV arithmetic.
    pub fn rate_kb_per_sec(bytes_per_interval: u64, interval_secs: f64) -> f64 {
        bytes_per_interval as f64 / 1024.0 / interval_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_size() {
        let small = NetModel::GIGABIT_LAN.transfer_cost(1 << 10);
        let big = NetModel::GIGABIT_LAN.transfer_cost(100 << 20);
        assert!(big > small);
        // 100 MiB at ~87.5 MB/s effective ≈ 1.2 s.
        assert!(big.as_secs_f64() > 1.0 && big.as_secs_f64() < 1.5);
    }

    #[test]
    fn rtt_floors_small_transfers() {
        let c = NetModel::CAMPUS.transfer_cost(1);
        assert!(c.as_secs_f64() >= 4.0e-3);
    }

    #[test]
    fn table4_arithmetic_shape() {
        // 467 nodes x 19 KB + 400 jobs x 23 KB over 60 s ≈ 300 KB/s:
        // the Table IV headline number (298.43 KB/s) to within a few KB/s.
        let bytes = 467u64 * 19 * 1024 + 400 * 23 * 1024;
        let rate = NetModel::rate_kb_per_sec(bytes, 60.0);
        assert!((rate - 298.43).abs() < 10.0, "rate {rate}");
    }

    #[test]
    fn monitoring_traffic_is_negligible_on_gige() {
        // The paper's point: ~300 KB/s vs ~87 MB/s effective GigE.
        let fraction = 300.0 * 1024.0 / NetModel::GIGABIT_LAN.bandwidth;
        assert!(fraction < 0.005);
    }
}
