//! Named, seeded random streams and latency distributions.
//!
//! Reproducibility rule: a random draw's value may depend only on (master
//! seed, stream label, draw index). Every simulated component derives its
//! own [`SimRng`] from a label ("bmc/10.101.1.1", "arrivals", ...), so
//! adding or reordering components never perturbs another component's
//! stream, and parallel execution cannot introduce nondeterminism.

use crate::vtime::VDuration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: SmallRng,
}

/// FNV-1a, used to fold stream labels into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl SimRng {
    /// Master stream for a given seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng { rng: SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Derive an independent child stream from a label. Children with
    /// different labels are uncorrelated; the same (seed, label) always
    /// yields the same stream.
    pub fn derive(seed: u64, label: &str) -> Self {
        SimRng::from_seed(seed ^ fnv1a(label.as_bytes()))
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let u1: f64 = self.uniform01().max(1e-12);
        let u2: f64 = self.uniform01();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + stddev * z
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.uniform01()).ln()
    }

    /// Log-normal parameterized by the *target* median and a shape sigma.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        let z = self.normal(0.0, 1.0);
        median * (sigma * z).exp()
    }

    /// Pareto with scale `xm` and shape `alpha` (heavy tail; BMC stalls).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u = (1.0 - self.uniform01()).max(1e-12);
        xm / u.powf(1.0 / alpha)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform01() < p
    }

    /// Pick a random element of a slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

/// A latency distribution, sampled into [`VDuration`]s.
///
/// The BMC model uses `LogNormal` around the paper's 4.29 s mean with a
/// heavy `Pareto` tail mixed in for firmware stalls; timeouts and retries in
/// the collector exist because of that tail.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyDist {
    /// Always the same value (seconds).
    Const(f64),
    /// Uniform over `[lo, hi)` seconds.
    Uniform(f64, f64),
    /// Normal (mean, stddev) seconds, truncated at ≥ 0.
    Normal(f64, f64),
    /// Exponential with mean seconds.
    Exponential(f64),
    /// Log-normal with (median, sigma).
    LogNormal(f64, f64),
    /// Mixture: with probability `p`, draw from `a`, else from `b`.
    Mix {
        /// Probability of drawing from `a`.
        p: f64,
        /// First component.
        a: Box<LatencyDist>,
        /// Second component.
        b: Box<LatencyDist>,
    },
}

impl LatencyDist {
    /// Draw one latency.
    pub fn sample(&self, rng: &mut SimRng) -> VDuration {
        let secs = self.sample_secs(rng);
        VDuration::from_secs_f64(secs.max(0.0))
    }

    fn sample_secs(&self, rng: &mut SimRng) -> f64 {
        match self {
            LatencyDist::Const(s) => *s,
            LatencyDist::Uniform(lo, hi) => rng.uniform(*lo, *hi),
            LatencyDist::Normal(m, sd) => rng.normal(*m, *sd),
            LatencyDist::Exponential(m) => rng.exponential(*m),
            LatencyDist::LogNormal(median, sigma) => rng.lognormal(*median, *sigma),
            LatencyDist::Mix { p, a, b } => {
                if rng.chance(*p) {
                    a.sample_secs(rng)
                } else {
                    b.sample_secs(rng)
                }
            }
        }
    }

    /// Analytic mean in seconds (used in tests and doc tables).
    pub fn mean_secs(&self) -> f64 {
        match self {
            LatencyDist::Const(s) => *s,
            LatencyDist::Uniform(lo, hi) => (lo + hi) / 2.0,
            LatencyDist::Normal(m, _) => *m,
            LatencyDist::Exponential(m) => *m,
            LatencyDist::LogNormal(median, sigma) => median * (sigma * sigma / 2.0).exp(),
            LatencyDist::Mix { p, a, b } => p * a.mean_secs() + (1.0 - p) * b.mean_secs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_util::stats::OnlineStats;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::derive(7, "bmc/10.101.1.1");
        let mut b = SimRng::derive(7, "bmc/10.101.1.1");
        for _ in 0..100 {
            assert_eq!(a.uniform01(), b.uniform01());
        }
    }

    #[test]
    fn different_labels_decorrelate() {
        let mut a = SimRng::derive(7, "bmc/10.101.1.1");
        let mut b = SimRng::derive(7, "bmc/10.101.1.2");
        let same = (0..64).filter(|_| a.uniform01() == b.uniform01()).count();
        assert!(same < 4, "streams look identical");
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = SimRng::from_seed(3);
        let mut s = OnlineStats::new();
        for _ in 0..20_000 {
            s.push(rng.normal(4.29, 0.8));
        }
        assert!((s.mean() - 4.29).abs() < 0.05, "mean {}", s.mean());
        assert!((s.stddev() - 0.8).abs() < 0.05, "sd {}", s.stddev());
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::from_seed(4);
        let mut s = OnlineStats::new();
        for _ in 0..50_000 {
            s.push(rng.exponential(2.0));
        }
        assert!((s.mean() - 2.0).abs() < 0.06, "mean {}", s.mean());
        assert!(s.min() >= 0.0);
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut rng = SimRng::from_seed(5);
        let mut max: f64 = 0.0;
        for _ in 0..10_000 {
            let x = rng.pareto(1.0, 1.5);
            assert!(x >= 1.0);
            max = max.max(x);
        }
        assert!(max > 20.0, "no heavy tail observed (max {max})");
    }

    #[test]
    fn latency_dist_sampling_matches_mean() {
        let dist = LatencyDist::Mix {
            p: 0.9,
            a: Box::new(LatencyDist::LogNormal(4.0, 0.25)),
            b: Box::new(LatencyDist::Exponential(8.0)),
        };
        let mut rng = SimRng::from_seed(6);
        let mut s = OnlineStats::new();
        for _ in 0..50_000 {
            s.push(dist.sample(&mut rng).as_secs_f64());
        }
        let expect = dist.mean_secs();
        assert!(
            (s.mean() - expect).abs() / expect < 0.05,
            "sampled {} vs analytic {}",
            s.mean(),
            expect
        );
    }

    #[test]
    fn negative_draws_clamp_to_zero() {
        let dist = LatencyDist::Normal(0.0, 1.0);
        let mut rng = SimRng::from_seed(8);
        for _ in 0..1000 {
            assert!(dist.sample(&mut rng) >= VDuration::ZERO);
        }
    }

    #[test]
    fn chance_frequencies() {
        let mut rng = SimRng::from_seed(9);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
