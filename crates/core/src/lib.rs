//! `monster-core` — the MonSTer system, assembled.
//!
//! This crate wires the paper's architecture (Fig. 1) into one object: a
//! simulated cluster (BMCs + sensors), a UGE qmaster with a synthetic
//! workload, the Metrics Collector, the time-series database, the Metrics
//! Builder, and the analysis layer — everything a deployment of MonSTer
//! comprises.
//!
//! ```
//! use monster_core::{Monster, MonsterConfig};
//!
//! // A small deployment: 16 nodes, default workload.
//! let mut m = Monster::new(MonsterConfig { nodes: 16, ..MonsterConfig::default() });
//! m.run_intervals(5);               // five 60 s collection intervals
//! assert!(m.db().stats().points > 0);
//! ```
//!
//! The [`Monster`] deployment advances three coupled simulations in
//! lock-step each interval: the scheduler (jobs arrive, run, finish), the
//! cluster physics (temperatures/power follow scheduler load), and the
//! collection pipeline (sweep → pre-process → batch write).

#![warn(missing_docs)]

pub mod deployment;

pub use deployment::{IntervalSummary, Monster, MonsterConfig};

// The full system surface, re-exported for applications.
pub use monster_analysis as analysis;
pub use monster_builder as builder;
pub use monster_collector as collector;
pub use monster_compress as mzlib;
pub use monster_http as http;
pub use monster_json as json;
pub use monster_redfish as redfish;
pub use monster_scheduler as scheduler;
pub use monster_sim as sim;
pub use monster_tsdb as tsdb;
pub use monster_util as util;
