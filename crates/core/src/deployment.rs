//! The deployment driver: cluster + scheduler + collector + storage +
//! builder, advanced in lock-step.

use monster_alert::{AlertEngine, DetectorConfig, EngineConfig, IntervalInput, NodeInterval};
use monster_builder::rollup::RollupRoute;
use monster_builder::{build_plan, encode_response, BuilderRequest, ExecMode};
use monster_collector::{Collector, CollectorConfig, SchemaVersion};
use monster_compress::Level;
use monster_redfish::bmc::BmcConfig;
use monster_redfish::client::{ClientConfig, SkipReason};
use monster_redfish::cluster::{ClusterConfig, SimulatedCluster};
use monster_redfish::resilience::ResilienceConfig;
use monster_scheduler::{Qmaster, QmasterConfig, WorkloadConfig, WorkloadGenerator};
use monster_sim::{DiskModel, VDuration};
use monster_tsdb::retention::{ContinuousQuery, TierConfig};
use monster_tsdb::{Aggregation, CostParams, Db, DbConfig, RecoveryReport};
use monster_util::{EpochSecs, JobId, NodeId, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Quanah's size; amplification defaults scale against it.
pub const QUANAH_NODES: usize = 467;

/// Deployment configuration.
#[derive(Debug, Clone)]
pub struct MonsterConfig {
    /// Cluster size. Experiments may run scaled down; set
    /// `amplify_to_quanah` to keep simulated timings at 467-node scale.
    pub nodes: usize,
    /// Master seed for all stochastic components.
    pub seed: u64,
    /// Storage schema generation.
    pub schema: SchemaVersion,
    /// Collection interval (the paper's 60 s).
    pub interval_secs: i64,
    /// Storage device backing the TSDB.
    pub disk: DiskModel,
    /// BMC behaviour model.
    pub bmc: BmcConfig,
    /// Per-node BMC overrides by enumeration index (heterogeneous fleets:
    /// one flaky rack in an otherwise healthy cluster).
    pub bmc_overrides: Vec<(usize, BmcConfig)>,
    /// Redfish client tunables (timeouts, retries, in-flight budget).
    pub client: ClientConfig,
    /// When set, collection runs through the resilience layer: circuit
    /// breakers, jittered backoff, deadline-aware degraded sweeps with
    /// stale substitution.
    pub resilience: Option<ResilienceConfig>,
    /// Streaming anomaly detector tuning for the collector (`None`
    /// disables detection; on by default).
    pub detectors: Option<DetectorConfig>,
    /// Alert engine tuning (`None` disables alerting; on by default). The
    /// engine consumes detector events, collection health, and freshness
    /// burn each interval, and serves `GET /v1/alerts`.
    pub alerting: Option<EngineConfig>,
    /// Synthetic workload (`None` leaves the cluster idle).
    pub workload: Option<WorkloadConfig>,
    /// How much simulated time the workload generator pre-populates.
    pub horizon_secs: i64,
    /// When true, query-cost counters are scaled by `467 / nodes` so a
    /// scaled-down deployment reports full-Quanah simulated timings.
    pub amplify_to_quanah: bool,
    /// Durable-storage directory. When set, the deployment opens its TSDB
    /// with [`Db::recover`] — replaying any WAL and cold-tier segment
    /// files left by a previous (possibly crashed) run — and every write
    /// is logged for the next restart. `None` keeps storage memory-only,
    /// the historical behavior.
    pub data_dir: Option<std::path::PathBuf>,
    /// Age-based storage tiering (requires nothing but a cold-device
    /// model; pairs naturally with `data_dir` so cold shards land in
    /// reclaimable segment files). The maintenance pass runs once per
    /// collection interval.
    pub tiering: Option<TierConfig>,
}

impl Default for MonsterConfig {
    fn default() -> Self {
        MonsterConfig {
            nodes: QUANAH_NODES,
            seed: 2020,
            schema: SchemaVersion::Optimized,
            interval_secs: 60,
            disk: DiskModel::HDD,
            bmc: BmcConfig::default(),
            bmc_overrides: Vec::new(),
            client: ClientConfig::default(),
            resilience: None,
            detectors: Some(DetectorConfig::default()),
            alerting: Some(EngineConfig::default()),
            workload: Some(WorkloadConfig::default()),
            horizon_secs: 86_400,
            amplify_to_quanah: false,
            data_dir: None,
            tiering: None,
        }
    }
}

/// Summary of one collection interval.
#[derive(Debug, Clone)]
pub struct IntervalSummary {
    /// Interval timestamp.
    pub time: EpochSecs,
    /// Points written.
    pub points: usize,
    /// Simulated sweep makespan (zero on the direct/bulk path).
    pub collection_time: VDuration,
    /// BMC requests that failed after retries (zero on the direct path).
    pub bmc_failures: usize,
    /// Requests the resilient scheduler skipped (breaker open or deadline
    /// budget exhausted; zero on the legacy path).
    pub bmc_skipped: usize,
    /// Last-known-good points written tagged stale this interval.
    pub stale_points: usize,
    /// Nodes substituted with stale data, with sweeps-since-fresh ages.
    pub stale_nodes: Vec<(NodeId, u64)>,
    /// True when the interval ran on partial data.
    pub degraded: bool,
    /// Circuit breakers open at sweep end.
    pub breakers_open: usize,
    /// The distributed-trace context this interval's pipeline pass ran
    /// under (sweep, per-BMC children, and TSDB writes share it).
    pub trace: monster_obs::TraceContext,
    /// Nodes the resilient scheduler skipped this interval, with the
    /// reason (`BreakerOpen` / `Deadline`) — deduplicated per node.
    pub skipped_nodes: Vec<(NodeId, SkipReason)>,
    /// Detector transitions observed while ingesting this interval.
    pub anomaly_events: usize,
    /// What the alert engine did this interval (all zero with alerting
    /// off).
    pub alerts: monster_alert::IntervalOutcome,
}

/// A running MonSTer deployment.
pub struct Monster {
    config: MonsterConfig,
    cluster: SimulatedCluster,
    qmaster: Qmaster,
    collector: Collector,
    db: Arc<Db>,
    now: EpochSecs,
    intervals_run: usize,
    /// Maintained continuous-query roll-ups plus their routing table.
    rollups: Option<(Vec<ContinuousQuery>, Vec<RollupRoute>)>,
    /// The alert engine, shared with the HTTP service when serving.
    alerts: Option<Arc<AlertEngine>>,
    /// What startup recovery replayed (`None` for memory-only storage).
    recovery: Option<RecoveryReport>,
}

impl Monster {
    /// Assemble a deployment and pre-generate its workload.
    pub fn new(config: MonsterConfig) -> Monster {
        let cluster = SimulatedCluster::new(ClusterConfig {
            nodes: config.nodes,
            slots_per_chassis: 4,
            seed: config.seed,
            bmc: config.bmc.clone(),
            bmc_overrides: config.bmc_overrides.clone(),
        });
        let qm_config = QmasterConfig { nodes: config.nodes, ..QmasterConfig::default() };
        let start = qm_config.start_time;
        let mut qmaster = Qmaster::new(qm_config);
        if let Some(wl) = &config.workload {
            let mut gen =
                WorkloadGenerator::new(WorkloadConfig { seed: config.seed ^ 0x5EED, ..wl.clone() });
            gen.drive(&mut qmaster, start, start + config.horizon_secs);
        }
        let amplification =
            if config.amplify_to_quanah { QUANAH_NODES as f64 / config.nodes as f64 } else { 1.0 };
        let db_config = DbConfig {
            shard_duration: 86_400,
            disk: config.disk,
            cost: CostParams::default().with_amplification(amplification),
            tiering: config.tiering,
            ..DbConfig::default()
        };
        let (db, recovery) = match &config.data_dir {
            Some(dir) => {
                let (db, report) =
                    Db::recover(db_config, dir).expect("durable storage directory must open");
                (Arc::new(db), Some(report))
            }
            None => (Arc::new(Db::new(db_config)), None),
        };
        let collector = Collector::new(CollectorConfig {
            schema: config.schema,
            interval_secs: config.interval_secs,
            client: config.client.clone(),
            resilience: config.resilience.clone(),
            detectors: config.detectors,
        });
        let alerts = config.alerting.map(|c| Arc::new(AlertEngine::new(c)));
        Monster {
            config,
            cluster,
            qmaster,
            collector,
            db,
            now: start,
            intervals_run: 0,
            rollups: None,
            alerts,
            recovery,
        }
    }

    /// What startup recovery replayed from `data_dir`, when configured.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The deployment configuration.
    pub fn config(&self) -> &MonsterConfig {
        &self.config
    }

    /// Current simulation time.
    pub fn now(&self) -> EpochSecs {
        self.now
    }

    /// Collection intervals executed so far.
    pub fn intervals_run(&self) -> usize {
        self.intervals_run
    }

    /// The storage layer.
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }

    /// The simulated fleet.
    pub fn cluster(&self) -> &SimulatedCluster {
        &self.cluster
    }

    /// The scheduler.
    pub fn qmaster(&self) -> &Qmaster {
        &self.qmaster
    }

    /// The collector service (resilience registry access for tests and
    /// the chaos harness).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Mutable scheduler access (failure injection, extra submissions).
    pub fn qmaster_mut(&mut self) -> &mut Qmaster {
        &mut self.qmaster
    }

    /// The alert engine, when alerting is on.
    pub fn alerts(&self) -> Option<&Arc<AlertEngine>> {
        self.alerts.as_ref()
    }

    /// Node inventory.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.cluster.node_ids().to_vec()
    }

    fn advance_world(&mut self) {
        let next = self.now + self.config.interval_secs;
        self.qmaster.run_until(next);
        let qm = &self.qmaster;
        self.cluster.step(self.config.interval_secs as f64, |n| qm.utilization(n));
        self.now = next;
    }

    /// Run one full collection interval through the Redfish wire layer.
    pub fn run_interval(&mut self) -> Result<IntervalSummary> {
        self.advance_world();
        let out =
            self.collector.collect_and_store(&self.cluster, &self.qmaster, self.now, &self.db)?;
        self.intervals_run += 1;
        self.maintain_rollups();
        let mut skipped_nodes: Vec<(NodeId, SkipReason)> = out
            .sweep
            .results
            .iter()
            .filter_map(|r| r.skip.map(|reason| (r.node, reason)))
            .collect();
        skipped_nodes.sort_unstable_by_key(|&(n, _)| n);
        skipped_nodes.dedup_by_key(|&mut (n, _)| n);

        // Fold the interval through the alert engine: detector events,
        // per-node collection health, freshness burn, and the scheduler's
        // placement for job attribution.
        let alerts = match &self.alerts {
            Some(engine) => {
                let mut per_node: BTreeMap<NodeId, NodeInterval> = self
                    .cluster
                    .node_ids()
                    .iter()
                    .map(|&node| {
                        (
                            node,
                            NodeInterval {
                                node,
                                live_readings: 0,
                                skipped: 0,
                                breaker_open: false,
                                stale_age_sweeps: 0,
                            },
                        )
                    })
                    .collect();
                for r in &out.sweep.results {
                    if let Some(entry) = per_node.get_mut(&r.node) {
                        if r.reading.is_some() {
                            entry.live_readings += 1;
                        }
                        if let Some(reason) = r.skip {
                            entry.skipped += 1;
                            if reason == SkipReason::BreakerOpen {
                                entry.breaker_open = true;
                            }
                        }
                    }
                }
                for &(node, age) in &out.stale_nodes {
                    if let Some(entry) = per_node.get_mut(&node) {
                        entry.stale_age_sweeps = age;
                    }
                }
                let jobs: BTreeMap<NodeId, Vec<JobId>> =
                    per_node.keys().map(|&n| (n, self.qmaster.jobs_on(n))).collect();
                let nodes: Vec<NodeInterval> = per_node.into_values().collect();
                let fresh = monster_obs::freshness();
                let slo = fresh.config();
                engine.observe_interval(&IntervalInput {
                    now: self.now,
                    anomalies: &out.anomalies,
                    nodes: &nodes,
                    burn_fast: fresh.burn_rate(slo.fast_window_secs),
                    burn_slow: fresh.burn_rate(slo.slow_window_secs),
                    jobs: &jobs,
                })
            }
            None => monster_alert::IntervalOutcome::default(),
        };

        Ok(IntervalSummary {
            time: self.now,
            points: out.points.len(),
            collection_time: out.simulated_collection_time,
            bmc_failures: out.sweep.failures(),
            bmc_skipped: out.sweep.skipped(),
            stale_points: out.stale_points,
            stale_nodes: out.stale_nodes,
            degraded: out.degraded,
            breakers_open: out.breakers.open,
            trace: out.trace,
            skipped_nodes,
            anomaly_events: out.anomalies.len(),
            alerts,
        })
    }

    /// Run `n` full intervals.
    pub fn run_intervals(&mut self, n: usize) -> Vec<IntervalSummary> {
        (0..n).map(|_| self.run_interval().expect("schema-consistent writes")).collect()
    }

    /// Run `n` intervals on the bulk-load path (no Redfish wire layer) —
    /// used to populate days of history for the query experiments.
    pub fn run_intervals_bulk(&mut self, n: usize) -> usize {
        let mut total = 0;
        for _ in 0..n {
            self.advance_world();
            let points =
                self.collector.collect_interval_direct(&self.cluster, &self.qmaster, self.now);
            total += points.len();
            for chunk in points.chunks(10_000) {
                self.db.write_batch(chunk).expect("schema-consistent writes");
            }
            self.intervals_run += 1;
            self.maintain_rollups();
        }
        total
    }

    /// Run `n` intervals with the Telemetry Service enabled: the cluster
    /// physics advance in `sample_interval_secs` sub-steps, the service
    /// records each, and the collector lands the batched samples — the
    /// §VI "upcoming telemetry model" upgrade. Returns total points
    /// written.
    pub fn run_intervals_telemetry(
        &mut self,
        telemetry: &mut monster_redfish::telemetry::TelemetryService,
        n: usize,
    ) -> Result<usize> {
        let sample = telemetry.config().sample_interval_secs;
        assert!(
            sample > 0 && self.config.interval_secs % sample == 0,
            "collection interval must be a multiple of the telemetry cadence"
        );
        let substeps = self.config.interval_secs / sample;
        let mut total = 0;
        for _ in 0..n {
            for _ in 0..substeps {
                let next = self.now + sample;
                self.qmaster.run_until(next);
                let qm = &self.qmaster;
                self.cluster.step(sample as f64, |node| qm.utilization(node));
                self.now = next;
                telemetry.record(&self.cluster, self.now);
            }
            let points = self.collector.collect_interval_telemetry(
                telemetry,
                &self.cluster,
                &self.qmaster,
                self.now,
            )?;
            total += points.len();
            for chunk in points.chunks(10_000) {
                self.db.write_batch(chunk)?;
            }
            self.intervals_run += 1;
            self.maintain_rollups();
        }
        Ok(total)
    }

    /// Maintain hourly `max` roll-ups of the sensor measurements (the
    /// InfluxDB downsampling pattern of §III-C). Once enabled, each
    /// collection interval advances the roll-ups, and coarse `max`
    /// requests route to them automatically.
    pub fn enable_rollups(&mut self, window_secs: i64) -> Result<()> {
        let suffix = monster_util::time::format_interval(window_secs);
        let mut cqs = Vec::new();
        let mut routes = Vec::new();
        for (source, field) in [("Power", "Reading"), ("Thermal", "Reading"), ("UGE", "CPUUsage")] {
            let target =
                format!("{source}{}_{suffix}", if field == "CPUUsage" { "Cpu" } else { "" });
            cqs.push(ContinuousQuery::new(
                source,
                field,
                target.clone(),
                Aggregation::Max,
                window_secs,
                self.now,
            )?);
            routes.push(RollupRoute {
                source: source.to_string(),
                field: field.to_string(),
                target,
                agg: Aggregation::Max,
                window_secs,
            });
        }
        self.rollups = Some((cqs, routes));
        Ok(())
    }

    fn maintain_rollups(&mut self) {
        if let Some((cqs, _)) = &mut self.rollups {
            for cq in cqs {
                cq.run(&self.db, self.now).expect("rollup over own schema");
            }
        }
        // Age-based tiering piggybacks on the same per-interval
        // maintenance pass: a no-op scan when nothing crossed the hot
        // horizon this interval.
        if self.config.tiering.is_some() {
            self.db.tier_cold_shards(self.now).expect("tiering pass");
        }
    }

    /// Execute a Metrics Builder request against this deployment's data.
    /// Requests that can be answered exactly from maintained roll-ups are
    /// rerouted to them.
    pub fn builder_query(
        &self,
        req: &BuilderRequest,
        mode: ExecMode,
    ) -> Result<monster_builder::BuilderOutcome> {
        let mut plan = build_plan(self.config.schema, self.cluster.node_ids(), req);
        if let Some((_, routes)) = &self.rollups {
            monster_builder::rollup::reroute(&mut plan, routes);
        }
        monster_builder::exec::execute(&self.db, &plan, mode)
    }

    /// Execute a request and encode the response for a consumer on `net`.
    pub fn builder_respond(
        &self,
        req: &BuilderRequest,
        mode: ExecMode,
        net: &monster_sim::NetModel,
    ) -> Result<monster_builder::response::EncodedResponse> {
        let outcome = self.builder_query(req, mode)?;
        Ok(encode_response(&outcome, req.compress, Level::default(), net))
    }

    /// Serve the Metrics Builder HTTP API for this deployment.
    pub fn serve_api(&self, port: u16) -> Result<monster_http::Server> {
        let router = monster_builder::service::router(
            Arc::clone(&self.db),
            self.node_ids(),
            monster_builder::service::ServiceConfig {
                schema: self.config.schema,
                alerts: self.alerts.clone(),
                ..monster_builder::service::ServiceConfig::default()
            },
        );
        monster_http::Server::spawn(port, router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_tsdb::Aggregation;

    fn small(nodes: usize) -> Monster {
        Monster::new(MonsterConfig {
            nodes,
            bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
            ..MonsterConfig::default()
        })
    }

    #[test]
    fn full_interval_pipeline_lands_points() {
        let mut m = small(8);
        let summaries = m.run_intervals(3);
        assert_eq!(summaries.len(), 3);
        assert!(summaries.iter().all(|s| s.points > 0));
        assert!(m.db().stats().points > 0);
        assert_eq!(m.intervals_run(), 3);
        // Time advanced 3 intervals.
        let t0 = QmasterConfig::default().start_time;
        assert_eq!(m.now() - t0, 180);
    }

    #[test]
    fn bulk_path_matches_schema_of_wire_path() {
        let mut a = small(4);
        a.run_intervals(2);
        let mut b = small(4);
        b.run_intervals_bulk(2);
        let ma = a.db().measurements();
        let mb = b.db().measurements();
        // Same measurement inventory from both paths (modulo Health,
        // which only appears when a node is abnormal).
        let core = |v: &Vec<String>| {
            v.iter().filter(|m| m.as_str() != "Health").cloned().collect::<Vec<_>>()
        };
        assert_eq!(core(&ma), core(&mb));
    }

    #[test]
    fn builder_queries_see_collected_data() {
        let mut m = small(6);
        m.run_intervals_bulk(30);
        let t0 = QmasterConfig::default().start_time;
        let req = BuilderRequest::new(t0, t0 + 1800, 300, Aggregation::Max).unwrap();
        let outcome = m.builder_query(&req, ExecMode::Sequential).unwrap();
        assert!(outcome.points_out > 0);
        let node = outcome.document.get("10.101.1.1").expect("node in doc");
        assert!(!node.get("power").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn api_serves_over_sockets() {
        let mut m = small(3);
        m.run_intervals_bulk(10);
        let server = m.serve_api(0).unwrap();
        let client = monster_http::Client::new();
        let resp = client.send_ok(server.addr(), &monster_http::Request::get("/v1/nodes")).unwrap();
        assert_eq!(resp.json_body().unwrap().get("nodes").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn amplification_scales_simulated_time() {
        let mk = |amp: bool| {
            let mut m = Monster::new(MonsterConfig {
                nodes: 8,
                amplify_to_quanah: amp,
                bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
                ..MonsterConfig::default()
            });
            m.run_intervals_bulk(20);
            let t0 = QmasterConfig::default().start_time;
            let req = BuilderRequest::new(t0, t0 + 1200, 300, Aggregation::Max).unwrap();
            let out = m.builder_query(&req, ExecMode::Sequential).unwrap();
            out.query_processing_time()
        };
        let plain = mk(false);
        let amplified = mk(true);
        assert!(
            amplified.as_secs_f64() > plain.as_secs_f64() * 2.0,
            "plain {plain}, amplified {amplified}"
        );
    }

    #[test]
    fn rollups_answer_coarse_queries_identically_but_cheaper() {
        let build = |rollups: bool| {
            let mut m = small(6);
            if rollups {
                m.enable_rollups(3600).unwrap();
            }
            // 3 hours of 60 s data.
            m.run_intervals_bulk(180);
            m
        };
        let raw = build(false);
        let rolled = build(true);
        let t0 = QmasterConfig::default().start_time;
        let req = BuilderRequest::new(t0, t0 + 3 * 3600, 3600, Aggregation::Max).unwrap();
        let out_raw = raw.builder_query(&req, ExecMode::Sequential).unwrap();
        let out_rolled = rolled.builder_query(&req, ExecMode::Sequential).unwrap();
        // Identical answers for node power at hourly max...
        let series = |o: &monster_builder::BuilderOutcome| {
            o.document
                .get("10.101.1.1")
                .and_then(|n| n.get("power"))
                .cloned()
                .expect("power series")
        };
        assert_eq!(series(&out_raw), series(&out_rolled));
        // ...from far fewer scanned points.
        assert!(
            out_rolled.cost.points * 5 < out_raw.cost.points,
            "rolled {} raw {}",
            out_rolled.cost.points,
            out_raw.cost.points
        );
    }

    #[test]
    fn durable_deployment_recovers_across_restart() {
        let dir =
            std::env::temp_dir().join(format!("monster-deploy-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = MonsterConfig {
            nodes: 4,
            data_dir: Some(dir.clone()),
            bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
            ..MonsterConfig::default()
        };
        let mut m = Monster::new(config.clone());
        assert_eq!(m.recovery().unwrap().replayed_points, 0, "fresh dir replays nothing");
        m.run_intervals_bulk(10);
        let points = m.db().stats().points;
        assert!(points > 0);
        drop(m); // best-effort final sync, then the process image is gone

        let m2 = Monster::new(config);
        let report = m2.recovery().expect("durable deployment reports recovery");
        // `replayed_points` counts DataPoints; `stats().points` counts
        // field values (Power carries Reading + sometimes Health), so the
        // field-level count is the equality that matters.
        assert!(report.replayed_points > 0 && report.records_failed == 0);
        assert_eq!(m2.db().stats().points, points, "restart must replay the full history");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn workload_drives_cluster_load() {
        let mut m = Monster::new(MonsterConfig {
            nodes: 32,
            bmc: BmcConfig { failure_rate: 0.0, stall_rate: 0.0, ..BmcConfig::default() },
            ..MonsterConfig::default()
        });
        // Run 2 hours of bulk collection; the default workload should put
        // jobs on the cluster.
        m.run_intervals_bulk(120);
        assert!(
            !m.qmaster().running_jobs().is_empty() || !m.qmaster().finished_jobs().is_empty(),
            "no jobs appeared"
        );
    }
}
