//! Radar-chart profiles: normalized nine-dimensional node state (Fig. 7).

/// The nine dimensions the radar charts render, in display order.
pub const METRIC_NAMES: [&str; 9] = [
    "CPU1 Temp",
    "CPU2 Temp",
    "Inlet Temp",
    "Fan 1",
    "Fan 2",
    "Fan 3",
    "Fan 4",
    "Power",
    "Memory Usage",
];

/// Expected operating ranges per dimension (lo, hi), used to normalize a
/// single node's profile without needing the whole fleet: temperatures in
/// °C, fans in RPM, power in W, memory as a fraction.
pub const DEFAULT_RANGES: [(f64, f64); 9] = [
    (20.0, 100.0),
    (20.0, 100.0),
    (10.0, 40.0),
    (2_000.0, 16_000.0),
    (2_000.0, 16_000.0),
    (2_000.0, 16_000.0),
    (2_000.0, 16_000.0),
    (80.0, 450.0),
    (0.0, 1.0),
];

/// A node's normalized profile.
#[derive(Debug, Clone, PartialEq)]
pub struct RadarProfile {
    /// Node label ("1-31").
    pub node: String,
    /// Raw readings in [`METRIC_NAMES`] order.
    pub raw: [f64; 9],
    /// Normalized readings, each in [0, 1].
    pub normalized: [f64; 9],
}

impl RadarProfile {
    /// Build a profile from raw readings using [`DEFAULT_RANGES`].
    pub fn new(node: impl Into<String>, raw: [f64; 9]) -> Self {
        let mut normalized = [0.0; 9];
        for (i, (&x, &(lo, hi))) in raw.iter().zip(DEFAULT_RANGES.iter()).enumerate() {
            normalized[i] = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
        }
        RadarProfile { node: node.into(), raw, normalized }
    }

    /// The polygon "area" of the radar glyph (normalized, 0..1): the mean
    /// of adjacent-dimension products — a scalar summary of how "hot" the
    /// profile looks.
    pub fn glyph_area(&self) -> f64 {
        let n = self.normalized.len();
        (0..n).map(|i| self.normalized[i] * self.normalized[(i + 1) % n]).sum::<f64>() / n as f64
    }

    /// The Fig. 7 classification: a profile is *critical* when its hottest
    /// CPU is in the top decile of range or memory usage exceeds 90 %.
    pub fn is_critical(&self) -> bool {
        self.normalized[0].max(self.normalized[1]) > 0.9 || self.normalized[8] > 0.9
    }
}

/// Normalize a whole fleet against its own observed ranges (the
/// fleet-relative normalization the clustering uses).
pub fn fleet_normalized(raw: &[[f64; 9]]) -> Vec<[f64; 9]> {
    if raw.is_empty() {
        return Vec::new();
    }
    let mut lo = [f64::INFINITY; 9];
    let mut hi = [f64::NEG_INFINITY; 9];
    for row in raw {
        for d in 0..9 {
            lo[d] = lo[d].min(row[d]);
            hi[d] = hi[d].max(row[d]);
        }
    }
    raw.iter()
        .map(|row| {
            let mut out = [0.0; 9];
            for d in 0..9 {
                out[d] = if hi[d] > lo[d] { (row[d] - lo[d]) / (hi[d] - lo[d]) } else { 0.5 };
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_node() -> RadarProfile {
        RadarProfile::new("1-30", [45.0, 46.0, 21.0, 4500.0, 4510.0, 4480.0, 4520.0, 180.0, 0.3])
    }

    fn hot_node() -> RadarProfile {
        // Fig. 7's right panel: high CPU temperature and high memory usage.
        RadarProfile::new(
            "1-31",
            [95.0, 93.0, 24.0, 14500.0, 14400.0, 14600.0, 14550.0, 390.0, 0.95],
        )
    }

    #[test]
    fn normalization_bounds_and_ordering() {
        let n = normal_node();
        let h = hot_node();
        for v in n.normalized.iter().chain(h.normalized.iter()) {
            assert!((0.0..=1.0).contains(v));
        }
        // Hot node dominates on every dimension except inlet.
        for d in [0, 1, 3, 4, 5, 6, 7, 8] {
            assert!(h.normalized[d] > n.normalized[d], "dim {d}");
        }
    }

    #[test]
    fn classification_separates_fig7_cases() {
        assert!(!normal_node().is_critical());
        assert!(hot_node().is_critical());
        // Memory alone can trip it.
        let memhog = RadarProfile::new(
            "2-1",
            [50.0, 50.0, 20.0, 5000.0, 5000.0, 5000.0, 5000.0, 200.0, 0.97],
        );
        assert!(memhog.is_critical());
    }

    #[test]
    fn glyph_area_orders_profiles() {
        assert!(hot_node().glyph_area() > normal_node().glyph_area());
        let idle =
            RadarProfile::new("3-1", [20.0, 20.0, 10.0, 2000.0, 2000.0, 2000.0, 2000.0, 80.0, 0.0]);
        assert_eq!(idle.glyph_area(), 0.0);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let p =
            RadarProfile::new("x", [500.0, -40.0, 20.0, 99999.0, 0.0, 5000.0, 5000.0, 200.0, 2.0]);
        assert_eq!(p.normalized[0], 1.0);
        assert_eq!(p.normalized[1], 0.0);
        assert_eq!(p.normalized[3], 1.0);
        assert_eq!(p.normalized[8], 1.0);
    }

    #[test]
    fn fleet_normalization_uses_observed_extremes() {
        let raw = vec![
            [40.0, 40.0, 20.0, 4000.0, 4000.0, 4000.0, 4000.0, 150.0, 0.2],
            [80.0, 80.0, 25.0, 12000.0, 12000.0, 12000.0, 12000.0, 380.0, 0.9],
        ];
        let normed = fleet_normalized(&raw);
        assert_eq!(normed[0][0], 0.0);
        assert_eq!(normed[1][0], 1.0);
        // Degenerate dimension (same value) maps to 0.5.
        let flat = vec![[1.0; 9], [1.0; 9]];
        assert!(fleet_normalized(&flat).iter().all(|r| r.iter().all(|&v| v == 0.5)));
        assert!(fleet_normalized(&[]).is_empty());
    }
}
