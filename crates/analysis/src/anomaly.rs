//! Streaming anomaly detection over node metrics.
//!
//! The paper's introduction motivates MonSTer with the need to "quickly
//! understand the system status, detect anomalies in time, and provide
//! guidance for finding and solving problems". This module provides the
//! detector the deployment runs over collected series: a per-signal
//! exponentially-weighted mean/variance tracker flagging observations that
//! sit far outside the signal's recent behaviour, with hysteresis so a
//! single noisy sample neither raises nor clears an alarm.

use monster_util::EpochSecs;
use std::collections::HashMap;

/// Detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// EWMA decay per observation (0 < alpha ≤ 1); smaller = longer memory.
    pub alpha: f64,
    /// Flag when |x − mean| exceeds this many EW standard deviations.
    pub threshold_sigma: f64,
    /// Consecutive outliers required to raise an alarm.
    pub raise_after: u32,
    /// Consecutive inliers required to clear it.
    pub clear_after: u32,
    /// Observations to absorb before flagging anything (warm-up).
    pub warmup: u32,
    /// Absolute deviation floor: differences smaller than this are never
    /// anomalous, however tight the variance (guards near-constant
    /// signals).
    pub min_deviation: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            alpha: 0.15,
            threshold_sigma: 4.0,
            raise_after: 2,
            clear_after: 3,
            warmup: 10,
            min_deviation: 1.0,
        }
    }
}

/// An alarm transition.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyEvent {
    /// Signal key (e.g. `"1-31/power"`).
    pub signal: String,
    /// When the transition happened.
    pub time: EpochSecs,
    /// The observation that completed the transition.
    pub value: f64,
    /// The tracker's mean at that moment.
    pub expected: f64,
    /// True = alarm raised; false = alarm cleared.
    pub raised: bool,
}

#[derive(Debug, Clone)]
struct SignalState {
    mean: f64,
    var: f64,
    seen: u32,
    outlier_run: u32,
    inlier_run: u32,
    alarmed: bool,
}

/// The detector: independent trackers per signal key.
#[derive(Debug, Default)]
pub struct AnomalyDetector {
    config: AnomalyConfig,
    signals: HashMap<String, SignalState>,
}

impl AnomalyDetector {
    /// A detector with the given tuning.
    pub fn new(config: AnomalyConfig) -> Self {
        AnomalyDetector { config, signals: HashMap::new() }
    }

    /// Whether a signal is currently alarmed.
    pub fn is_alarmed(&self, signal: &str) -> bool {
        self.signals.get(signal).map(|s| s.alarmed).unwrap_or(false)
    }

    /// Number of signals tracked.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Feed one observation; returns an event on an alarm transition.
    pub fn observe(&mut self, signal: &str, time: EpochSecs, value: f64) -> Option<AnomalyEvent> {
        let c = self.config;
        let s = self.signals.entry(signal.to_string()).or_insert(SignalState {
            mean: value,
            var: 0.0,
            seen: 0,
            outlier_run: 0,
            inlier_run: 0,
            alarmed: false,
        });
        s.seen += 1;
        let deviation = (value - s.mean).abs();
        let sigma = s.var.sqrt().max(c.min_deviation / c.threshold_sigma);
        let is_outlier = s.seen > c.warmup
            && deviation > c.threshold_sigma * sigma
            && deviation > c.min_deviation;

        let mut event = None;
        if is_outlier {
            s.outlier_run += 1;
            s.inlier_run = 0;
            if !s.alarmed && s.outlier_run >= c.raise_after {
                s.alarmed = true;
                event = Some(AnomalyEvent {
                    signal: signal.to_string(),
                    time,
                    value,
                    expected: s.mean,
                    raised: true,
                });
            }
            // Outliers do not pollute the baseline.
        } else {
            s.inlier_run += 1;
            s.outlier_run = 0;
            if s.alarmed && s.inlier_run >= c.clear_after {
                s.alarmed = false;
                event = Some(AnomalyEvent {
                    signal: signal.to_string(),
                    time,
                    value,
                    expected: s.mean,
                    raised: false,
                });
            }
            // EW update on inliers only.
            let delta = value - s.mean;
            s.mean += c.alpha * delta;
            s.var = (1.0 - c.alpha) * (s.var + c.alpha * delta * delta);
        }
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> AnomalyDetector {
        AnomalyDetector::new(AnomalyConfig::default())
    }

    fn feed(
        d: &mut AnomalyDetector,
        signal: &str,
        values: impl IntoIterator<Item = f64>,
    ) -> Vec<AnomalyEvent> {
        values
            .into_iter()
            .enumerate()
            .filter_map(|(i, v)| d.observe(signal, EpochSecs::new(i as i64 * 60), v))
            .collect()
    }

    #[test]
    fn steady_signal_never_alarms() {
        let mut d = detector();
        let events = feed(&mut d, "1-1/power", (0..200).map(|i| 273.0 + ((i % 7) as f64) * 0.3));
        assert!(events.is_empty(), "{events:?}");
        assert!(!d.is_alarmed("1-1/power"));
    }

    #[test]
    fn step_change_raises_then_clears() {
        let mut d = detector();
        // 50 quiet samples, 5 hot samples, then quiet again.
        let series: Vec<f64> = (0..50)
            .map(|i| 270.0 + (i % 5) as f64)
            .chain((0..5).map(|_| 430.0))
            .chain((0..50).map(|i| 270.0 + (i % 5) as f64))
            .collect();
        let events = feed(&mut d, "1-2/power", series);
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(events[0].raised);
        assert!(events[0].value > 400.0);
        assert!(!events[1].raised);
        assert!(!d.is_alarmed("1-2/power"));
    }

    #[test]
    fn single_spike_is_debounced() {
        let mut d = detector();
        let series: Vec<f64> =
            (0..40).map(|i| if i == 25 { 450.0 } else { 272.0 + (i % 3) as f64 }).collect();
        let events = feed(&mut d, "s", series);
        assert!(events.is_empty(), "one-sample glitch alarmed: {events:?}");
    }

    #[test]
    fn warmup_suppresses_early_flags() {
        let mut d = detector();
        // Wild values inside the warm-up window must not alarm.
        let events = feed(&mut d, "s", [100.0, 900.0, 50.0, 800.0, 120.0]);
        assert!(events.is_empty());
    }

    #[test]
    fn slow_drift_tracks_without_alarm() {
        let mut d = detector();
        // +0.5 W per sample: the EWMA follows.
        let events = feed(&mut d, "s", (0..300).map(|i| 200.0 + i as f64 * 0.5));
        assert!(events.is_empty(), "drift alarmed: {events:?}");
    }

    #[test]
    fn signals_are_independent() {
        let mut d = detector();
        for i in 0..60 {
            d.observe("a", EpochSecs::new(i * 60), 100.0 + (i % 3) as f64);
            d.observe("b", EpochSecs::new(i * 60), 300.0 + (i % 3) as f64);
        }
        // Blow up only "a".
        for i in 60..65 {
            d.observe("a", EpochSecs::new(i * 60), 500.0);
            d.observe("b", EpochSecs::new(i * 60), 300.0);
        }
        assert!(d.is_alarmed("a"));
        assert!(!d.is_alarmed("b"));
        assert_eq!(d.signal_count(), 2);
    }

    #[test]
    fn alarm_baseline_frozen_during_incident() {
        // The baseline must not chase the anomalous level, or the alarm
        // would self-clear while the incident persists.
        let mut d = detector();
        let mut series: Vec<f64> = (0..50).map(|i| 270.0 + (i % 5) as f64).collect();
        series.extend(std::iter::repeat_n(430.0, 40));
        let events = feed(&mut d, "s", series);
        assert_eq!(events.len(), 1, "alarm self-cleared: {events:?}");
        assert!(d.is_alarmed("s"));
    }
}
