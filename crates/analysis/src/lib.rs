//! `monster-analysis` — the analytics behind HiperJobViz.
//!
//! The paper's data-analysis layer (§III-E) is a visualization tool; what
//! this crate reproduces is every data product those visuals render:
//!
//! * [`kmeans`] — the (modified) k-means clustering that groups the 467
//!   nodes into the seven host groups of Fig. 9 and colours Fig. 8's
//!   historical trend;
//! * [`radar`] — per-node nine-dimensional normalized profiles (Fig. 7's
//!   radar charts) and the normal/critical classification;
//! * [`histogram`] — the per-user symmetric-histogram matrix of Fig. 9's
//!   right panel (resource-usage variance per dimension per user);
//! * [`timeline`] — the Fig. 6 job-scheduling timeline: per-user waiting/
//!   running bars with job and host counts;
//! * [`trend`] — Fig. 8's historical status trend: a node's metrics over
//!   time with the cluster each window belongs to;
//! * [`anomaly`] — the streaming anomaly detector behind the paper's
//!   "detect anomalies in time" motivation (EW mean/variance with
//!   hysteresis).

#![warn(missing_docs)]

pub mod anomaly;
pub mod histogram;
pub mod kmeans;
pub mod pca;
pub mod radar;
pub mod report;
pub mod timeline;
pub mod trend;

pub use anomaly::{AnomalyConfig, AnomalyDetector, AnomalyEvent};
pub use kmeans::{KMeans, KMeansConfig};
pub use pca::Pca;
pub use radar::{RadarProfile, METRIC_NAMES};
pub use report::ClusterReport;
pub use timeline::{JobBar, UserTimeline};
