//! Principal component analysis for node-profile layout.
//!
//! HiperJobViz positions high-dimensional node glyphs on a 2-D canvas; the
//! paper cites Glyphboard's "glyphs with dimensionality reduction"
//! approach. This is the reduction: PCA over the fleet's nine-dimensional
//! profiles via power iteration with deflation — dependency-free, exact
//! enough for layout, and deterministic.

// Symmetric-matrix arithmetic reads better indexed than with iterator
// chains; silence the pedantic loop lint for this module.
#![allow(clippy::needless_range_loop)]

use monster_sim::SimRng;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-dimension means (centering vector).
    pub means: Vec<f64>,
    /// Principal axes, each unit-length, strongest first (`k × dims`).
    pub components: Vec<Vec<f64>>,
    /// Variance captured along each axis.
    pub explained: Vec<f64>,
}

/// Iterations per component; power iteration converges fast on separated
/// eigenvalues and layout tolerates the rest.
const ITERS: usize = 200;

impl Pca {
    /// Fit `k` components to `data` (`n × dims`). Panics on empty or
    /// ragged input.
    pub fn fit(data: &[Vec<f64>], k: usize) -> Pca {
        assert!(!data.is_empty(), "cannot fit PCA on zero rows");
        let dims = data[0].len();
        assert!(data.iter().all(|r| r.len() == dims), "ragged input");
        let k = k.min(dims);
        let n = data.len() as f64;

        let mut means = vec![0.0; dims];
        for row in data {
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in means.iter_mut() {
            *m /= n;
        }
        let centered: Vec<Vec<f64>> =
            data.iter().map(|row| row.iter().zip(&means).map(|(x, m)| x - m).collect()).collect();

        // Covariance matrix (dims × dims).
        let mut cov = vec![vec![0.0; dims]; dims];
        for row in &centered {
            for i in 0..dims {
                for j in i..dims {
                    cov[i][j] += row[i] * row[j];
                }
            }
        }
        for i in 0..dims {
            for j in i..dims {
                cov[i][j] /= n;
                cov[j][i] = cov[i][j];
            }
        }

        let mut rng = SimRng::derive(0x9CA, "pca-init");
        let mut components: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);
        let mut work = cov;
        for _ in 0..k {
            let mut v: Vec<f64> = (0..dims).map(|_| rng.normal(0.0, 1.0)).collect();
            normalize(&mut v);
            let mut eigval = 0.0;
            for _ in 0..ITERS {
                let mut next = mat_vec(&work, &v);
                eigval = norm(&next);
                if eigval < 1e-12 {
                    break;
                }
                for x in next.iter_mut() {
                    *x /= eigval;
                }
                v = next;
            }
            // Deflate: remove the found component from the matrix.
            for i in 0..dims {
                for j in 0..dims {
                    work[i][j] -= eigval * v[i] * v[j];
                }
            }
            components.push(v);
            explained.push(eigval);
        }
        Pca { means, components, explained }
    }

    /// Project one observation onto the fitted axes.
    pub fn project(&self, row: &[f64]) -> Vec<f64> {
        let centered: Vec<f64> = row.iter().zip(&self.means).map(|(x, m)| x - m).collect();
        self.components.iter().map(|c| dot(c, &centered)).collect()
    }

    /// Fraction of total variance the kept components capture, given the
    /// data they were fitted on.
    pub fn explained_fraction(&self, data: &[Vec<f64>]) -> f64 {
        let dims = self.means.len();
        let n = data.len() as f64;
        let mut total = 0.0;
        for row in data {
            for d in 0..dims {
                let c = row[d] - self.means[d];
                total += c * c;
            }
        }
        total /= n;
        if total <= 0.0 {
            return 1.0;
        }
        self.explained.iter().sum::<f64>() / total
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

fn mat_vec(m: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    m.iter().map(|row| dot(row, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data stretched 10:1 along the (1,1)/√2 direction in 2-D.
    fn anisotropic() -> Vec<Vec<f64>> {
        let mut rng = SimRng::derive(5, "pca-test");
        (0..400)
            .map(|_| {
                let main = rng.normal(0.0, 10.0);
                let cross = rng.normal(0.0, 1.0);
                let s = std::f64::consts::FRAC_1_SQRT_2;
                vec![3.0 + main * s - cross * s, -2.0 + main * s + cross * s]
            })
            .collect()
    }

    #[test]
    fn recovers_principal_axis() {
        let data = anisotropic();
        let pca = Pca::fit(&data, 2);
        let c = &pca.components[0];
        // First axis ≈ ±(1,1)/√2.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let alignment = (c[0] * s + c[1] * s).abs();
        assert!(alignment > 0.99, "axis {c:?}, alignment {alignment}");
        // Eigenvalues ordered and in the right ratio (~100:1).
        assert!(pca.explained[0] > pca.explained[1]);
        let ratio = pca.explained[0] / pca.explained[1];
        assert!(ratio > 25.0, "variance ratio {ratio}");
        // Means recovered.
        assert!((pca.means[0] - 3.0).abs() < 1.5);
        assert!((pca.means[1] + 2.0).abs() < 1.5);
    }

    #[test]
    fn components_are_orthonormal() {
        let data = anisotropic();
        let pca = Pca::fit(&data, 2);
        let c0 = &pca.components[0];
        let c1 = &pca.components[1];
        assert!((norm(c0) - 1.0).abs() < 1e-6);
        assert!((norm(c1) - 1.0).abs() < 1e-6);
        assert!(dot(c0, c1).abs() < 1e-4, "not orthogonal: {}", dot(c0, c1));
    }

    #[test]
    fn two_components_capture_all_2d_variance() {
        let data = anisotropic();
        let pca = Pca::fit(&data, 2);
        let frac = pca.explained_fraction(&data);
        assert!(frac > 0.999, "explained {frac}");
    }

    #[test]
    fn projection_separates_clusters() {
        // Two 9-D blobs differing along one axis: their 1-D projections
        // must be separable.
        let mut rng = SimRng::derive(7, "pca-clusters");
        let mut data = Vec::new();
        for c in 0..2 {
            for _ in 0..50 {
                let mut row = vec![0.0; 9];
                for (d, item) in row.iter_mut().enumerate() {
                    *item = rng.normal(0.0, 0.5) + if d == 4 { c as f64 * 20.0 } else { 0.0 };
                }
                data.push(row);
            }
        }
        let pca = Pca::fit(&data, 1);
        let proj: Vec<f64> = data.iter().map(|r| pca.project(r)[0]).collect();
        let a = &proj[..50];
        let b = &proj[50..];
        let (amin, amax) = (
            a.iter().cloned().fold(f64::MAX, f64::min),
            a.iter().cloned().fold(f64::MIN, f64::max),
        );
        let (bmin, bmax) = (
            b.iter().cloned().fold(f64::MAX, f64::min),
            b.iter().cloned().fold(f64::MIN, f64::max),
        );
        assert!(amax < bmin || bmax < amin, "clusters overlap in projection");
    }

    #[test]
    fn deterministic() {
        let data = anisotropic();
        let a = Pca::fit(&data, 2);
        let b = Pca::fit(&data, 2);
        assert_eq!(a.components, b.components);
        assert_eq!(a.explained, b.explained);
    }

    #[test]
    fn degenerate_constant_data() {
        let data = vec![vec![5.0, 5.0]; 10];
        let pca = Pca::fit(&data, 2);
        assert!(pca.explained.iter().all(|&e| e < 1e-9));
        assert_eq!(pca.project(&[5.0, 5.0]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_input_panics() {
        Pca::fit(&[], 2);
    }
}
