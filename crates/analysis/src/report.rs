//! Operational reports: the daily summary a site would mail out.
//!
//! The Background section of the paper describes Univa Unisight's role:
//! "generate various reports across the cluster". This module produces that
//! report from simulator state — utilization, queue statistics, top users,
//! health incidents — as a plain structure (renderable as text or JSON).

use crate::timeline::build_timeline;
use monster_scheduler::{JobState, Qmaster};
use monster_util::EpochSecs;

/// One user's row in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct UserReport {
    /// The account name.
    pub user: String,
    /// Jobs submitted in the window.
    pub jobs_submitted: usize,
    /// Jobs that finished successfully.
    pub jobs_done: usize,
    /// Jobs killed by failures.
    pub jobs_failed: usize,
    /// Core-hours consumed by finished jobs.
    pub core_hours: f64,
    /// Mean queue wait, seconds.
    pub mean_wait_secs: f64,
    /// Distinct hosts touched.
    pub hosts_used: usize,
}

/// A whole-cluster report over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Window start.
    pub start: EpochSecs,
    /// Window end.
    pub end: EpochSecs,
    /// Nodes in the cluster.
    pub nodes: usize,
    /// Jobs submitted in the window.
    pub jobs_submitted: usize,
    /// Jobs completed in the window.
    pub jobs_done: usize,
    /// Jobs failed in the window.
    pub jobs_failed: usize,
    /// Jobs still pending at the window edge.
    pub jobs_pending: usize,
    /// Core-hours delivered to finished jobs.
    pub core_hours_delivered: f64,
    /// Delivered core-hours over the window's total capacity, 0..=1.
    pub utilization: f64,
    /// Per-user rows, heaviest consumer first.
    pub users: Vec<UserReport>,
}

impl ClusterReport {
    /// Build the report for `[start, end)` from scheduler state.
    pub fn build(qm: &Qmaster, start: EpochSecs, end: EpochSecs) -> ClusterReport {
        assert!(end > start, "empty report window");
        let slots_per_node = monster_scheduler::host::SLOTS_PER_NODE;
        let nodes = qm.node_ids().len();

        let mut users: Vec<UserReport> = Vec::new();
        let mut total_done = 0;
        let mut total_failed = 0;
        let mut total_core_hours = 0.0;
        for tl in build_timeline(qm.jobs(), start, end) {
            let mut row = UserReport {
                user: tl.user.as_str().to_string(),
                jobs_submitted: tl.job_count(),
                jobs_done: 0,
                jobs_failed: 0,
                core_hours: 0.0,
                mean_wait_secs: tl.mean_wait_secs(end),
                hosts_used: tl.hosts_used,
            };
            for bar in &tl.bars {
                let Some(job) = qm.job(bar.job) else { continue };
                match &job.state {
                    JobState::Done { start: s, end: e, .. } => {
                        row.jobs_done += 1;
                        row.core_hours +=
                            (*e - *s) as f64 * job.total_slots(slots_per_node) as f64 / 3600.0;
                    }
                    JobState::Failed { .. } => row.jobs_failed += 1,
                    _ => {}
                }
            }
            total_done += row.jobs_done;
            total_failed += row.jobs_failed;
            total_core_hours += row.core_hours;
            users.push(row);
        }
        users.sort_by(|a, b| {
            b.core_hours
                .partial_cmp(&a.core_hours)
                .expect("finite core-hours")
                .then_with(|| a.user.cmp(&b.user))
        });

        let capacity_core_hours =
            nodes as f64 * slots_per_node as f64 * (end - start) as f64 / 3600.0;
        ClusterReport {
            start,
            end,
            nodes,
            jobs_submitted: users.iter().map(|u| u.jobs_submitted).sum(),
            jobs_done: total_done,
            jobs_failed: total_failed,
            jobs_pending: qm.pending_jobs().len(),
            core_hours_delivered: total_core_hours,
            utilization: if capacity_core_hours > 0.0 {
                (total_core_hours / capacity_core_hours).min(1.0)
            } else {
                0.0
            },
            users,
        }
    }

    /// Render as plain text (the mailed report).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "CLUSTER REPORT  {} .. {}\n{} nodes | {} submitted | {} done | {} failed | {} pending\n",
            self.start,
            self.end,
            self.nodes,
            self.jobs_submitted,
            self.jobs_done,
            self.jobs_failed,
            self.jobs_pending,
        ));
        out.push_str(&format!(
            "delivered {:.1} core-hours ({:.1}% of capacity)\n\n",
            self.core_hours_delivered,
            self.utilization * 100.0
        ));
        out.push_str(&format!(
            "{:<12} {:>6} {:>6} {:>6} {:>12} {:>10} {:>6}\n",
            "user", "subm", "done", "fail", "core-hours", "wait(min)", "hosts"
        ));
        for u in &self.users {
            out.push_str(&format!(
                "{:<12} {:>6} {:>6} {:>6} {:>12.1} {:>10.1} {:>6}\n",
                u.user,
                u.jobs_submitted,
                u.jobs_done,
                u.jobs_failed,
                u.core_hours,
                u.mean_wait_secs / 60.0,
                u.hosts_used,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_scheduler::{JobShape, JobSpec, QmasterConfig};
    use monster_util::UserName;

    fn spec(user: &str, slots: u32, runtime: i64) -> JobSpec {
        JobSpec {
            user: UserName::new(user),
            name: format!("{user}.sh"),
            shape: JobShape::Serial { slots },
            runtime_secs: runtime,
            priority: 0,
            mem_per_slot_gib: 1.0,
        }
    }

    fn scenario() -> (Qmaster, EpochSecs) {
        let cfg = QmasterConfig { nodes: 4, ..QmasterConfig::default() };
        let t0 = cfg.start_time;
        let mut qm = Qmaster::new(cfg);
        // alice: two 1-hour 36-core jobs (72 core-hours).
        qm.submit_at(t0 + 10, spec("alice", 36, 3600));
        qm.submit_at(t0 + 20, spec("alice", 36, 3600));
        // bob: one 2-hour 18-core job (36 core-hours).
        qm.submit_at(t0 + 30, spec("bob", 18, 7200));
        // carol: a job that will not finish inside the window.
        qm.submit_at(t0 + 40, spec("carol", 4, 500_000));
        qm.run_until(t0 + 4 * 3600);
        (qm, t0)
    }

    #[test]
    fn report_aggregates_per_user() {
        let (qm, t0) = scenario();
        let report = ClusterReport::build(&qm, t0, t0 + 4 * 3600);
        assert_eq!(report.jobs_submitted, 4);
        assert_eq!(report.jobs_done, 3);
        assert_eq!(report.jobs_failed, 0);
        assert_eq!(report.nodes, 4);

        // alice leads with ~72 core-hours.
        assert_eq!(report.users[0].user, "alice");
        assert!((report.users[0].core_hours - 72.0).abs() < 0.5);
        assert_eq!(report.users[1].user, "bob");
        assert!((report.users[1].core_hours - 36.0).abs() < 0.5);
        // carol's running job contributes no finished core-hours yet.
        let carol = report.users.iter().find(|u| u.user == "carol").unwrap();
        assert_eq!(carol.core_hours, 0.0);
        assert_eq!(carol.jobs_done, 0);
    }

    #[test]
    fn utilization_is_bounded_and_sane() {
        let (qm, t0) = scenario();
        let report = ClusterReport::build(&qm, t0, t0 + 4 * 3600);
        // 108 finished core-hours over 4 nodes x 36 cores x 4 h = 576.
        assert!(
            (report.utilization - 108.0 / 576.0).abs() < 0.01,
            "utilization {}",
            report.utilization
        );
        assert!(report.utilization <= 1.0);
    }

    #[test]
    fn text_rendering_contains_the_rows() {
        let (qm, t0) = scenario();
        let text = ClusterReport::build(&qm, t0, t0 + 4 * 3600).to_text();
        assert!(text.contains("alice"));
        assert!(text.contains("bob"));
        assert!(text.contains("core-hours"));
        assert!(text.contains("4 nodes"));
    }

    #[test]
    fn window_excludes_outside_submissions() {
        let (qm, t0) = scenario();
        // A window covering only the first two submissions.
        let report = ClusterReport::build(&qm, t0, t0 + 25);
        assert_eq!(report.jobs_submitted, 2);
        assert!(report.users.iter().all(|u| u.user == "alice"));
    }

    #[test]
    #[should_panic(expected = "empty report window")]
    fn empty_window_panics() {
        let (qm, t0) = scenario();
        ClusterReport::build(&qm, t0, t0);
    }
}
