//! Fig. 8's historical status trend.
//!
//! One node's metrics over a time window, each sample coloured by the
//! cluster its instantaneous profile belongs to ("the colors indicate the
//! clustering group that the status belongs to in a particular time
//! window").

use crate::kmeans::KMeans;
use monster_util::EpochSecs;

/// One sample on the trend.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Sample time.
    pub time: EpochSecs,
    /// The raw nine-metric profile at that time.
    pub metrics: [f64; 9],
    /// Cluster the profile belongs to (background colour).
    pub cluster: usize,
}

/// A node's historical trend.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrend {
    /// Node label ("1-31").
    pub node: String,
    /// Samples in time order.
    pub points: Vec<TrendPoint>,
}

impl NodeTrend {
    /// Build a trend by classifying each historical sample against a
    /// fitted fleet clustering.
    pub fn build(
        node: impl Into<String>,
        samples: &[(EpochSecs, [f64; 9])],
        clustering: &KMeans,
    ) -> NodeTrend {
        let mut points: Vec<TrendPoint> = samples
            .iter()
            .map(|(t, m)| TrendPoint { time: *t, metrics: *m, cluster: clustering.predict(m) })
            .collect();
        points.sort_by_key(|p| p.time);
        NodeTrend { node: node.into(), points }
    }

    /// Contiguous runs of the same cluster: `(start, end, cluster)` —
    /// the coloured background bands of Fig. 8.
    pub fn bands(&self) -> Vec<(EpochSecs, EpochSecs, usize)> {
        let mut bands = Vec::new();
        let mut iter = self.points.iter();
        let Some(first) = iter.next() else { return bands };
        let mut start = first.time;
        let mut last = first.time;
        let mut cluster = first.cluster;
        for p in iter {
            if p.cluster != cluster {
                bands.push((start, p.time, cluster));
                start = p.time;
                cluster = p.cluster;
            }
            last = p.time;
        }
        bands.push((start, last, cluster));
        bands
    }

    /// Extract one metric's series (for the line charts of Fig. 8).
    pub fn metric_series(&self, dimension: usize) -> Vec<(EpochSecs, f64)> {
        assert!(dimension < 9);
        self.points.iter().map(|p| (p.time, p.metrics[dimension])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::KMeansConfig;

    fn clustering() -> KMeans {
        // Two regimes: idle-ish and hot.
        let mut data = Vec::new();
        for i in 0..30 {
            let j = i as f64 * 0.01;
            data.push(vec![40.0 + j, 41.0, 20.0, 4000.0, 4000.0, 4000.0, 4000.0, 150.0, 0.2]);
            data.push(vec![85.0 + j, 86.0, 24.0, 14000.0, 14000.0, 14000.0, 14000.0, 380.0, 0.9]);
        }
        KMeans::fit(&data, &KMeansConfig { k: 2, ..KMeansConfig::default() })
    }

    fn idle(t: i64) -> (EpochSecs, [f64; 9]) {
        (EpochSecs::new(t), [41.0, 41.5, 20.0, 4100.0, 4000.0, 4050.0, 4020.0, 155.0, 0.25])
    }

    fn hot(t: i64) -> (EpochSecs, [f64; 9]) {
        (EpochSecs::new(t), [86.0, 87.0, 24.0, 13900.0, 14100.0, 14000.0, 14050.0, 375.0, 0.88])
    }

    #[test]
    fn trend_classifies_each_sample() {
        let km = clustering();
        let samples = vec![idle(0), idle(60), hot(120), hot(180), idle(240)];
        let trend = NodeTrend::build("1-31", &samples, &km);
        assert_eq!(trend.points.len(), 5);
        // Idle samples share a cluster; hot samples share the other.
        let c_idle = trend.points[0].cluster;
        let c_hot = trend.points[2].cluster;
        assert_ne!(c_idle, c_hot);
        assert_eq!(trend.points[1].cluster, c_idle);
        assert_eq!(trend.points[3].cluster, c_hot);
        assert_eq!(trend.points[4].cluster, c_idle);
    }

    #[test]
    fn bands_merge_contiguous_runs() {
        let km = clustering();
        let samples = vec![idle(0), idle(60), hot(120), hot(180), idle(240)];
        let trend = NodeTrend::build("1-31", &samples, &km);
        let bands = trend.bands();
        assert_eq!(bands.len(), 3);
        assert_eq!(bands[0].0, EpochSecs::new(0));
        assert_eq!(bands[1].0, EpochSecs::new(120));
        assert_eq!(bands[2].0, EpochSecs::new(240));
    }

    #[test]
    fn samples_sorted_by_time_regardless_of_input_order() {
        let km = clustering();
        let samples = vec![hot(180), idle(0), hot(120), idle(60)];
        let trend = NodeTrend::build("1-31", &samples, &km);
        let times: Vec<i64> = trend.points.iter().map(|p| p.time.as_secs()).collect();
        assert_eq!(times, vec![0, 60, 120, 180]);
    }

    #[test]
    fn metric_series_extraction() {
        let km = clustering();
        let trend = NodeTrend::build("1-31", &[idle(0), hot(60)], &km);
        let power = trend.metric_series(7);
        assert_eq!(power.len(), 2);
        assert_eq!(power[0].1, 155.0);
        assert_eq!(power[1].1, 375.0);
    }

    #[test]
    fn empty_trend_has_no_bands() {
        let km = clustering();
        let trend = NodeTrend::build("1-31", &[], &km);
        assert!(trend.bands().is_empty());
        assert!(trend.metric_series(0).is_empty());
    }
}
