//! The Fig. 6 job-scheduling timeline.
//!
//! Per user: one bar per job — gray (waiting) from submission to start,
//! green (running) from start to end — plus the summary counts the figure
//! annotates (jobs submitted, distinct hosts used).

use monster_scheduler::{Job, JobState};
use monster_util::{EpochSecs, JobId, NodeId, UserName};
use std::collections::{BTreeMap, HashSet};

/// One job's bar on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct JobBar {
    /// The job.
    pub job: JobId,
    /// Submission time (bar origin).
    pub submit: EpochSecs,
    /// Start time (`None` while still queued at the window edge).
    pub start: Option<EpochSecs>,
    /// End time (`None` while still running at the window edge).
    pub end: Option<EpochSecs>,
}

impl JobBar {
    /// Waiting span in seconds, up to `horizon` for still-pending jobs.
    pub fn wait_secs(&self, horizon: EpochSecs) -> i64 {
        match self.start {
            Some(s) => s - self.submit,
            None => horizon - self.submit,
        }
    }

    /// Running span in seconds, up to `horizon` for still-running jobs.
    pub fn run_secs(&self, horizon: EpochSecs) -> i64 {
        match (self.start, self.end) {
            (Some(s), Some(e)) => e - s,
            (Some(s), None) => horizon - s,
            (None, _) => 0,
        }
    }
}

/// One user's row in the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct UserTimeline {
    /// The user.
    pub user: UserName,
    /// Bars, ordered by submission time.
    pub bars: Vec<JobBar>,
    /// Distinct hosts this user's jobs touched (Fig. 6's host count).
    pub hosts_used: usize,
}

impl UserTimeline {
    /// Jobs submitted in the window (Fig. 6's job count).
    pub fn job_count(&self) -> usize {
        self.bars.len()
    }

    /// Mean queue wait across the user's jobs.
    pub fn mean_wait_secs(&self, horizon: EpochSecs) -> f64 {
        if self.bars.is_empty() {
            return 0.0;
        }
        self.bars.iter().map(|b| b.wait_secs(horizon) as f64).sum::<f64>() / self.bars.len() as f64
    }
}

/// Build the timeline for every user with a job submitted in
/// `[window_start, window_end)`.
pub fn build_timeline<'a>(
    jobs: impl Iterator<Item = &'a Job>,
    window_start: EpochSecs,
    window_end: EpochSecs,
) -> Vec<UserTimeline> {
    let mut per_user: BTreeMap<UserName, (Vec<JobBar>, HashSet<NodeId>)> = BTreeMap::new();
    for job in jobs {
        if job.submit_time < window_start || job.submit_time >= window_end {
            continue;
        }
        let (start, end) = match &job.state {
            JobState::Pending => (None, None),
            JobState::Running { start, .. } => (Some(*start), None),
            JobState::Done { start, end, .. } | JobState::Failed { start, end, .. } => {
                (Some(*start), Some(*end))
            }
        };
        let entry =
            per_user.entry(job.spec.user.clone()).or_insert_with(|| (Vec::new(), HashSet::new()));
        entry.0.push(JobBar { job: job.id, submit: job.submit_time, start, end });
        entry.1.extend(job.hosts().iter().copied());
    }
    per_user
        .into_iter()
        .map(|(user, (mut bars, hosts))| {
            bars.sort_by_key(|b| (b.submit, b.job));
            UserTimeline { user, bars, hosts_used: hosts.len() }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_scheduler::{JobShape, JobSpec};

    fn job(id: u64, user: &str, submit: i64, state: JobState) -> Job {
        Job {
            id: JobId(id),
            spec: JobSpec {
                user: UserName::new(user),
                name: "j".into(),
                shape: JobShape::Serial { slots: 1 },
                runtime_secs: 100,
                priority: 0,
                mem_per_slot_gib: 1.0,
            },
            submit_time: EpochSecs::new(submit),
            state,
        }
    }

    fn running(start: i64, hosts: Vec<NodeId>) -> JobState {
        JobState::Running { start: EpochSecs::new(start), hosts }
    }

    fn done(start: i64, end: i64, hosts: Vec<NodeId>) -> JobState {
        JobState::Done { start: EpochSecs::new(start), end: EpochSecs::new(end), hosts }
    }

    #[test]
    fn bars_capture_wait_and_run_spans() {
        let jobs = [
            job(1, "jieyao", 100, done(160, 400, vec![NodeId::new(1, 1), NodeId::new(1, 2)])),
            job(2, "jieyao", 150, running(150, vec![NodeId::new(1, 2)])),
            job(3, "abdumal", 200, JobState::Pending),
        ];
        let tl = build_timeline(jobs.iter(), EpochSecs::new(0), EpochSecs::new(1000));
        assert_eq!(tl.len(), 2);
        let horizon = EpochSecs::new(1000);

        let abdumal = &tl[0];
        assert_eq!(abdumal.user.as_str(), "abdumal");
        assert_eq!(abdumal.job_count(), 1);
        assert_eq!(abdumal.bars[0].wait_secs(horizon), 800); // still queued
        assert_eq!(abdumal.bars[0].run_secs(horizon), 0);
        assert_eq!(abdumal.hosts_used, 0);

        let jieyao = &tl[1];
        assert_eq!(jieyao.job_count(), 2);
        assert_eq!(jieyao.bars[0].wait_secs(horizon), 60);
        assert_eq!(jieyao.bars[0].run_secs(horizon), 240);
        // Job 2: zero wait (started at submit), runs to horizon.
        assert_eq!(jieyao.bars[1].wait_secs(horizon), 0);
        assert_eq!(jieyao.bars[1].run_secs(horizon), 850);
        // Hosts deduplicate across jobs: {1-1, 1-2}.
        assert_eq!(jieyao.hosts_used, 2);
        assert!((jieyao.mean_wait_secs(horizon) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn window_filters_by_submission_time() {
        let jobs = [
            job(1, "u", 50, JobState::Pending),  // before window
            job(2, "u", 150, JobState::Pending), // inside
            job(3, "u", 999, JobState::Pending), // at edge (excluded)
        ];
        let tl = build_timeline(jobs.iter(), EpochSecs::new(100), EpochSecs::new(999));
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].job_count(), 1);
        assert_eq!(tl[0].bars[0].job, JobId(2));
    }

    #[test]
    fn bars_sorted_by_submit() {
        let jobs = [
            job(5, "u", 300, JobState::Pending),
            job(4, "u", 100, JobState::Pending),
            job(6, "u", 200, JobState::Pending),
        ];
        let tl = build_timeline(jobs.iter(), EpochSecs::new(0), EpochSecs::new(1000));
        let submits: Vec<i64> = tl[0].bars.iter().map(|b| b.submit.as_secs()).collect();
        assert_eq!(submits, vec![100, 200, 300]);
    }

    #[test]
    fn empty_input_is_empty_timeline() {
        let tl = build_timeline([].iter(), EpochSecs::new(0), EpochSecs::new(1));
        assert!(tl.is_empty());
    }
}
