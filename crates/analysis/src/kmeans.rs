//! k-means clustering of node health profiles.
//!
//! §III-E2: "we perform a modified k-means clustering of these nine health
//! metrics for the computing nodes", producing the seven host groups of
//! Fig. 9. The modification relative to textbook k-means: dimensions are
//! min–max normalized before clustering (temperatures and RPMs live on
//! wildly different scales), initialization is deterministic k-means++
//! seeded from a supplied RNG, and emptied clusters are reseeded from the
//! point farthest from its centroid instead of being dropped.

use monster_sim::SimRng;

/// Configuration.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Cluster count (the paper uses k = 7).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on centroid movement (in normalized space).
    pub tolerance: f64,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 7, max_iters: 100, tolerance: 1e-6, seed: 7 }
    }
}

/// A fitted clustering.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Centroids in **normalized** space, `k × dims`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids (normalized space).
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Per-dimension (min, max) used for normalization.
    pub ranges: Vec<(f64, f64)>,
}

impl KMeans {
    /// Fit on raw (unnormalized) observations, `n × dims`.
    ///
    /// Panics if `data` is empty, rows are ragged, or `k` is 0.
    pub fn fit(data: &[Vec<f64>], config: &KMeansConfig) -> KMeans {
        assert!(config.k > 0, "k must be positive");
        assert!(!data.is_empty(), "cannot cluster zero points");
        let dims = data[0].len();
        assert!(data.iter().all(|r| r.len() == dims), "ragged input");

        let ranges = ranges_of(data);
        let normed: Vec<Vec<f64>> = data.iter().map(|r| normalize_row(r, &ranges)).collect();
        let k = config.k.min(normed.len());
        let mut rng = SimRng::derive(config.seed, "kmeans");

        // k-means++ initialization.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(normed[rng.below(normed.len())].clone());
        while centroids.len() < k {
            let d2: Vec<f64> = normed
                .iter()
                .map(|p| centroids.iter().map(|c| dist2(p, c)).fold(f64::INFINITY, f64::min))
                .collect();
            let total: f64 = d2.iter().sum();
            if total <= 0.0 {
                // All points coincide with centroids; duplicate one.
                centroids.push(normed[rng.below(normed.len())].clone());
                continue;
            }
            let mut target = rng.uniform01() * total;
            let mut chosen = normed.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centroids.push(normed[chosen].clone());
        }

        let mut assignments = vec![0usize; normed.len()];
        let mut iterations = 0;
        for iter in 0..config.max_iters {
            iterations = iter + 1;
            // Assign.
            for (i, p) in normed.iter().enumerate() {
                assignments[i] = nearest(p, &centroids).0;
            }
            // Update.
            let mut sums = vec![vec![0.0; dims]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in normed.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, x) in sums[a].iter_mut().zip(p) {
                    *s += x;
                }
            }
            let mut movement: f64 = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    // Modified step: reseed an empty cluster from the point
                    // farthest from its current centroid.
                    let (far_idx, _) = normed
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i, dist2(p, &centroids[assignments[i]])))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
                        .expect("non-empty data");
                    centroids[c] = normed[far_idx].clone();
                    movement = f64::INFINITY;
                    continue;
                }
                let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
                movement += dist2(&new, &centroids[c]);
                centroids[c] = new;
            }
            if movement <= config.tolerance {
                break;
            }
        }
        // Final assignment + inertia.
        let mut inertia = 0.0;
        for (i, p) in normed.iter().enumerate() {
            let (a, d) = nearest(p, &centroids);
            assignments[i] = a;
            inertia += d;
        }
        KMeans { centroids, assignments, inertia, iterations, ranges }
    }

    /// Assign a new raw observation to its nearest cluster.
    pub fn predict(&self, row: &[f64]) -> usize {
        let p = normalize_row(row, &self.ranges);
        nearest(&p, &self.centroids).0
    }

    /// Number of points per cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn ranges_of(data: &[Vec<f64>]) -> Vec<(f64, f64)> {
    let dims = data[0].len();
    (0..dims)
        .map(|d| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for row in data {
                lo = lo.min(row[d]);
                hi = hi.max(row[d]);
            }
            (lo, hi)
        })
        .collect()
}

fn normalize_row(row: &[f64], ranges: &[(f64, f64)]) -> Vec<f64> {
    row.iter()
        .zip(ranges)
        .map(|(&x, &(lo, hi))| if hi > lo { ((x - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.5 })
        .collect()
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2D.
    fn blobs() -> Vec<Vec<f64>> {
        let mut rng = SimRng::derive(1, "blobs");
        let mut data = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)] {
            for _ in 0..40 {
                data.push(vec![cx + rng.normal(0.0, 0.5), cy + rng.normal(0.0, 0.5)]);
            }
        }
        data
    }

    #[test]
    fn recovers_separated_blobs() {
        let km = KMeans::fit(&blobs(), &KMeansConfig { k: 3, ..KMeansConfig::default() });
        // Each blob's 40 points share one label.
        for blob in 0..3 {
            let labels: std::collections::HashSet<usize> =
                (0..40).map(|i| km.assignments[blob * 40 + i]).collect();
            assert_eq!(labels.len(), 1, "blob {blob} split: {labels:?}");
        }
        let sizes = km.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 120);
        assert!(sizes.iter().all(|&s| s == 40), "{sizes:?}");
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        let km = KMeans::fit(&blobs(), &KMeansConfig { k: 3, ..KMeansConfig::default() });
        // Invariant: every point's assigned centroid is its argmin.
        let data = blobs();
        for (i, row) in data.iter().enumerate() {
            assert_eq!(km.predict(row), km.assignments[i]);
        }
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let data = blobs();
        let mut prev = f64::INFINITY;
        for k in [1, 2, 3, 5, 8] {
            let km = KMeans::fit(&data, &KMeansConfig { k, ..KMeansConfig::default() });
            assert!(
                km.inertia <= prev + 1e-9,
                "inertia rose from {prev} to {} at k={k}",
                km.inertia
            );
            prev = km.inertia;
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = blobs();
        let a = KMeans::fit(&data, &KMeansConfig::default());
        let b = KMeans::fit(&data, &KMeansConfig::default());
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn k_larger_than_points_clamps() {
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let km = KMeans::fit(&data, &KMeansConfig { k: 7, ..KMeansConfig::default() });
        assert!(km.centroids.len() <= 2);
        assert_eq!(km.assignments.len(), 2);
    }

    #[test]
    fn identical_points_converge() {
        let data = vec![vec![5.0, 5.0]; 20];
        let km = KMeans::fit(&data, &KMeansConfig { k: 3, ..KMeansConfig::default() });
        assert!(km.inertia < 1e-9);
    }

    #[test]
    fn scale_invariance_through_normalization() {
        // One dimension a thousand times larger must not dominate: same
        // blobs, but dim 1 scaled by 1000 — clustering is unchanged.
        let data = blobs();
        let scaled: Vec<Vec<f64>> = data.iter().map(|r| vec![r[0], r[1] * 1000.0]).collect();
        let a = KMeans::fit(&data, &KMeansConfig { k: 3, ..KMeansConfig::default() });
        let b = KMeans::fit(&scaled, &KMeansConfig { k: 3, ..KMeansConfig::default() });
        // Same partition (labels may permute): compare co-assignment.
        for i in (0..120).step_by(7) {
            for j in (0..120).step_by(11) {
                assert_eq!(
                    a.assignments[i] == a.assignments[j],
                    b.assignments[i] == b.assignments[j],
                    "pair ({i},{j}) co-assignment differs"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_input_panics() {
        KMeans::fit(&[], &KMeansConfig::default());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_input_panics() {
        KMeans::fit(&[vec![1.0], vec![1.0, 2.0]], &KMeansConfig::default());
    }
}
