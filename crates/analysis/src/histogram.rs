//! The per-user symmetric-histogram matrix (Fig. 9, right panel).
//!
//! For each user and each of the nine dimensions, a histogram of the
//! readings observed on the nodes that user's jobs occupy — "a visual
//! summary for comparing resource usage across users". Sorting by a
//! dimension ("by clicking on the attribute name") surfaces the heaviest
//! consumer.

use crate::radar::METRIC_NAMES;
use monster_util::stats::Histogram;
use monster_util::UserName;
use std::collections::BTreeMap;

/// Histogram buckets per dimension (the glyphs are small).
pub const BINS: usize = 12;

/// One user's row: a histogram per dimension plus summary means.
#[derive(Debug, Clone)]
pub struct UserUsageRow {
    /// The user.
    pub user: UserName,
    /// One histogram per dimension, normalized ranges [0, 1] (inputs are
    /// fleet-normalized readings).
    pub histograms: Vec<Histogram>,
    /// Mean normalized reading per dimension (the sort key).
    pub means: Vec<f64>,
    /// Observations folded in (node-intervals).
    pub samples: usize,
}

/// The full matrix.
#[derive(Debug, Clone, Default)]
pub struct UsageMatrix {
    rows: BTreeMap<UserName, (Vec<Histogram>, Vec<f64>, usize)>,
}

impl UsageMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        UsageMatrix::default()
    }

    /// Fold one observation: `reading` is a fleet-normalized 9-vector for
    /// one node currently occupied by `user`.
    pub fn observe(&mut self, user: &UserName, reading: &[f64; 9]) {
        let entry = self.rows.entry(user.clone()).or_insert_with(|| {
            ((0..9).map(|_| Histogram::new(0.0, 1.0, BINS)).collect(), vec![0.0; 9], 0)
        });
        for (d, &v) in reading.iter().enumerate() {
            entry.0[d].push(v);
            entry.1[d] += v;
        }
        entry.2 += 1;
    }

    /// Finish into rows, sorted descending by mean of `sort_dimension`
    /// (0..9 — the "click on the attribute name" interaction).
    pub fn rows_sorted_by(&self, sort_dimension: usize) -> Vec<UserUsageRow> {
        assert!(sort_dimension < METRIC_NAMES.len(), "dimension out of range");
        let mut rows: Vec<UserUsageRow> = self
            .rows
            .iter()
            .map(|(user, (hists, sums, n))| UserUsageRow {
                user: user.clone(),
                histograms: hists.clone(),
                means: sums.iter().map(|s| if *n > 0 { s / *n as f64 } else { 0.0 }).collect(),
                samples: *n,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.means[sort_dimension]
                .partial_cmp(&a.means[sort_dimension])
                .expect("no NaN means")
                .then_with(|| a.user.cmp(&b.user))
        });
        rows
    }

    /// Number of users observed.
    pub fn user_count(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec9(v: f64) -> [f64; 9] {
        [v; 9]
    }

    #[test]
    fn observe_accumulates_per_user() {
        let mut m = UsageMatrix::new();
        let alice = UserName::new("alice");
        m.observe(&alice, &vec9(0.2));
        m.observe(&alice, &vec9(0.4));
        let rows = m.rows_sorted_by(0);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].samples, 2);
        assert!((rows[0].means[0] - 0.3).abs() < 1e-12);
        assert_eq!(rows[0].histograms[0].total(), 2);
    }

    #[test]
    fn sorting_surfaces_heaviest_consumer() {
        let mut m = UsageMatrix::new();
        // bob hot on power (dim 7), alice hot on cpu1 (dim 0).
        let mut bob_reading = vec9(0.1);
        bob_reading[7] = 0.95;
        let mut alice_reading = vec9(0.1);
        alice_reading[0] = 0.95;
        for _ in 0..5 {
            m.observe(&UserName::new("bob"), &bob_reading);
            m.observe(&UserName::new("alice"), &alice_reading);
        }
        let by_power = m.rows_sorted_by(7);
        assert_eq!(by_power[0].user.as_str(), "bob");
        let by_cpu = m.rows_sorted_by(0);
        assert_eq!(by_cpu[0].user.as_str(), "alice");
        assert_eq!(m.user_count(), 2);
    }

    #[test]
    fn ties_break_by_name_for_determinism() {
        let mut m = UsageMatrix::new();
        m.observe(&UserName::new("zed"), &vec9(0.5));
        m.observe(&UserName::new("amy"), &vec9(0.5));
        let rows = m.rows_sorted_by(3);
        assert_eq!(rows[0].user.as_str(), "amy");
    }

    #[test]
    #[should_panic(expected = "dimension out of range")]
    fn bad_dimension_panics() {
        UsageMatrix::new().rows_sorted_by(9);
    }
}
