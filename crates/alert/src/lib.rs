//! `monster-alert` — streaming anomaly detection and deterministic
//! alerting.
//!
//! MonSTer's value is not shipping raw BMC readings but telling operators
//! *what is wrong*. This crate is that layer, in two halves:
//!
//! * [`detect`] — per-`(node, signal)` streaming detectors (EWMA z-score,
//!   rate-of-change, flatline) run by the collector on every live reading,
//!   emitting typed [`AnomalyEvent`]s with the exemplar trace of the
//!   offending sweep;
//! * [`engine`] — the [`AlertEngine`] that folds those events together
//!   with collection health (breaker trips, skips, stale substitution) and
//!   the freshness SLO burn rate into a dedup'd alert table with severity
//!   grading, hold-down flap suppression on virtual time, silences, and
//!   per-job attribution — served at `GET /v1/alerts`.
//!
//! Both halves are pure functions of their inputs and of virtual time, so
//! the seeded chaos matrix asserts *exact* alert sets: dead-rack raises
//! one critical per dead node with zero flaps, rolling-brownout
//! raises-then-resolves, calm raises nothing.

#![warn(missing_docs)]

pub mod detect;
pub mod engine;

pub use detect::{AnomalyEvent, AnomalyKind, DetectorBank, DetectorConfig, Signal};
pub use engine::{
    Alert, AlertCategory, AlertEngine, AlertKey, AlertState, EngineConfig, IntervalInput,
    IntervalOutcome, NodeInterval, RuleId, Severity, Silence,
};
