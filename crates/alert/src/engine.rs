//! The deterministic alert engine.
//!
//! One engine instance watches a whole deployment. Each collection
//! interval the deployment hands it an [`IntervalInput`]: the detector
//! events from the collector, per-node collection health (live readings,
//! skips, breaker state, stale substitution age), the freshness SLO burn
//! rates, and the scheduler's job placement for attribution. The engine
//! folds all of it through a fixed rule set into a dedup'd alert table.
//!
//! Design rules that make the output reproducible byte-for-byte under the
//! seeded chaos matrix:
//!
//! * All state lives in `BTreeMap`s keyed by [`AlertKey`]; iteration order
//!   is total and stable, never hash order.
//! * Alert ids are sequential `u64`s assigned in raise order; two runs of
//!   the same seeded simulation assign identical ids.
//! * Time is virtual: every decision (hold-downs, silences) uses the
//!   simulation clock passed in `IntervalInput::now`, never wall time.
//! * Resolution is two-phase. A firing alert whose condition goes quiet
//!   enters `PendingResolve` and only resolves after `holddown_secs` of
//!   sustained quiet; a re-fire during the hold-down snaps it back to
//!   `Firing` and counts a *suppressed flap* instead of a new alert pair.

use crate::detect::{AnomalyEvent, AnomalyKind, Signal};
use monster_json::Value;
use monster_obs::{Counter, Gauge, TraceId};
use monster_util::{EpochSecs, JobId, NodeId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Alert severity, ordered `Info < Warning < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Noteworthy, no action required.
    Info,
    /// Degraded but serving.
    Warning,
    /// Operator action required.
    Critical,
}

impl Severity {
    /// All severities, ascending.
    pub const ALL: [Severity; 3] = [Severity::Info, Severity::Warning, Severity::Critical];

    /// Stable lowercase name used in labels and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Coarse grouping used in the dedup key and the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlertCategory {
    /// Raised by the streaming detectors in the collector.
    Anomaly,
    /// Raised from collection-path health (breakers, skips, staleness).
    Collection,
    /// Raised from the freshness SLO burn rate.
    Freshness,
}

impl AlertCategory {
    /// Stable lowercase name used in JSON.
    pub fn name(&self) -> &'static str {
        match self {
            AlertCategory::Anomaly => "anomaly",
            AlertCategory::Collection => "collection",
            AlertCategory::Freshness => "freshness",
        }
    }
}

/// The rule that raised an alert. Compact and `Copy` so the dedup key
/// stays allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// A detector transition on `(signal, kind)`.
    Anomaly(Signal, AnomalyKind),
    /// Zero live readings for `unreachable_after` consecutive intervals.
    NodeUnreachable,
    /// Skipped/failed requests or stale substitution on a node.
    CollectionDegraded,
    /// Cluster-wide freshness SLO fast-burn.
    FreshnessBurn,
}

impl RuleId {
    /// The category this rule files under.
    pub fn category(&self) -> AlertCategory {
        match self {
            RuleId::Anomaly(..) => AlertCategory::Anomaly,
            RuleId::NodeUnreachable | RuleId::CollectionDegraded => AlertCategory::Collection,
            RuleId::FreshnessBurn => AlertCategory::Freshness,
        }
    }

    /// Stable slash-separated rule name, e.g. `anomaly/power/zscore` or
    /// `collection/unreachable`. Silence matchers prefix-match this.
    pub fn name(&self) -> String {
        match self {
            RuleId::Anomaly(signal, kind) => format!("anomaly/{}/{}", signal.name(), kind.name()),
            RuleId::NodeUnreachable => "collection/unreachable".to_string(),
            RuleId::CollectionDegraded => "collection/degraded".to_string(),
            RuleId::FreshnessBurn => "freshness/burn".to_string(),
        }
    }
}

/// The dedup key: at most one active alert exists per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AlertKey {
    /// `None` for cluster-scoped alerts (freshness burn).
    pub node: Option<NodeId>,
    /// The rule (category is derived from it).
    pub rule: RuleId,
}

/// Lifecycle of one alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition currently true.
    Firing,
    /// Condition went quiet; resolves at `clear_at` unless it re-fires.
    PendingResolve {
        /// Virtual time at which the hold-down expires.
        clear_at: EpochSecs,
    },
    /// Finalized; lives in the history ring.
    Resolved,
}

impl AlertState {
    /// Stable lowercase name used in JSON.
    pub fn name(&self) -> &'static str {
        match self {
            AlertState::Firing => "firing",
            AlertState::PendingResolve { .. } => "pending_resolve",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One alert, active or historical.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Sequential id in raise order (deterministic under seeded replay).
    pub id: u64,
    /// Dedup key.
    pub key: AlertKey,
    /// Current severity (may escalate while firing, never de-escalate).
    pub severity: Severity,
    /// Lifecycle state.
    pub state: AlertState,
    /// Virtual time of the first raise.
    pub raised_at: EpochSecs,
    /// Virtual time of final resolution, once resolved.
    pub resolved_at: Option<EpochSecs>,
    /// Last interval at which the condition was observed true.
    pub last_seen: EpochSecs,
    /// Re-fires absorbed during hold-downs instead of new raise/resolve
    /// pairs.
    pub flaps: u32,
    /// Id of the silence currently matching, if any.
    pub silenced_by: Option<u64>,
    /// The observation that raised (or last refreshed) the alert.
    pub value: f64,
    /// What the rule expected instead.
    pub expected: f64,
    /// Human-readable one-liner.
    pub description: String,
    /// Exemplar trace of the offending reading (`GET /debug/trace`).
    pub trace_id: Option<TraceId>,
    /// Jobs placed on the node when the alert raised (attribution).
    pub jobs: Vec<JobId>,
}

impl Alert {
    fn is_silenced(&self) -> bool {
        self.silenced_by.is_some()
    }

    /// Render one alert as the JSON object served by `/v1/alerts`.
    pub fn to_json(&self) -> Value {
        let mut obj = monster_json::jobj! {
            "id" => self.id,
            "rule" => self.key.rule.name(),
            "category" => self.key.rule.category().name(),
            "severity" => self.severity.name(),
            "state" => self.state.name(),
            "raised_at" => self.raised_at.as_secs(),
            "last_seen" => self.last_seen.as_secs(),
            "flaps" => u64::from(self.flaps),
            "silenced" => self.is_silenced(),
            "value" => self.value,
            "expected" => self.expected,
            "description" => self.description.as_str(),
        };
        let o = obj.as_object_mut().expect("jobj");
        o.insert(
            "node",
            match self.key.node {
                Some(n) => Value::from(n.bmc_addr()),
                None => Value::Null,
            },
        );
        o.insert(
            "resolved_at",
            match self.resolved_at {
                Some(t) => Value::from(t.as_secs()),
                None => Value::Null,
            },
        );
        o.insert(
            "trace_id",
            match self.trace_id {
                Some(t) => Value::from(t.to_string()),
                None => Value::Null,
            },
        );
        o.insert("jobs", Value::Array(self.jobs.iter().map(|j| Value::from(j.as_u64())).collect()));
        obj
    }
}

/// A silence: matching alerts stay in the table and keep their lifecycle,
/// but are excluded from severity gauges and flagged in the API.
#[derive(Debug, Clone, PartialEq)]
pub struct Silence {
    /// Sequential silence id.
    pub id: u64,
    /// Restrict to one node, or `None` for any.
    pub node: Option<NodeId>,
    /// Prefix match on [`RuleId::name`]; empty matches every rule.
    pub rule_prefix: String,
    /// Virtual expiry time (exclusive).
    pub until: EpochSecs,
    /// Operator note.
    pub reason: String,
    /// Virtual creation time.
    pub created_at: EpochSecs,
}

impl Silence {
    fn matches(&self, key: &AlertKey) -> bool {
        let node_ok = match self.node {
            Some(n) => key.node == Some(n),
            None => true,
        };
        node_ok && key.rule.name().starts_with(&self.rule_prefix)
    }

    /// JSON rendering for `/v1/silences`.
    pub fn to_json(&self) -> Value {
        let mut obj = monster_json::jobj! {
            "id" => self.id,
            "rule_prefix" => self.rule_prefix.as_str(),
            "until" => self.until.as_secs(),
            "reason" => self.reason.as_str(),
            "created_at" => self.created_at.as_secs(),
        };
        obj.as_object_mut().expect("jobj").insert(
            "node",
            match self.node {
                Some(n) => Value::from(n.bmc_addr()),
                None => Value::Null,
            },
        );
        obj
    }
}

/// Engine tuning. Defaults are calibrated against the chaos matrix: the
/// dead-rack profile must produce exactly one critical per dead node with
/// zero flaps, rolling-brownout must raise-then-resolve, calm must stay
/// silent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Hold-down before a quiet alert resolves (virtual seconds).
    pub holddown_secs: i64,
    /// Consecutive all-dead intervals before `collection/unreachable`.
    pub unreachable_after: u32,
    /// Consecutive degraded intervals before `collection/degraded`.
    pub degraded_after: u32,
    /// Fast burn rate at which `freshness/burn` raises as a warning.
    pub burn_warn: f64,
    /// Fast burn rate at which `freshness/burn` escalates to critical.
    pub burn_critical: f64,
    /// Resolved alerts retained in the history ring.
    pub history_cap: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            holddown_secs: 180,
            unreachable_after: 3,
            degraded_after: 2,
            burn_warn: 6.0,
            burn_critical: 30.0,
            history_cap: 256,
        }
    }
}

/// Per-node collection health for one interval, as reported by the
/// deployment loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInterval {
    /// The node.
    pub node: NodeId,
    /// Categories answered live by the BMC this interval.
    pub live_readings: usize,
    /// Categories skipped (breaker open / deadline exhausted).
    pub skipped: usize,
    /// Whether the node's circuit breaker is currently open.
    pub breaker_open: bool,
    /// Sweeps since the newest substituted reading was actually fresh
    /// (0 = nothing stale this interval).
    pub stale_age_sweeps: u64,
}

/// Everything the engine consumes for one collection interval.
#[derive(Debug, Clone)]
pub struct IntervalInput<'a> {
    /// Virtual time of this interval.
    pub now: EpochSecs,
    /// Detector transitions from the collector, in ingest order.
    pub anomalies: &'a [AnomalyEvent],
    /// Per-node collection health, any order (re-sorted internally).
    pub nodes: &'a [NodeInterval],
    /// Freshness SLO fast-window burn rate.
    pub burn_fast: f64,
    /// Freshness SLO slow-window burn rate.
    pub burn_slow: f64,
    /// Scheduler placement: jobs running per node (attribution).
    pub jobs: &'a BTreeMap<NodeId, Vec<JobId>>,
}

impl Default for IntervalInput<'_> {
    fn default() -> Self {
        static EMPTY_JOBS: std::sync::OnceLock<BTreeMap<NodeId, Vec<JobId>>> =
            std::sync::OnceLock::new();
        IntervalInput {
            now: EpochSecs::new(0),
            anomalies: &[],
            nodes: &[],
            burn_fast: 0.0,
            burn_slow: 0.0,
            jobs: EMPTY_JOBS.get_or_init(BTreeMap::new),
        }
    }
}

/// Counts of what one `observe_interval` call changed — handy for logs and
/// the deployment's `IntervalSummary`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalOutcome {
    /// Alerts newly raised this interval.
    pub raised: usize,
    /// Alerts finally resolved this interval.
    pub resolved: usize,
    /// Re-fires absorbed by hold-downs this interval.
    pub flaps_suppressed: usize,
    /// Active (firing or pending-resolve) alerts after this interval.
    pub active: usize,
}

#[derive(Debug, Default)]
struct Inner {
    next_alert_id: u64,
    next_silence_id: u64,
    active: BTreeMap<AlertKey, Alert>,
    history: VecDeque<Alert>,
    silences: Vec<Silence>,
    unreachable_runs: BTreeMap<NodeId, u32>,
    degraded_runs: BTreeMap<NodeId, u32>,
}

/// The deterministic alert engine. Cheap to share (`Arc`) between the
/// deployment loop that feeds it and the HTTP service that reads it.
pub struct AlertEngine {
    config: EngineConfig,
    inner: Mutex<Inner>,
    active_gauges: [Arc<Gauge>; 3],
    silence_gauge: Arc<Gauge>,
    transitions: Arc<Counter>,
    flaps: Arc<Counter>,
}

impl fmt::Debug for AlertEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlertEngine").field("config", &self.config).finish_non_exhaustive()
    }
}

impl AlertEngine {
    /// Build an engine and register its metrics immediately: severity
    /// gauges appear in `/metrics` as `0` from the first scrape, not from
    /// the first alert.
    pub fn new(config: EngineConfig) -> AlertEngine {
        let active_gauges = Severity::ALL.map(|sev| {
            monster_obs::gauge_help(
                &format!("monster_alert_active{{severity=\"{sev}\"}}"),
                "Active (firing or pending-resolve) unsilenced alerts by severity.",
            )
        });
        for g in &active_gauges {
            g.set(0);
        }
        let silence_gauge =
            monster_obs::gauge_help("monster_alert_silences", "Unexpired alert silences.");
        silence_gauge.set(0);
        AlertEngine {
            config,
            inner: Mutex::new(Inner::default()),
            active_gauges,
            silence_gauge,
            transitions: monster_obs::counter_help(
                "monster_alert_transitions_total",
                "Alert lifecycle transitions (raises + resolves).",
            ),
            flaps: monster_obs::counter_help(
                "monster_alert_flaps_suppressed_total",
                "Alert re-fires absorbed by hold-down timers instead of flapping.",
            ),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Fold one collection interval through the rules. The single entry
    /// point for state change; everything else is read-only.
    pub fn observe_interval(&self, input: &IntervalInput<'_>) -> IntervalOutcome {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let now = input.now;
        let mut outcome = IntervalOutcome::default();

        // 1. Detector events, in a canonical order so id assignment never
        //    depends on collector iteration details.
        let mut events: Vec<&AnomalyEvent> = input.anomalies.iter().collect();
        events.sort_by_key(|e| (e.node, e.signal, e.kind, e.raised));
        for event in events {
            let key = AlertKey {
                node: Some(event.node),
                rule: RuleId::Anomaly(event.signal, event.kind),
            };
            if event.raised {
                let severity = anomaly_severity(event.signal, event.kind);
                let description = format!(
                    "{} {} on {}: observed {:.1}, expected ~{:.1}",
                    event.signal,
                    event.kind,
                    event.node.label(),
                    event.value,
                    event.expected
                );
                self.raise(
                    inner,
                    &mut outcome,
                    key,
                    now,
                    severity,
                    event.value,
                    event.expected,
                    description,
                    event.trace.map(|t| t.trace),
                    input.jobs,
                );
            } else {
                Self::quiesce(inner, &key, now, self.config.holddown_secs);
            }
        }

        // 2. Per-node collection rules (sorted for deterministic ids).
        let mut nodes: Vec<NodeInterval> = input.nodes.to_vec();
        nodes.sort_by_key(|n| n.node);
        for n in &nodes {
            // collection/unreachable: no live data at all for k intervals.
            let run = inner.unreachable_runs.entry(n.node).or_insert(0);
            *run = if n.live_readings == 0 { *run + 1 } else { 0 };
            let unreachable = *run >= self.config.unreachable_after;
            let run = *run;
            let key = AlertKey { node: Some(n.node), rule: RuleId::NodeUnreachable };
            if unreachable {
                let description = format!(
                    "{} unreachable: 0 live readings for {run} consecutive intervals (breaker {})",
                    n.node.label(),
                    if n.breaker_open { "open" } else { "closed" },
                );
                self.raise(
                    inner,
                    &mut outcome,
                    key,
                    now,
                    Severity::Critical,
                    0.0,
                    1.0,
                    description,
                    None,
                    input.jobs,
                );
            } else {
                Self::quiesce(inner, &key, now, self.config.holddown_secs);
            }

            // collection/degraded: partial data (skips or stale fills)
            // while the node is still partly reachable. Fully-dead nodes
            // are the unreachable rule's business — suppressing the
            // weaker alert keeps dead-rack at exactly one alert per node.
            let degraded_now = n.live_readings > 0 && (n.skipped > 0 || n.stale_age_sweeps > 0);
            let drun = inner.degraded_runs.entry(n.node).or_insert(0);
            *drun = if degraded_now { *drun + 1 } else { 0 };
            let degraded = *drun >= self.config.degraded_after;
            let drun = *drun;
            let key = AlertKey { node: Some(n.node), rule: RuleId::CollectionDegraded };
            if degraded {
                let description = format!(
                    "{} collection degraded for {drun} intervals: {} skipped, stale age {} sweeps",
                    n.node.label(),
                    n.skipped,
                    n.stale_age_sweeps,
                );
                self.raise(
                    inner,
                    &mut outcome,
                    key,
                    now,
                    Severity::Warning,
                    n.skipped as f64 + n.stale_age_sweeps as f64,
                    0.0,
                    description,
                    None,
                    input.jobs,
                );
            } else if !unreachable {
                Self::quiesce(inner, &key, now, self.config.holddown_secs);
            }
        }
        inner.unreachable_runs.retain(|_, r| *r > 0);
        inner.degraded_runs.retain(|_, r| *r > 0);

        // 3. Cluster-scope freshness burn.
        let key = AlertKey { node: None, rule: RuleId::FreshnessBurn };
        let burn_severity = if input.burn_fast >= self.config.burn_critical {
            Some(Severity::Critical)
        } else if input.burn_fast >= self.config.burn_warn {
            Some(Severity::Warning)
        } else {
            None
        };
        if let Some(severity) = burn_severity {
            let description = format!(
                "freshness SLO burning {:.1}x budget (slow window {:.1}x)",
                input.burn_fast, input.burn_slow
            );
            self.raise(
                inner,
                &mut outcome,
                key,
                now,
                severity,
                input.burn_fast,
                self.config.burn_warn,
                description,
                None,
                input.jobs,
            );
        } else {
            Self::quiesce(inner, &key, now, self.config.holddown_secs);
        }

        // 4. Expire hold-downs whose quiet period is over.
        let expired: Vec<AlertKey> = inner
            .active
            .iter()
            .filter(|(_, a)| matches!(a.state, AlertState::PendingResolve { clear_at } if clear_at <= now))
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            let mut alert = inner.active.remove(&key).expect("expired key present");
            alert.state = AlertState::Resolved;
            alert.resolved_at = Some(now);
            self.transitions.inc();
            outcome.resolved += 1;
            inner.history.push_back(alert);
            while inner.history.len() > self.config.history_cap {
                inner.history.pop_front();
            }
        }

        // 5. Expire silences, re-match the rest, refresh gauges.
        inner.silences.retain(|s| s.until > now);
        let silences = std::mem::take(&mut inner.silences);
        for alert in inner.active.values_mut() {
            alert.silenced_by = silences.iter().find(|s| s.matches(&alert.key)).map(|s| s.id);
        }
        inner.silences = silences;
        self.silence_gauge.set(inner.silences.len() as i64);
        for (i, sev) in Severity::ALL.iter().enumerate() {
            let n =
                inner.active.values().filter(|a| a.severity == *sev && !a.is_silenced()).count();
            self.active_gauges[i].set(n as i64);
        }

        outcome.active = inner.active.len();
        outcome
    }

    /// Register a silence; returns its id. Takes effect from the next
    /// `observe_interval` (matching is part of the deterministic fold).
    pub fn add_silence(
        &self,
        node: Option<NodeId>,
        rule_prefix: &str,
        until: EpochSecs,
        reason: &str,
        created_at: EpochSecs,
    ) -> u64 {
        let mut inner = self.inner.lock();
        inner.next_silence_id += 1;
        let id = inner.next_silence_id;
        inner.silences.push(Silence {
            id,
            node,
            rule_prefix: rule_prefix.to_string(),
            until,
            reason: reason.to_string(),
            created_at,
        });
        self.silence_gauge.set(inner.silences.len() as i64);
        id
    }

    /// Snapshot of active alerts, ascending id order.
    pub fn active(&self) -> Vec<Alert> {
        let inner = self.inner.lock();
        let mut v: Vec<Alert> = inner.active.values().cloned().collect();
        v.sort_by_key(|a| a.id);
        v
    }

    /// Snapshot of the resolved-history ring, oldest first.
    pub fn history(&self) -> Vec<Alert> {
        self.inner.lock().history.iter().cloned().collect()
    }

    /// Look up one alert (active or historical) by id.
    pub fn alert(&self, id: u64) -> Option<Alert> {
        let inner = self.inner.lock();
        inner
            .active
            .values()
            .find(|a| a.id == id)
            .or_else(|| inner.history.iter().find(|a| a.id == id))
            .cloned()
    }

    /// Snapshot of unexpired silences.
    pub fn silences(&self) -> Vec<Silence> {
        self.inner.lock().silences.clone()
    }

    /// The JSON document served at `GET /v1/alerts`.
    pub fn alerts_json(&self) -> Value {
        let active = self.active();
        let history = self.history();
        let count = |sev: Severity| {
            u64::try_from(active.iter().filter(|a| a.severity == sev && !a.is_silenced()).count())
                .unwrap_or(0)
        };
        let silenced =
            u64::try_from(active.iter().filter(|a| a.is_silenced()).count()).unwrap_or(0);
        monster_json::jobj! {
            "counts" => monster_json::jobj! {
                "critical" => count(Severity::Critical),
                "warning" => count(Severity::Warning),
                "info" => count(Severity::Info),
                "silenced" => silenced,
            },
            "active" => Value::Array(active.iter().map(Alert::to_json).collect()),
            "resolved" => Value::Array(history.iter().map(Alert::to_json).collect()),
        }
    }

    /// The JSON document served at `GET /v1/silences`.
    pub fn silences_json(&self) -> Value {
        monster_json::jobj! {
            "silences" => Value::Array(self.silences().iter().map(Silence::to_json).collect()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn raise(
        &self,
        inner: &mut Inner,
        outcome: &mut IntervalOutcome,
        key: AlertKey,
        now: EpochSecs,
        severity: Severity,
        value: f64,
        expected: f64,
        description: String,
        trace_id: Option<TraceId>,
        jobs: &BTreeMap<NodeId, Vec<JobId>>,
    ) {
        match inner.active.get_mut(&key) {
            Some(alert) => {
                if matches!(alert.state, AlertState::PendingResolve { .. }) {
                    // Re-fire inside the hold-down: suppressed flap, not a
                    // new raise/resolve pair.
                    alert.state = AlertState::Firing;
                    alert.flaps += 1;
                    self.flaps.inc();
                    outcome.flaps_suppressed += 1;
                }
                alert.severity = alert.severity.max(severity);
                alert.last_seen = now;
                alert.value = value;
                alert.description = description;
                if trace_id.is_some() {
                    alert.trace_id = trace_id;
                }
            }
            None => {
                inner.next_alert_id += 1;
                let attributed =
                    key.node.and_then(|n| jobs.get(&n)).map(|j| j.to_vec()).unwrap_or_default();
                inner.active.insert(
                    key,
                    Alert {
                        id: inner.next_alert_id,
                        key,
                        severity,
                        state: AlertState::Firing,
                        raised_at: now,
                        resolved_at: None,
                        last_seen: now,
                        flaps: 0,
                        silenced_by: None,
                        value,
                        expected,
                        description,
                        trace_id,
                        jobs: attributed,
                    },
                );
                self.transitions.inc();
                outcome.raised += 1;
            }
        }
    }

    /// The condition behind `key` is quiet this interval: start (or keep)
    /// the hold-down clock.
    fn quiesce(inner: &mut Inner, key: &AlertKey, now: EpochSecs, holddown_secs: i64) {
        if let Some(alert) = inner.active.get_mut(key) {
            if alert.state == AlertState::Firing {
                alert.state = AlertState::PendingResolve { clear_at: now + holddown_secs };
            }
        }
    }
}

/// Severity grading for detector alerts: thermal z-score excursions are
/// critical (hardware at risk); everything else is a warning until an
/// operator or a stronger rule says otherwise.
fn anomaly_severity(signal: Signal, kind: AnomalyKind) -> Severity {
    match (signal, kind) {
        (Signal::CpuTemp | Signal::InletTemp, AnomalyKind::ZScore) => Severity::Critical,
        _ => Severity::Warning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(slot: u16) -> NodeId {
        NodeId::new(1, slot)
    }

    fn dead(n: NodeId) -> NodeInterval {
        NodeInterval {
            node: n,
            live_readings: 0,
            skipped: 4,
            breaker_open: true,
            stale_age_sweeps: 3,
        }
    }

    fn healthy(n: NodeId) -> NodeInterval {
        NodeInterval {
            node: n,
            live_readings: 4,
            skipped: 0,
            breaker_open: false,
            stale_age_sweeps: 0,
        }
    }

    fn step(engine: &AlertEngine, tick: i64, nodes: &[NodeInterval]) -> IntervalOutcome {
        let jobs = BTreeMap::new();
        engine.observe_interval(&IntervalInput {
            now: EpochSecs::new(tick * 60),
            nodes,
            jobs: &jobs,
            ..IntervalInput::default()
        })
    }

    #[test]
    fn unreachable_raises_once_and_resolves_after_holddown() {
        let engine = AlertEngine::new(EngineConfig::default());
        // Dead for 6 intervals: raises at the 3rd, exactly once.
        for t in 0..6 {
            step(&engine, t, &[dead(node(1)), healthy(node(2))]);
        }
        let active = engine.active();
        assert_eq!(active.len(), 1, "{active:?}");
        assert_eq!(active[0].severity, Severity::Critical);
        assert_eq!(active[0].key.rule, RuleId::NodeUnreachable);
        assert_eq!(active[0].flaps, 0);
        // Recovery: quiet intervals outlasting the hold-down resolve it.
        for t in 6..12 {
            step(&engine, t, &[healthy(node(1)), healthy(node(2))]);
        }
        assert!(engine.active().is_empty());
        let history = engine.history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].state, AlertState::Resolved);
        assert_eq!(history[0].flaps, 0);
    }

    #[test]
    fn holddown_absorbs_flaps() {
        let engine = AlertEngine::new(EngineConfig::default());
        for t in 0..3 {
            step(&engine, t, &[dead(node(1))]);
        }
        // One quiet interval (shorter than the 180 s hold-down at 60 s
        // cadence would need 3+), then dead again: same alert, one flap.
        step(&engine, 3, &[healthy(node(1))]);
        for t in 4..8 {
            step(&engine, t, &[dead(node(1))]);
        }
        let active = engine.active();
        assert_eq!(active.len(), 1, "{active:?}");
        assert_eq!(active[0].flaps, 1);
        assert_eq!(engine.history().len(), 0, "flap must not resolve+re-raise");
    }

    #[test]
    fn degraded_is_warning_and_suppressed_on_dead_nodes() {
        let engine = AlertEngine::new(EngineConfig::default());
        let partly = NodeInterval {
            node: node(1),
            live_readings: 2,
            skipped: 2,
            breaker_open: false,
            stale_age_sweeps: 1,
        };
        for t in 0..4 {
            step(&engine, t, &[partly, dead(node(2))]);
        }
        let active = engine.active();
        // node 1: degraded warning; node 2: unreachable critical only.
        assert_eq!(active.len(), 2, "{active:?}");
        let by_rule = |r: RuleId| active.iter().find(|a| a.key.rule == r).unwrap();
        assert_eq!(by_rule(RuleId::CollectionDegraded).severity, Severity::Warning);
        assert_eq!(by_rule(RuleId::CollectionDegraded).key.node, Some(node(1)));
        assert_eq!(by_rule(RuleId::NodeUnreachable).key.node, Some(node(2)));
    }

    #[test]
    fn freshness_burn_grades_and_escalates() {
        let engine = AlertEngine::new(EngineConfig::default());
        let jobs = BTreeMap::new();
        let mut input = IntervalInput {
            now: EpochSecs::new(0),
            burn_fast: 10.0,
            jobs: &jobs,
            ..IntervalInput::default()
        };
        engine.observe_interval(&input);
        assert_eq!(engine.active()[0].severity, Severity::Warning);
        input.now = EpochSecs::new(60);
        input.burn_fast = 40.0;
        engine.observe_interval(&input);
        let active = engine.active();
        assert_eq!(active.len(), 1, "escalation must not duplicate");
        assert_eq!(active[0].severity, Severity::Critical);
        assert_eq!(active[0].key.node, None);
    }

    #[test]
    fn anomaly_events_raise_and_attribute_jobs() {
        let engine = AlertEngine::new(EngineConfig::default());
        let mut jobs = BTreeMap::new();
        jobs.insert(node(1), vec![JobId(7), JobId(9)]);
        let event = AnomalyEvent {
            node: node(1),
            signal: Signal::Power,
            kind: AnomalyKind::ZScore,
            raised: true,
            time: EpochSecs::new(0),
            value: 430.0,
            expected: 265.0,
            trace: None,
        };
        engine.observe_interval(&IntervalInput {
            now: EpochSecs::new(0),
            anomalies: std::slice::from_ref(&event),
            jobs: &jobs,
            ..IntervalInput::default()
        });
        let active = engine.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].key.rule, RuleId::Anomaly(Signal::Power, AnomalyKind::ZScore));
        assert_eq!(active[0].severity, Severity::Warning);
        assert_eq!(active[0].jobs, vec![JobId(7), JobId(9)]);
        assert_eq!(active[0].key.rule.name(), "anomaly/power/zscore");
    }

    #[test]
    fn silences_mute_without_deleting() {
        let engine = AlertEngine::new(EngineConfig::default());
        for t in 0..3 {
            step(&engine, t, &[dead(node(1))]);
        }
        engine.add_silence(
            Some(node(1)),
            "collection/",
            EpochSecs::new(100 * 60),
            "rack maintenance",
            EpochSecs::new(3 * 60),
        );
        step(&engine, 3, &[dead(node(1))]);
        let active = engine.active();
        assert_eq!(active.len(), 1);
        assert!(active[0].silenced_by.is_some());
        let json = engine.alerts_json();
        assert_eq!(
            json.get("counts").and_then(|c| c.get("critical")).and_then(|v| v.as_f64()),
            Some(0.0)
        );
        assert_eq!(
            json.get("counts").and_then(|c| c.get("silenced")).and_then(|v| v.as_f64()),
            Some(1.0)
        );
    }

    #[test]
    fn ids_are_sequential_and_replay_identical() {
        let run = || {
            let engine = AlertEngine::new(EngineConfig::default());
            for t in 0..10 {
                let cells: Vec<NodeInterval> = (1..=4)
                    .map(|s| if t >= 2 && s <= 2 { dead(node(s)) } else { healthy(node(s)) })
                    .collect();
                step(&engine, t, &cells);
            }
            engine.alerts_json().to_string_compact()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "alert table not deterministic");
    }

    #[test]
    fn gauges_exist_before_first_alert() {
        let _engine = AlertEngine::new(EngineConfig::default());
        let text = monster_obs::global().text_exposition();
        for sev in Severity::ALL {
            let name = format!("monster_alert_active{{severity=\"{sev}\"}}");
            assert!(text.contains(&name), "missing {name} in exposition");
        }
        assert!(text.contains("# HELP monster_alert_active"));
        assert!(text.contains("monster_alert_transitions_total"));
        assert!(text.contains("monster_alert_flaps_suppressed_total"));
    }

    #[test]
    fn alert_json_shape() {
        let engine = AlertEngine::new(EngineConfig::default());
        for t in 0..3 {
            step(&engine, t, &[dead(node(1))]);
        }
        let alert = &engine.active()[0];
        let json = alert.to_json();
        for field in [
            "id",
            "rule",
            "category",
            "severity",
            "state",
            "node",
            "raised_at",
            "resolved_at",
            "last_seen",
            "flaps",
            "silenced",
            "value",
            "expected",
            "description",
            "trace_id",
            "jobs",
        ] {
            assert!(json.get(field).is_some(), "missing field {field}");
        }
        assert_eq!(json.get("node").and_then(|v| v.as_str()), Some("10.101.1.1"));
        assert_eq!(json.get("state").and_then(|v| v.as_str()), Some("firing"));
    }
}
