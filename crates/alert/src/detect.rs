//! Streaming per-series anomaly detectors, run inside the collection path.
//!
//! Every live BMC reading is folded into a small set of per-node signals
//! (hottest CPU socket, inlet temperature, slowest fan, node power) and
//! evaluated by three detectors as it is ingested:
//!
//! * **z-score** — windowed EWMA mean/variance; an observation further
//!   than `z_threshold` EW standard deviations from the baseline for
//!   `raise_after` consecutive samples raises, `clear_after` consecutive
//!   inliers clears. Outliers never pollute the baseline, so an alarm
//!   cannot self-clear while the incident persists.
//! * **rate-of-change** — a single-interval jump larger than the signal's
//!   configured slew bound (a power step no physical load change could
//!   produce, a thermal jump faster than the chassis time constant).
//! * **flatline** — the simulated sensors (like real ones) carry
//!   measurement noise, so a value that repeats *exactly* for
//!   `flatline_after` samples means the sensor is stuck, however plausible
//!   the level looks.
//!
//! Detectors follow the same steady-state discipline as
//! `tsdb::write_batch`: state lives in a flat map keyed by the `Copy` pair
//! `(NodeId, Signal)`, observation is pure arithmetic on that state, and
//! events are appended to a caller-owned scratch vector — a healthy sweep
//! allocates nothing. Everything is a pure function of the readings, so a
//! seeded chaos replay produces byte-identical event streams.

use monster_redfish::types::NodeReading;
use monster_util::{EpochSecs, NodeId};
use std::collections::HashMap;
use std::fmt;

/// The per-node signals the collector derives from raw readings. Keeping
/// the set small and fixed bounds detector cardinality at
/// `4 × nodes` series regardless of socket or fan count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Signal {
    /// Hottest CPU socket temperature, °C.
    CpuTemp,
    /// Chassis inlet temperature, °C.
    InletTemp,
    /// Slowest fan, RPM (a dying fan drags the minimum down first).
    FanSpeed,
    /// Node power draw, W.
    Power,
}

impl Signal {
    /// Every signal, in evaluation order.
    pub const ALL: [Signal; 4] =
        [Signal::CpuTemp, Signal::InletTemp, Signal::FanSpeed, Signal::Power];

    /// Stable lowercase name used in alert labels and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Signal::CpuTemp => "cpu_temp",
            Signal::InletTemp => "inlet_temp",
            Signal::FanSpeed => "fan_speed",
            Signal::Power => "power",
        }
    }

    /// Dense index into per-signal tuning tables.
    pub fn index(&self) -> usize {
        *self as usize
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which detector produced an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// EWMA z-score excursion.
    ZScore,
    /// Single-interval jump beyond the slew bound.
    RateOfChange,
    /// Exactly repeated value on a noisy sensor.
    Flatline,
}

impl AnomalyKind {
    /// Stable lowercase name used in alert labels and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            AnomalyKind::ZScore => "zscore",
            AnomalyKind::RateOfChange => "rate_of_change",
            AnomalyKind::Flatline => "flatline",
        }
    }
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-signal detector floors. Signals live in wildly different units
/// (°C, RPM, W) and have wildly different *legitimate* dynamics — a job
/// start swings node power by ~280 W and fans by ~8000 RPM within one
/// collection interval, entirely healthy. The floors sit above the
/// largest load-driven transient so scheduling never alarms, while faults
/// the physics cannot explain still do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalTuning {
    /// Absolute deviation floor: differences smaller than this are never
    /// z-score anomalous, however tight the variance.
    pub min_deviation: f64,
    /// Single-interval jump (absolute, in the signal's unit) that trips
    /// the rate-of-change detector. `f64::INFINITY` disables it.
    pub rate_threshold: f64,
    /// Exactly repeated samples that trip the flatline detector. Must be
    /// calibrated against the wire quantization: a sensor whose noise is
    /// smaller than the payload's rounding step repeats honestly.
    pub flatline_after: u32,
}

/// Detector tuning. Defaults are deliberately conservative: a calm
/// deployment must stay silent through sensor noise, job starts/stops,
/// and slow drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// EWMA decay per observation (0 < alpha ≤ 1); smaller = longer
    /// memory.
    pub alpha: f64,
    /// Flag when |x − mean| exceeds this many EW standard deviations.
    pub z_threshold: f64,
    /// Consecutive outliers required to raise the z-score alarm.
    pub raise_after: u32,
    /// Consecutive inliers required to clear any alarm.
    pub clear_after: u32,
    /// Observations to absorb before flagging anything (warm-up).
    pub warmup: u32,
    /// Per-signal floors, indexed by [`Signal::index`].
    pub tuning: [SignalTuning; 4],
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            alpha: 0.15,
            z_threshold: 4.5,
            raise_after: 2,
            clear_after: 3,
            warmup: 10,
            tuning: [
                // CpuTemp: the 180 s thermal time constant bounds a
                // legitimate ramp at ~14 °C per 60 s interval.
                SignalTuning { min_deviation: 35.0, rate_threshold: 30.0, flatline_after: 5 },
                // InletTemp: machine-room drift (σ≈0.05 °C/step) is
                // *below* the wire's 0.1 °C rounding, so short exact-repeat
                // runs are honest quantization — a stuck sensor repeats for
                // an hour, a healthy one will not.
                SignalTuning { min_deviation: 6.0, rate_threshold: 8.0, flatline_after: 60 },
                // FanSpeed: fans legitimately slew idle→max (~8000 RPM)
                // inside one interval, so the slew bound is useless —
                // flatline and large z excursions carry this signal.
                SignalTuning {
                    min_deviation: 9000.0,
                    rate_threshold: f64::INFINITY,
                    flatline_after: 5,
                },
                // Power: idle→peak under load is ~280 W and near-instant;
                // anything past these floors is electrically wrong.
                SignalTuning { min_deviation: 320.0, rate_threshold: 400.0, flatline_after: 5 },
            ],
        }
    }
}

impl DetectorConfig {
    /// A config with the same floors for all four signals — unit tests
    /// and single-signal pipelines.
    pub fn uniform(min_deviation: f64, rate_threshold: f64) -> DetectorConfig {
        DetectorConfig {
            tuning: [SignalTuning { min_deviation, rate_threshold, flatline_after: 5 }; 4],
            ..DetectorConfig::default()
        }
    }
}

/// A typed anomaly transition emitted by one detector on one series.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyEvent {
    /// Node the series belongs to.
    pub node: NodeId,
    /// Which derived signal.
    pub signal: Signal,
    /// Which detector fired.
    pub kind: AnomalyKind,
    /// True = anomaly began; false = anomaly ended.
    pub raised: bool,
    /// Observation time (the collection interval's `now`).
    pub time: EpochSecs,
    /// The observation that completed the transition.
    pub value: f64,
    /// The detector's baseline at that moment (EW mean for z-score, the
    /// previous sample for rate-of-change/flatline).
    pub expected: f64,
    /// The distributed-trace context of the reading that fired, linking
    /// the alert back to the exact sweep in `/debug/trace`.
    pub trace: Option<monster_obs::TraceContext>,
}

/// Per-(node, signal) detector state: one EWMA tracker plus hysteresis
/// runs for each detector kind. Fixed-size and `Copy`-friendly — updating
/// it never allocates.
#[derive(Debug, Clone)]
struct SeriesState {
    mean: f64,
    var: f64,
    seen: u32,
    last: f64,
    outlier_run: u32,
    inlier_run: u32,
    z_alarmed: bool,
    rate_calm_run: u32,
    rate_alarmed: bool,
    flat_run: u32,
    flat_alarmed: bool,
}

impl SeriesState {
    fn new(value: f64) -> SeriesState {
        SeriesState {
            mean: value,
            var: 0.0,
            seen: 0,
            last: value,
            outlier_run: 0,
            inlier_run: 0,
            z_alarmed: false,
            rate_calm_run: 0,
            rate_alarmed: false,
            flat_run: 0,
            flat_alarmed: false,
        }
    }
}

/// The collector-side detector bank: independent [`SeriesState`]s per
/// `(node, signal)`, fed every live reading as it is ingested.
#[derive(Debug)]
pub struct DetectorBank {
    config: DetectorConfig,
    series: HashMap<(NodeId, Signal), SeriesState>,
}

impl DetectorBank {
    /// A bank with the given tuning.
    pub fn new(config: DetectorConfig) -> DetectorBank {
        DetectorBank { config, series: HashMap::new() }
    }

    /// The active tuning.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Number of `(node, signal)` series currently tracked.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Whether any detector currently holds `(node, signal)` anomalous.
    pub fn is_anomalous(&self, node: NodeId, signal: Signal) -> bool {
        self.series
            .get(&(node, signal))
            .map(|s| s.z_alarmed || s.rate_alarmed || s.flat_alarmed)
            .unwrap_or(false)
    }

    /// Fold one live reading into the bank, appending any transitions to
    /// `events`. Health readings carry no numeric signal and are ignored
    /// (health alerting flows through the engine's own rules).
    pub fn observe_reading(
        &mut self,
        node: NodeId,
        reading: &NodeReading,
        time: EpochSecs,
        trace: Option<monster_obs::TraceContext>,
        events: &mut Vec<AnomalyEvent>,
    ) {
        match reading {
            NodeReading::Thermal { cpu_temps, inlet, fans } => {
                if let Some(hottest) = cpu_temps.iter().copied().reduce(f64::max) {
                    self.observe(node, Signal::CpuTemp, hottest, time, trace, events);
                }
                self.observe(node, Signal::InletTemp, *inlet, time, trace, events);
                if let Some(slowest) = fans.iter().copied().reduce(f64::min) {
                    self.observe(node, Signal::FanSpeed, slowest, time, trace, events);
                }
            }
            NodeReading::Power { usage_watts, .. } => {
                self.observe(node, Signal::Power, *usage_watts, time, trace, events);
            }
            NodeReading::Manager { .. } | NodeReading::System { .. } => {}
        }
    }

    /// Feed one observation of one signal directly (tests and non-Redfish
    /// pipelines).
    pub fn observe(
        &mut self,
        node: NodeId,
        signal: Signal,
        value: f64,
        time: EpochSecs,
        trace: Option<monster_obs::TraceContext>,
        events: &mut Vec<AnomalyEvent>,
    ) {
        if !value.is_finite() {
            return;
        }
        let c = self.config;
        let t = c.tuning[signal.index()];
        let s = self.series.entry((node, signal)).or_insert_with(|| SeriesState::new(value));
        s.seen += 1;
        let warm = s.seen > c.warmup;
        let prev = s.last;

        let mut emit = |raised: bool, kind: AnomalyKind, expected: f64| {
            events.push(AnomalyEvent { node, signal, kind, raised, time, value, expected, trace });
        };

        // --- flatline: exact repeats on a noisy sensor ---
        if s.seen > 1 && value == prev {
            s.flat_run += 1;
        } else {
            s.flat_run = 0;
            if s.flat_alarmed {
                s.flat_alarmed = false;
                emit(false, AnomalyKind::Flatline, prev);
            }
        }
        if warm && !s.flat_alarmed && s.flat_run >= t.flatline_after {
            s.flat_alarmed = true;
            emit(true, AnomalyKind::Flatline, prev);
        }

        // --- rate-of-change: single-interval slew bound ---
        let jump = (value - prev).abs();
        if warm && jump > t.rate_threshold {
            s.rate_calm_run = 0;
            if !s.rate_alarmed {
                s.rate_alarmed = true;
                emit(true, AnomalyKind::RateOfChange, prev);
            }
        } else if s.rate_alarmed {
            s.rate_calm_run += 1;
            if s.rate_calm_run >= c.clear_after {
                s.rate_alarmed = false;
                s.rate_calm_run = 0;
                emit(false, AnomalyKind::RateOfChange, prev);
            }
        }

        // --- z-score: EWMA mean/variance with hysteresis ---
        let deviation = (value - s.mean).abs();
        let sigma = s.var.sqrt().max(t.min_deviation / c.z_threshold);
        let is_outlier = warm && deviation > c.z_threshold * sigma && deviation > t.min_deviation;
        if is_outlier {
            s.outlier_run += 1;
            s.inlier_run = 0;
            if !s.z_alarmed && s.outlier_run >= c.raise_after {
                s.z_alarmed = true;
                emit(true, AnomalyKind::ZScore, s.mean);
            }
            // Outliers do not pollute the baseline.
        } else {
            s.inlier_run += 1;
            s.outlier_run = 0;
            if s.z_alarmed && s.inlier_run >= c.clear_after {
                s.z_alarmed = false;
                emit(false, AnomalyKind::ZScore, s.mean);
            }
            let delta = value - s.mean;
            s.mean += c.alpha * delta;
            s.var = (1.0 - c.alpha) * (s.var + c.alpha * delta * delta);
        }

        s.last = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeId {
        NodeId::new(1, 1)
    }

    fn feed(
        bank: &mut DetectorBank,
        signal: Signal,
        values: impl IntoIterator<Item = f64>,
    ) -> Vec<AnomalyEvent> {
        let mut events = Vec::new();
        for (i, v) in values.into_iter().enumerate() {
            bank.observe(node(), signal, v, EpochSecs::new(i as i64 * 60), None, &mut events);
        }
        events
    }

    /// A noisy-but-steady baseline: 270 W ± small deterministic wiggle.
    fn steady(n: usize) -> impl Iterator<Item = f64> {
        (0..n).map(|i| 270.0 + ((i * 7) % 13) as f64 * 0.5)
    }

    #[test]
    fn steady_noisy_signal_stays_silent() {
        let mut bank = DetectorBank::new(DetectorConfig::default());
        let events = feed(&mut bank, Signal::Power, steady(200));
        assert!(events.is_empty(), "{events:?}");
        assert_eq!(bank.series_count(), 1);
    }

    #[test]
    fn zscore_step_raises_then_clears() {
        let mut bank = DetectorBank::new(DetectorConfig::uniform(8.0, f64::INFINITY));
        let series: Vec<f64> = steady(50).chain((0..5).map(|_| 400.0)).chain(steady(50)).collect();
        let events = feed(&mut bank, Signal::Power, series);
        let z: Vec<&AnomalyEvent> =
            events.iter().filter(|e| e.kind == AnomalyKind::ZScore).collect();
        assert_eq!(z.len(), 2, "{events:?}");
        assert!(z[0].raised && z[0].value > 390.0);
        assert!(!z[1].raised);
        assert!(!bank.is_anomalous(node(), Signal::Power));
    }

    #[test]
    fn zscore_baseline_frozen_during_incident() {
        let mut bank = DetectorBank::new(DetectorConfig::uniform(8.0, f64::INFINITY));
        let series: Vec<f64> = steady(50).chain((0..60).map(|_| 400.0)).collect();
        let events = feed(&mut bank, Signal::Power, series);
        // One raise; the alarm must not self-clear while the incident
        // persists (a constant 400 W also trips flatline — filter to z).
        let z: Vec<&AnomalyEvent> =
            events.iter().filter(|e| e.kind == AnomalyKind::ZScore).collect();
        assert_eq!(z.len(), 1, "{z:?}");
        assert!(z[0].raised);
    }

    #[test]
    fn single_glitch_is_debounced() {
        let mut bank = DetectorBank::new(DetectorConfig::uniform(8.0, f64::INFINITY));
        let series: Vec<f64> = steady(25).chain([430.0]).chain(steady(25)).collect();
        let events = feed(&mut bank, Signal::Power, series);
        assert!(events.is_empty(), "one-sample glitch alarmed: {events:?}");
    }

    #[test]
    fn rate_of_change_fires_on_impossible_jump() {
        let mut bank = DetectorBank::new(DetectorConfig::uniform(f64::INFINITY, 150.0));
        let series: Vec<f64> = steady(20).chain([480.0]).chain(steady(20)).collect();
        let events = feed(&mut bank, Signal::Power, series);
        let rate: Vec<&AnomalyEvent> =
            events.iter().filter(|e| e.kind == AnomalyKind::RateOfChange).collect();
        // The jump up fires; the jump back down keeps it alarmed (still
        // slewing); the steady tail clears it.
        assert_eq!(rate.len(), 2, "{events:?}");
        assert!(rate[0].raised);
        assert!((rate[0].value - 480.0).abs() < 1e-9);
        assert!(!rate[1].raised);
    }

    #[test]
    fn flatline_fires_on_exact_repeats_only() {
        let mut bank = DetectorBank::new(DetectorConfig::uniform(f64::INFINITY, f64::INFINITY));
        // Noisy warm-up, then the sensor sticks at its last value.
        let series: Vec<f64> = steady(20).chain((0..10).map(|_| 271.25)).chain(steady(5)).collect();
        let events = feed(&mut bank, Signal::Power, series);
        let flat: Vec<&AnomalyEvent> =
            events.iter().filter(|e| e.kind == AnomalyKind::Flatline).collect();
        assert_eq!(flat.len(), 2, "{events:?}");
        assert!(flat[0].raised);
        assert!(!flat[1].raised);
    }

    #[test]
    fn warmup_suppresses_everything() {
        let mut bank = DetectorBank::new(DetectorConfig::default());
        let events = feed(&mut bank, Signal::Power, [100.0, 900.0, 50.0, 800.0, 120.0]);
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn slow_drift_tracks_without_alarm() {
        let mut bank = DetectorBank::new(DetectorConfig::default());
        let events = feed(&mut bank, Signal::CpuTemp, (0..300).map(|i| 40.0 + i as f64 * 0.1));
        assert!(events.is_empty(), "drift alarmed: {events:?}");
    }

    #[test]
    fn readings_fan_out_to_signals() {
        let mut bank = DetectorBank::new(DetectorConfig::default());
        let mut events = Vec::new();
        let reading = NodeReading::Thermal {
            cpu_temps: vec![55.0, 61.0],
            inlet: 20.0,
            fans: vec![4000.0, 3800.0],
        };
        bank.observe_reading(node(), &reading, EpochSecs::new(0), None, &mut events);
        bank.observe_reading(
            node(),
            &NodeReading::Power { usage_watts: 260.0, voltages: vec![12.0] },
            EpochSecs::new(0),
            None,
            &mut events,
        );
        assert_eq!(bank.series_count(), 4);
        assert!(events.is_empty());
    }

    #[test]
    fn series_are_independent_and_deterministic() {
        let run = || {
            let mut bank = DetectorBank::new(DetectorConfig::uniform(8.0, 150.0));
            let mut events = Vec::new();
            for i in 0..80i64 {
                let hot = if (30..35).contains(&i) { 450.0 } else { 260.0 + (i % 5) as f64 };
                bank.observe(
                    NodeId::new(1, 1),
                    Signal::Power,
                    hot,
                    EpochSecs::new(i * 60),
                    None,
                    &mut events,
                );
                bank.observe(
                    NodeId::new(1, 2),
                    Signal::Power,
                    260.0 + (i % 5) as f64,
                    EpochSecs::new(i * 60),
                    None,
                    &mut events,
                );
            }
            events
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "detector stream not deterministic");
        assert!(a.iter().any(|e| e.raised && e.node == NodeId::new(1, 1)));
        assert!(a.iter().all(|e| e.node != NodeId::new(1, 2)), "quiet node alarmed");
    }
}
