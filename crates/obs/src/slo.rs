//! Data-freshness SLO engine: watermarks, staleness percentiles, and
//! multi-window burn rates.
//!
//! The paper's promise is timeliness — a 60 s cadence whose data is only
//! useful if it is *recent*. PR 4's resilient sweeps made staleness a
//! first-class outcome (`Stale=true` substitution when a BMC is skipped),
//! but offered no aggregate answer to "how fresh is the pipeline right
//! now?". This module keeps a **last-good-ingest watermark** per
//! `(node, category)` series: the collector bumps it whenever a sweep
//! returns a live (non-substituted) reading, and every sweep tick records
//! an **attainment sample** — the fraction of tracked series whose lag is
//! within the SLO threshold (default: 2 cadences, 120 s).
//!
//! From those two ingredients the tracker derives everything
//! `GET /debug/pipeline` reports:
//!
//! * staleness percentiles (p50/p90/p99/max) over current per-series lags;
//! * SLO attainment vs. the target (default "99% of series fresher than
//!   2 cadences");
//! * burn rates over a fast and a slow window — the standard
//!   multi-window alerting pair. A burn rate of 1.0 means the error
//!   budget is being consumed exactly at the sustainable rate; 10× means
//!   ten times too fast.
//!
//! The builder reads the same watermarks to stamp `/v1/metrics` responses
//! with `X-Freshness-Lag-Seconds`.
//!
//! Time is the simulation's epoch-seconds timeline (the collector's
//! `now`), not host wall time, so chaos replays yield identical reports.

use monster_json::{jobj, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Freshness SLO parameters. Defaults encode the paper's cadence: a
/// series is "fresh" within 2 × 60 s, and the target is 99% of series
/// fresh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Collection cadence in seconds (the paper's 60 s).
    pub cadence_secs: f64,
    /// Lag at or under which a series counts as fresh (2 cadences).
    pub fresh_within_secs: f64,
    /// Target fraction of series fresh (0.99 = "99% of nodes fresher
    /// than 2 cadences").
    pub target: f64,
    /// Fast burn-rate window in seconds (default 5 min).
    pub fast_window_secs: f64,
    /// Slow burn-rate window in seconds (default 1 h).
    pub slow_window_secs: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            cadence_secs: 60.0,
            fresh_within_secs: 120.0,
            target: 0.99,
            fast_window_secs: 300.0,
            slow_window_secs: 3600.0,
        }
    }
}

#[derive(Debug, Default)]
struct State {
    /// (node, category) → epoch-seconds of the last live ingest.
    watermarks: BTreeMap<(String, String), f64>,
    /// Epoch-seconds of the most recent sweep tick.
    latest: f64,
    /// (sweep time, attainment) samples, oldest first, trimmed to the
    /// slow burn-rate window.
    attainment: Vec<(f64, f64)>,
}

/// Per-series freshness watermarks plus the attainment history that burn
/// rates are computed from. One lives in the global
/// [`Registry`](crate::Registry); stages reach it via
/// [`crate::freshness`].
#[derive(Debug, Default)]
pub struct FreshnessTracker {
    config: Mutex<SloConfig>,
    state: Mutex<State>,
}

impl FreshnessTracker {
    /// New tracker with default [`SloConfig`].
    pub fn new() -> FreshnessTracker {
        FreshnessTracker::default()
    }

    /// Replace the SLO parameters (cadence, thresholds, windows).
    pub fn configure(&self, config: SloConfig) {
        *self.config.lock() = config;
    }

    /// Current SLO parameters.
    pub fn config(&self) -> SloConfig {
        *self.config.lock()
    }

    /// Record a live (non-substituted) reading for `(node, category)`
    /// ingested at epoch-seconds `now`. Watermarks are monotone.
    pub fn record_ingest(&self, node: &str, category: &str, now_secs: f64) {
        let mut state = self.state.lock();
        let w = state.watermarks.entry((node.to_string(), category.to_string())).or_insert(0.0);
        if now_secs > *w {
            *w = now_secs;
        }
    }

    /// Mark a sweep tick at epoch-seconds `now`: advances the reference
    /// time lags are measured against and appends an attainment sample
    /// for the burn-rate windows.
    pub fn record_sweep(&self, now_secs: f64) {
        let config = self.config();
        let mut state = self.state.lock();
        if now_secs > state.latest {
            state.latest = now_secs;
        }
        let attainment = attainment_of(&state, config.fresh_within_secs);
        state.attainment.push((now_secs, attainment));
        let cutoff = now_secs - config.slow_window_secs;
        state.attainment.retain(|&(t, _)| t >= cutoff);
    }

    /// Number of `(node, category)` series with a watermark.
    pub fn tracked_series(&self) -> usize {
        self.state.lock().watermarks.len()
    }

    /// Current lag (seconds behind the latest sweep) of every tracked
    /// series, unsorted.
    pub fn lags(&self) -> Vec<f64> {
        let state = self.state.lock();
        state.watermarks.values().map(|&w| (state.latest - w).max(0.0)).collect()
    }

    /// Worst lag across all tracked series, or `None` if nothing is
    /// tracked yet.
    pub fn max_lag_secs(&self) -> Option<f64> {
        self.lags().into_iter().fold(None, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))))
    }

    /// Worst lag across the series of the named node (any category), or
    /// `None` if the node is untracked.
    pub fn node_lag_secs(&self, node: &str) -> Option<f64> {
        let state = self.state.lock();
        let latest = state.latest;
        state
            .watermarks
            .iter()
            .filter(|((n, _), _)| n == node)
            .map(|(_, &w)| (latest - w).max(0.0))
            .fold(None, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))))
    }

    /// Fraction of tracked series currently within the SLO freshness
    /// threshold (1.0 when nothing is tracked — no data is not an SLO
    /// violation).
    pub fn attainment(&self) -> f64 {
        attainment_of(&self.state.lock(), self.config().fresh_within_secs)
    }

    /// Error-budget burn rate averaged over the trailing `window_secs`:
    /// `(1 - attainment) / (1 - target)`. 0.0 with no samples in window.
    pub fn burn_rate(&self, window_secs: f64) -> f64 {
        let config = self.config();
        let state = self.state.lock();
        let cutoff = state.latest - window_secs;
        let in_window: Vec<f64> =
            state.attainment.iter().filter(|&&(t, _)| t >= cutoff).map(|&(_, a)| a).collect();
        if in_window.is_empty() {
            return 0.0;
        }
        let mean = in_window.iter().sum::<f64>() / in_window.len() as f64;
        let budget = (1.0 - config.target).max(1e-9);
        (1.0 - mean) / budget
    }

    /// Forget all watermarks and attainment history (the chaos harness
    /// calls this between cells so runs don't contaminate each other).
    pub fn reset(&self) {
        *self.state.lock() = State::default();
    }

    /// The full `/debug/pipeline` report as a JSON value.
    pub fn report(&self) -> Value {
        let config = self.config();
        let mut lags = self.lags();
        lags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let attainment = self.attainment();
        let budget = (1.0 - config.target).max(1e-9);
        jobj! {
            "tracked_series" => lags.len() as i64,
            "latest_sweep_epoch_secs" => self.state.lock().latest,
            "slo" => jobj! {
                "cadence_secs" => config.cadence_secs,
                "fresh_within_secs" => config.fresh_within_secs,
                "target" => config.target,
            },
            "staleness_secs" => jobj! {
                "p50" => percentile(&lags, 0.50),
                "p90" => percentile(&lags, 0.90),
                "p99" => percentile(&lags, 0.99),
                "max" => lags.last().copied().unwrap_or(0.0),
            },
            "attainment" => attainment,
            "error_budget_used" => ((1.0 - attainment) / budget).min(1e9),
            "burn_rate" => jobj! {
                "fast_window_secs" => config.fast_window_secs,
                "fast" => self.burn_rate(config.fast_window_secs),
                "slow_window_secs" => config.slow_window_secs,
                "slow" => self.burn_rate(config.slow_window_secs),
            },
        }
    }
}

fn attainment_of(state: &State, fresh_within_secs: f64) -> f64 {
    if state.watermarks.is_empty() {
        return 1.0;
    }
    let fresh = state
        .watermarks
        .values()
        .filter(|&&w| (state.latest - w).max(0.0) <= fresh_within_secs)
        .count();
    fresh as f64 / state.watermarks.len() as f64
}

/// Nearest-rank percentile over an ascending-sorted slice; 0.0 if empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_drive_lags_and_attainment() {
        let t = FreshnessTracker::new();
        assert_eq!(t.attainment(), 1.0);
        assert_eq!(t.max_lag_secs(), None);

        // Three series: two fresh, one stale by 3 cadences.
        t.record_ingest("node-1", "Thermal", 1000.0);
        t.record_ingest("node-1", "Power", 1000.0);
        t.record_ingest("node-2", "Thermal", 820.0);
        t.record_sweep(1000.0);

        assert_eq!(t.tracked_series(), 3);
        assert_eq!(t.max_lag_secs(), Some(180.0));
        assert_eq!(t.node_lag_secs("node-2"), Some(180.0));
        assert_eq!(t.node_lag_secs("node-1"), Some(0.0));
        assert_eq!(t.node_lag_secs("node-9"), None);
        let a = t.attainment();
        assert!((a - 2.0 / 3.0).abs() < 1e-9, "attainment {a}");

        // Watermarks are monotone: an older ingest can't regress one.
        t.record_ingest("node-1", "Thermal", 900.0);
        assert_eq!(t.node_lag_secs("node-1"), Some(0.0));
    }

    #[test]
    fn burn_rate_windows() {
        let t = FreshnessTracker::new();
        t.configure(SloConfig { target: 0.9, ..SloConfig::default() });
        t.record_ingest("n", "Thermal", 0.0);
        // Sweep at t=0: the series is fresh → attainment 1, burn 0.
        t.record_sweep(0.0);
        assert_eq!(t.burn_rate(300.0), 0.0);
        // Sweep at t=180 with the watermark stuck at 0 → lag 180 > 120 →
        // attainment 0 for that sample.
        t.record_sweep(180.0);
        // Window covering both samples: mean attainment 0.5, budget 0.1 →
        // burn 5.0.
        assert!((t.burn_rate(300.0) - 5.0).abs() < 1e-9);
        // Window covering only the latest sample: burn 10.0.
        assert!((t.burn_rate(60.0) - 10.0).abs() < 1e-9);
        // No samples in a zero-width future window.
        let empty = FreshnessTracker::new();
        assert_eq!(empty.burn_rate(300.0), 0.0);
    }

    #[test]
    fn report_shape_and_percentiles() {
        let t = FreshnessTracker::new();
        for i in 0..100 {
            t.record_ingest(&format!("node-{i}"), "Thermal", 1000.0 - i as f64);
        }
        t.record_sweep(1000.0);
        let report = t.report();
        assert_eq!(report.get("tracked_series").unwrap().as_i64(), Some(100));
        let stale = report.get("staleness_secs").unwrap();
        assert_eq!(stale.get("p50").unwrap().as_f64(), Some(49.0));
        assert_eq!(stale.get("p99").unwrap().as_f64(), Some(98.0));
        assert_eq!(stale.get("max").unwrap().as_f64(), Some(99.0));
        let burn = report.get("burn_rate").unwrap();
        assert!(burn.get("fast").unwrap().as_f64().is_some());
        assert!(burn.get("slow").unwrap().as_f64().is_some());

        t.reset();
        assert_eq!(t.tracked_series(), 0);
        assert_eq!(t.max_lag_secs(), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.75), 3.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }
}
