//! Distributed-trace identity and context propagation.
//!
//! PR 1's spans were flat records: a name and two timestamps, with no way
//! to tell which sweep a retry belonged to or which write served which
//! query. This module upgrades them to a causal graph:
//!
//! * [`TraceId`] — 128-bit identity of one end-to-end pipeline pass (one
//!   collection sweep, or one builder API request);
//! * [`SpanId`] — 64-bit identity of one operation inside a trace;
//! * [`TraceContext`] — the `(trace, span)` pair a parent hands to its
//!   children, serialized on the wire as a W3C `traceparent` header.
//!
//! Ids are minted from a process-wide atomic counter run through a
//! splitmix64 finalizer: unique, well spread across the id space, and —
//! unlike random ids — identical across replays of the same deterministic
//! simulation, so a seeded chaos run produces the same trace graph every
//! time.
//!
//! # In-process propagation
//!
//! The current context rides a thread-local (set with [`set_current`],
//! read with [`current`]). The collector installs its root context for
//! the duration of an interval; everything the interval calls into —
//! the Redfish sweep, TSDB write batches, lock-wait exemplars — picks the
//! parent up without any signature changes. The resilient sweep is
//! single-threaded by design (deterministic replay), so the thread-local
//! is exact there; worker-pool call sites that need the context must
//! capture it explicitly before fanning out.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// 128-bit trace identity (one end-to-end pipeline pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

/// 64-bit span identity (one operation within a trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// splitmix64 finalizer: bijective, so distinct counter values can never
/// collide, while consecutive values land far apart in the id space.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_nonzero() -> u64 {
    loop {
        let id = mix64(NEXT_ID.fetch_add(1, Ordering::Relaxed));
        if id != 0 {
            return id;
        }
    }
}

impl TraceId {
    /// Mint a fresh process-unique trace id (deterministic across replays
    /// of the same program).
    pub fn mint() -> TraceId {
        TraceId(((next_nonzero() as u128) << 64) | next_nonzero() as u128)
    }

    /// Parse the 32-hex-digit form [`TraceId`] displays as (the id part
    /// of a `traceparent`, or a flight-recorder record's `trace_id`).
    /// `None` on wrong length, non-hex digits, or the forbidden all-zero
    /// id.
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 {
            return None;
        }
        let id = u128::from_str_radix(s, 16).ok()?;
        if id == 0 {
            return None;
        }
        Some(TraceId(id))
    }
}

impl SpanId {
    /// Mint a fresh process-unique span id.
    pub fn mint() -> SpanId {
        SpanId(next_nonzero())
    }
}

/// The propagated `(trace, span)` pair: which trace we are inside, and
/// which span is the current parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace every descendant span joins.
    pub trace: TraceId,
    /// The span that children of this context hang off.
    pub span: SpanId,
}

impl TraceContext {
    /// A fresh root context: new trace, new root span id.
    pub fn root() -> TraceContext {
        TraceContext { trace: TraceId::mint(), span: SpanId::mint() }
    }

    /// A child context inside the same trace (new span id).
    pub fn child(&self) -> TraceContext {
        TraceContext { trace: self.trace, span: SpanId::mint() }
    }

    /// Serialize as a W3C `traceparent` header value
    /// (`00-{trace-id}-{parent-id}-01`, the sampled flag always set —
    /// MonSTer traces everything it keeps).
    pub fn to_traceparent(&self) -> String {
        format!("00-{}-{}-01", self.trace, self.span)
    }

    /// Parse a W3C `traceparent` header value. Returns `None` on any
    /// malformation (wrong field count, wrong lengths, non-hex digits,
    /// all-zero ids, or the forbidden `ff` version) — the caller starts a
    /// new root instead of failing the request.
    pub fn parse_traceparent(s: &str) -> Option<TraceContext> {
        let mut parts = s.trim().split('-');
        let version = parts.next()?;
        let trace = parts.next()?;
        let span = parts.next()?;
        let flags = parts.next()?;
        if parts.next().is_some() && version == "00" {
            // Version 00 defines exactly four fields; future versions may
            // append more, which we'd ignore.
            return None;
        }
        if version.len() != 2 || version == "ff" || !is_lower_hex(version) {
            return None;
        }
        if trace.len() != 32 || span.len() != 16 || flags.len() != 2 {
            return None;
        }
        if !is_lower_hex(trace) || !is_lower_hex(span) || !is_lower_hex(flags) {
            return None;
        }
        let trace = u128::from_str_radix(trace, 16).ok()?;
        let span = u64::from_str_radix(span, 16).ok()?;
        if trace == 0 || span == 0 {
            return None;
        }
        Some(TraceContext { trace: TraceId(trace), span: SpanId(span) })
    }
}

fn is_lower_hex(s: &str) -> bool {
    s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The context currently installed on this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Install `ctx` as the thread's current context for the lifetime of the
/// returned guard; the previous context (if any) is restored on drop.
pub fn set_current(ctx: TraceContext) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    ContextGuard { prev }
}

/// Restores the previously-installed context when dropped.
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let a = TraceContext::root();
        let b = TraceContext::root();
        assert_ne!(a.trace, b.trace);
        assert_ne!(a.span, b.span);
        assert_ne!(a.trace.0, 0);
        assert_ne!(a.span.0, 0);
        let child = a.child();
        assert_eq!(child.trace, a.trace);
        assert_ne!(child.span, a.span);
    }

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext::root();
        let header = ctx.to_traceparent();
        assert_eq!(header.len(), 2 + 1 + 32 + 1 + 16 + 1 + 2);
        let parsed = TraceContext::parse_traceparent(&header).unwrap();
        assert_eq!(parsed, ctx);
    }

    #[test]
    fn malformed_traceparents_are_rejected() {
        for bad in [
            "",
            "garbage",
            "00-abc-def-01", // wrong lengths
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
            "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
            "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 + extra field
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
        ] {
            assert!(TraceContext::parse_traceparent(bad).is_none(), "accepted {bad:?}");
        }
        // A valid header parses.
        assert!(TraceContext::parse_traceparent(
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        )
        .is_some());
    }

    #[test]
    fn trace_ids_roundtrip_through_hex() {
        let id = TraceId::mint();
        assert_eq!(TraceId::parse_hex(&id.to_string()), Some(id));
        assert_eq!(
            TraceId::parse_hex("4bf92f3577b34da6a3ce929d0e0e4736"),
            Some(TraceId(0x4bf92f3577b34da6a3ce929d0e0e4736))
        );
        for bad in
            ["", "abc", "zzf92f3577b34da6a3ce929d0e0e4736", "00000000000000000000000000000000"]
        {
            assert!(TraceId::parse_hex(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn current_context_nests_and_restores() {
        assert_eq!(current(), None);
        let a = TraceContext::root();
        {
            let _g = set_current(a);
            assert_eq!(current(), Some(a));
            let b = a.child();
            {
                let _g2 = set_current(b);
                assert_eq!(current(), Some(b));
            }
            assert_eq!(current(), Some(a));
        }
        assert_eq!(current(), None);
    }
}
