//! Virtual-time-aware spans.
//!
//! A [`Span`] brackets a unit of pipeline work (a sweep, a collection
//! interval, a builder request) and records a [`SpanRecord`] into the
//! global registry's ring buffer when it finishes. Timestamps come from
//! the registry's **virtual clock** — the same `monster_sim` time that
//! drives sweeps and query costs — so exported traces line up with
//! simulated activity instead of host wall time.

use crate::global;
use monster_sim::{VDuration, VInstant};

/// A completed span, as stored in the registry's trace ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Operation name (e.g. `redfish.sweep`).
    pub name: String,
    /// Virtual start time.
    pub begin: VInstant,
    /// Virtual end time (`>= begin`).
    pub end: VInstant,
}

impl SpanRecord {
    /// Span duration in virtual time.
    pub fn duration(&self) -> VDuration {
        self.end.since(self.begin)
    }
}

/// An in-flight span. Create one with [`Span::enter`]; it records itself
/// when finished (explicitly, or on drop).
#[derive(Debug)]
pub struct Span {
    name: String,
    begin: VInstant,
    done: bool,
}

impl Span {
    /// Open a span named `name`, stamped with the registry's current
    /// virtual time.
    pub fn enter(name: impl Into<String>) -> Span {
        Span { name: name.into(), begin: global().vtime(), done: false }
    }

    /// Virtual time at which the span was opened.
    pub fn begin(&self) -> VInstant {
        self.begin
    }

    /// Close the span at the registry's current virtual time.
    pub fn finish(mut self) {
        self.record(global().vtime());
    }

    /// Close the span `dur` after it began, advancing the registry's
    /// virtual clock to at least the span's end. This is the common form
    /// for simulated work: the caller knows the simulated elapsed time
    /// (e.g. a `SweepOutcome` makespan) rather than observing it.
    pub fn finish_after(mut self, dur: VDuration) {
        let end = self.begin + dur;
        global().set_vtime(end);
        self.record(end);
    }

    fn record(&mut self, end: VInstant) {
        if self.done {
            return;
        }
        self.done = true;
        global().record_span(SpanRecord {
            name: std::mem::take(&mut self.name),
            begin: self.begin,
            end: end.max(self.begin),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record(global().vtime());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_after_advances_vclock_and_records() {
        let t0 = global().vtime();
        let span = Span::enter("test.op");
        span.finish_after(VDuration::from_secs(2));
        assert!(global().vtime() >= t0 + VDuration::from_secs(2));
        let spans = global().recent_spans();
        let rec = spans.iter().rev().find(|s| s.name == "test.op").unwrap();
        assert_eq!(rec.duration(), VDuration::from_secs(2));
    }

    #[test]
    fn drop_records_without_double_count() {
        let before = global().recent_spans().len();
        {
            let _span = Span::enter("test.drop");
        }
        let after = global().recent_spans().len();
        assert_eq!(after, before + 1);
    }
}
