//! Virtual-time-aware spans with distributed-trace lineage.
//!
//! A [`Span`] brackets a unit of pipeline work (a sweep, a collection
//! interval, a builder request) and records a [`SpanRecord`] into the
//! global registry's ring buffer when it finishes. Timestamps come from
//! the registry's **virtual clock** — the same `monster_sim` time that
//! drives sweeps and query costs — so exported traces line up with
//! simulated activity instead of host wall time.
//!
//! Every span carries a [`TraceContext`]: which trace it belongs to and
//! its own span id, plus an optional parent span id. [`Span::enter`]
//! joins the thread's current context (see [`crate::trace`]) as a child,
//! or starts a fresh root trace when none is installed; [`Span::root`]
//! and [`Span::child_of`] make the choice explicit. Key/value attributes
//! (`SkipReason`, node addresses, attempt counts) ride along on the
//! record.

use crate::global;
use crate::trace::{self, SpanId, TraceContext, TraceId};
use monster_sim::{VDuration, VInstant};

/// A completed span, as stored in the registry's trace ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Operation name (e.g. `redfish.sweep`).
    pub name: String,
    /// Virtual start time.
    pub begin: VInstant,
    /// Virtual end time (`>= begin`).
    pub end: VInstant,
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span id (`None` for a trace root).
    pub parent: Option<SpanId>,
    /// Key/value attributes (`SkipReason`, node, attempts, ...).
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in virtual time.
    pub fn duration(&self) -> VDuration {
        self.end.since(self.begin)
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// An in-flight span. Create one with [`Span::enter`]; it records itself
/// when finished (explicitly, or on drop).
#[derive(Debug)]
pub struct Span {
    name: String,
    begin: VInstant,
    ctx: TraceContext,
    parent: Option<SpanId>,
    attrs: Vec<(String, String)>,
    done: bool,
}

impl Span {
    /// Open a span named `name`, stamped with the registry's current
    /// virtual time. If a trace context is installed on this thread (see
    /// [`trace::set_current`]) the span joins it as a child; otherwise it
    /// starts a fresh root trace.
    pub fn enter(name: impl Into<String>) -> Span {
        match trace::current() {
            Some(parent) => Span::child_of(name, parent),
            None => Span::root(name),
        }
    }

    /// Open a span that starts a fresh trace, ignoring any installed
    /// context.
    pub fn root(name: impl Into<String>) -> Span {
        Span {
            name: name.into(),
            begin: global().vtime(),
            ctx: TraceContext::root(),
            parent: None,
            attrs: Vec::new(),
            done: false,
        }
    }

    /// Open a span as an explicit child of `parent`.
    pub fn child_of(name: impl Into<String>, parent: TraceContext) -> Span {
        Span {
            name: name.into(),
            begin: global().vtime(),
            ctx: parent.child(),
            parent: Some(parent.span),
            attrs: Vec::new(),
            done: false,
        }
    }

    /// Virtual time at which the span was opened.
    pub fn begin(&self) -> VInstant {
        self.begin
    }

    /// This span's context — hand it to children (or serialize it as a
    /// `traceparent` header).
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// Attach a key/value attribute (later values for the same key are
    /// appended, not replaced — records are cheap and append-only).
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.attrs.push((key.into(), value.into()));
    }

    /// Builder-style attribute attachment.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Span {
        self.set_attr(key, value);
        self
    }

    /// Close the span at the registry's current virtual time.
    pub fn finish(mut self) {
        self.record(global().vtime());
    }

    /// Close the span `dur` after it began, advancing the registry's
    /// virtual clock to at least the span's end. This is the common form
    /// for simulated work: the caller knows the simulated elapsed time
    /// (e.g. a `SweepOutcome` makespan) rather than observing it.
    pub fn finish_after(mut self, dur: VDuration) {
        let end = self.begin + dur;
        global().set_vtime(end);
        self.record(end);
    }

    /// Close the span `dur` after it began **without** advancing the
    /// registry clock. Use this for work that overlaps other work in
    /// virtual time (per-request spans inside a sweep run on parallel
    /// channels; summing their durations onto the clock would be wrong).
    pub fn finish_spanning(mut self, dur: VDuration) {
        let end = self.begin + dur;
        self.record(end);
    }

    fn record(&mut self, end: VInstant) {
        if self.done {
            return;
        }
        self.done = true;
        global().record_span(SpanRecord {
            name: std::mem::take(&mut self.name),
            begin: self.begin,
            end: end.max(self.begin),
            trace: self.ctx.trace,
            span: self.ctx.span,
            parent: self.parent,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record(global().vtime());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_after_advances_vclock_and_records() {
        let t0 = global().vtime();
        let span = Span::enter("test.op");
        span.finish_after(VDuration::from_secs(2));
        assert!(global().vtime() >= t0 + VDuration::from_secs(2));
        let spans = global().recent_spans();
        let rec = spans.iter().rev().find(|s| s.name == "test.op").unwrap();
        assert_eq!(rec.duration(), VDuration::from_secs(2));
    }

    #[test]
    fn drop_records_without_double_count() {
        let before = global().recent_spans().len();
        {
            let _span = Span::enter("test.drop");
        }
        let after = global().recent_spans().len();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn enter_joins_installed_context() {
        let root = Span::root("test.parent");
        let root_ctx = root.context();
        let child_ctx = {
            let _g = trace::set_current(root_ctx);
            let child = Span::enter("test.child").with_attr("k", "v");
            let ctx = child.context();
            child.finish();
            ctx
        };
        root.finish();
        assert_eq!(child_ctx.trace, root_ctx.trace);
        let spans = global().recent_spans();
        let child = spans.iter().rev().find(|s| s.name == "test.child").unwrap();
        let parent = spans.iter().rev().find(|s| s.name == "test.parent").unwrap();
        assert_eq!(child.trace, parent.trace);
        assert_eq!(child.parent, Some(parent.span));
        assert_eq!(parent.parent, None);
        assert_eq!(child.attr("k"), Some("v"));
        assert_eq!(child.attr("missing"), None);
    }

    #[test]
    fn enter_without_context_is_a_root() {
        let span = Span::enter("test.rootless");
        assert!(span.context().trace.0 != 0);
        let ctx = span.context();
        span.finish();
        let spans = global().recent_spans();
        let rec = spans.iter().rev().find(|s| s.name == "test.rootless").unwrap();
        assert_eq!(rec.trace, ctx.trace);
        assert_eq!(rec.parent, None);
    }

    #[test]
    fn finish_spanning_does_not_advance_the_clock() {
        let t0 = global().vtime();
        let span = Span::enter("test.spanning");
        span.finish_spanning(VDuration::from_secs(3600));
        // The clock may have been advanced by concurrent tests, but never
        // by the full hour this span covered.
        assert!(global().vtime() < t0 + VDuration::from_secs(3600));
        let spans = global().recent_spans();
        let rec = spans.iter().rev().find(|s| s.name == "test.spanning").unwrap();
        assert_eq!(rec.duration(), VDuration::from_secs(3600));
    }
}
