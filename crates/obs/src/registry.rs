//! The metrics registry: named handles, virtual clock, span ring buffer,
//! and the two export formats (Prometheus-style text, chrome-trace JSON).

use crate::metrics::{Counter, Gauge, Histo, BUCKETS};
use crate::span::SpanRecord;
use monster_json::{jobj, Value};
use monster_sim::VInstant;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum number of completed spans retained for `/debug/trace`.
const SPAN_RING_CAPACITY: usize = 512;

/// A named collection of metrics plus a trace ring buffer and a virtual
/// clock.
///
/// Handles returned by [`counter`](Registry::counter) /
/// [`gauge`](Registry::gauge) / [`histo`](Registry::histo) are `Arc`s:
/// hot call sites should resolve a handle once (e.g. in a `OnceLock`) and
/// then update it lock-free. Metric names are stored in `BTreeMap`s so the
/// text exposition is deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histos: RwLock<BTreeMap<String, Arc<Histo>>>,
    spans: Mutex<VecDeque<SpanRecord>>,
    vclock: AtomicU64,
}

impl Registry {
    /// New empty registry with the virtual clock at
    /// [`VInstant::EPOCH`].
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name.to_string()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(name.to_string()).or_default())
    }

    /// Get or create the histogram named `name`.
    pub fn histo(&self, name: &str) -> Arc<Histo> {
        if let Some(h) = self.histos.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histos.write().entry(name.to_string()).or_default())
    }

    /// Current virtual time.
    pub fn vtime(&self) -> VInstant {
        VInstant::from_nanos(self.vclock.load(Ordering::Relaxed))
    }

    /// Advance the virtual clock to `t`. The clock is monotone: setting an
    /// earlier time than the current one is a no-op, so concurrent stages
    /// can each report their own finish times safely.
    pub fn set_vtime(&self, t: VInstant) {
        self.vclock.fetch_max(t.as_nanos(), Ordering::Relaxed);
    }

    /// Append a completed span to the trace ring buffer (oldest spans are
    /// evicted beyond [`SPAN_RING_CAPACITY`] entries).
    pub fn record_span(&self, record: SpanRecord) {
        let mut spans = self.spans.lock();
        if spans.len() == SPAN_RING_CAPACITY {
            spans.pop_front();
        }
        spans.push_back(record);
    }

    /// Snapshot of the retained spans, oldest first.
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().iter().cloned().collect()
    }

    /// Current value of a counter, or 0 if it has never been touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.read().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Current value of a gauge, or 0 if it has never been touched.
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.gauges.read().get(name).map(|g| g.get()).unwrap_or(0)
    }

    /// Render every metric in Prometheus text exposition format.
    ///
    /// Counters and gauges emit a `# TYPE` line followed by `name value`;
    /// histograms emit cumulative `name_bucket{le="..."}` lines plus
    /// `name_sum` / `name_count`. Output order is lexicographic within
    /// each metric kind, so successive scrapes diff cleanly.
    pub fn text_exposition(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.read().iter() {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {}", c.get());
        }
        for (name, g) in self.gauges.read().iter() {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", g.get());
        }
        for (name, h) in self.histos.read().iter() {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let counts = h.counts();
            let mut cumulative = 0u64;
            for (i, &c) in counts.iter().take(BUCKETS).enumerate() {
                cumulative += c;
                let _ =
                    writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", Histo::upper_bound(i));
            }
            cumulative += counts[BUCKETS];
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}", h.sum_secs());
            let _ = writeln!(out, "{name}_count {cumulative}");
        }
        out
    }

    /// Render the retained spans as a chrome-trace JSON document
    /// (`{"traceEvents": [...]}`, complete `"X"` events, microsecond
    /// virtual timestamps). Load it in `chrome://tracing` or Perfetto.
    pub fn trace_json(&self) -> Value {
        let events: Vec<Value> = self
            .spans
            .lock()
            .iter()
            .map(|s| {
                jobj! {
                    "name" => s.name.as_str(),
                    "ph" => "X",
                    "ts" => (s.begin.as_nanos() / 1_000) as i64,
                    "dur" => (s.duration().as_nanos() / 1_000) as i64,
                    "pid" => 1,
                    "tid" => 1,
                }
            })
            .collect();
        jobj! { "traceEvents" => Value::Array(events) }
    }
}

/// Parse one sample out of a text exposition: returns the value on the
/// line whose metric name (including any `{labels}` part) is exactly
/// `name`. Intended for tests asserting on scraped `/metrics` bodies.
pub fn sample(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().filter(|l| !l.starts_with('#')).find_map(|line| {
        let (metric, value) = line.rsplit_once(' ')?;
        if metric == name {
            value.parse().ok()
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_sim::VDuration;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").inc();
        assert_eq!(r.counter_value("a"), 3);
        r.gauge("g").set(-4);
        assert_eq!(r.gauge_value("g"), -4);
        assert_eq!(r.counter_value("never_touched"), 0);
    }

    #[test]
    fn exposition_format_and_order() {
        let r = Registry::new();
        r.counter("m_b_total").inc();
        r.counter("m_a_total").add(7);
        r.gauge("m_depth").set(3);
        r.histo("m_seconds").observe(1.5e-6);
        let text = r.text_exposition();
        // Lexicographic counter order.
        let a = text.find("m_a_total 7").unwrap();
        let b = text.find("m_b_total 1").unwrap();
        assert!(a < b);
        assert!(text.contains("# TYPE m_a_total counter"));
        assert!(text.contains("# TYPE m_depth gauge\nm_depth 3"));
        assert!(text.contains("# TYPE m_seconds histogram"));
        // Cumulative buckets: the 2 µs bucket already includes the 1.5 µs
        // observation, and +Inf equals the total count.
        assert!(text.contains("m_seconds_bucket{le=\"0.000002\"} 1"));
        assert!(text.contains("m_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("m_seconds_count 1"));
        // The helper reads plain samples back out.
        assert_eq!(sample(&text, "m_a_total"), Some(7.0));
        assert_eq!(sample(&text, "m_depth"), Some(3.0));
        assert_eq!(sample(&text, "m_seconds_count"), Some(1.0));
        assert_eq!(sample(&text, "m_seconds_bucket{le=\"+Inf\"}"), Some(1.0));
        assert_eq!(sample(&text, "nope"), None);
    }

    #[test]
    fn vclock_is_monotone() {
        let r = Registry::new();
        r.set_vtime(VInstant::from_nanos(100));
        r.set_vtime(VInstant::from_nanos(50));
        assert_eq!(r.vtime(), VInstant::from_nanos(100));
    }

    #[test]
    fn span_ring_evicts_oldest() {
        let r = Registry::new();
        for i in 0..(SPAN_RING_CAPACITY + 10) {
            r.record_span(SpanRecord {
                name: format!("s{i}"),
                begin: VInstant::EPOCH,
                end: VInstant::EPOCH + VDuration::from_nanos(i as u64),
            });
        }
        let spans = r.recent_spans();
        assert_eq!(spans.len(), SPAN_RING_CAPACITY);
        assert_eq!(spans[0].name, "s10");
    }

    #[test]
    fn trace_json_shape() {
        let r = Registry::new();
        r.record_span(SpanRecord {
            name: "sweep".into(),
            begin: VInstant::from_nanos(2_000),
            end: VInstant::from_nanos(5_000),
        });
        let v = r.trace_json();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("sweep"));
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("ts").unwrap().as_i64(), Some(2));
        assert_eq!(events[0].get("dur").unwrap().as_i64(), Some(3));
    }
}
