//! The metrics registry: named handles, virtual clock, span ring buffer,
//! and the two export formats (Prometheus-style text, chrome-trace JSON).

use crate::metrics::{Counter, Gauge, Histo, BUCKETS};
use crate::slo::FreshnessTracker;
use crate::span::SpanRecord;
use monster_json::{jobj, Value};
use monster_sim::VInstant;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default number of completed spans retained for `/debug/trace`; tune
/// per-registry with [`Registry::with_span_capacity`] or at runtime with
/// [`Registry::set_span_capacity`].
pub const DEFAULT_SPAN_CAPACITY: usize = 512;

/// A named collection of metrics plus a trace ring buffer, a freshness
/// tracker, and a virtual clock.
///
/// Handles returned by [`counter`](Registry::counter) /
/// [`gauge`](Registry::gauge) / [`histo`](Registry::histo) are `Arc`s:
/// hot call sites should resolve a handle once (e.g. in a `OnceLock`) and
/// then update it lock-free. Metric names are stored in `BTreeMap`s so the
/// text exposition is deterministic.
#[derive(Debug)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histos: RwLock<BTreeMap<String, Arc<Histo>>>,
    helps: RwLock<BTreeMap<String, String>>,
    spans: Mutex<VecDeque<Arc<SpanRecord>>>,
    span_capacity: AtomicUsize,
    spans_dropped: Counter,
    freshness: FreshnessTracker,
    vclock: AtomicU64,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl Registry {
    /// New empty registry with the virtual clock at [`VInstant::EPOCH`]
    /// and the default span ring capacity.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// New empty registry retaining up to `capacity` completed spans
    /// (minimum 1).
    pub fn with_span_capacity(capacity: usize) -> Registry {
        Registry {
            counters: RwLock::default(),
            gauges: RwLock::default(),
            histos: RwLock::default(),
            helps: RwLock::default(),
            spans: Mutex::default(),
            span_capacity: AtomicUsize::new(capacity.max(1)),
            spans_dropped: Counter::new(),
            freshness: FreshnessTracker::new(),
            vclock: AtomicU64::new(0),
        }
    }

    /// Resize the span ring at runtime (minimum 1). Shrinking evicts the
    /// oldest spans immediately; evictions count as drops.
    pub fn set_span_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.span_capacity.store(capacity, Ordering::Relaxed);
        let mut spans = self.spans.lock();
        while spans.len() > capacity {
            spans.pop_front();
            self.spans_dropped.inc();
        }
    }

    /// Current span ring capacity.
    pub fn span_capacity(&self) -> usize {
        self.span_capacity.load(Ordering::Relaxed)
    }

    /// Total spans evicted from the ring before being exported
    /// (`monster_obs_spans_dropped_total`).
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped.get()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name.to_string()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(name.to_string()).or_default())
    }

    /// Get or create the histogram named `name`.
    pub fn histo(&self, name: &str) -> Arc<Histo> {
        if let Some(h) = self.histos.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histos.write().entry(name.to_string()).or_default())
    }

    /// Attach a `# HELP` string to the metric named `name` (first writer
    /// wins; re-registration with a different string is ignored so hot
    /// paths can describe unconditionally).
    pub fn describe(&self, name: &str, help: &str) {
        self.helps.write().entry(name.to_string()).or_insert_with(|| help.to_string());
    }

    /// The freshness SLO tracker backing `/debug/pipeline` and the
    /// `X-Freshness-Lag-Seconds` response header.
    pub fn freshness(&self) -> &FreshnessTracker {
        &self.freshness
    }

    /// Current virtual time.
    pub fn vtime(&self) -> VInstant {
        VInstant::from_nanos(self.vclock.load(Ordering::Relaxed))
    }

    /// Advance the virtual clock to `t`. The clock is monotone: setting an
    /// earlier time than the current one is a no-op, so concurrent stages
    /// can each report their own finish times safely.
    pub fn set_vtime(&self, t: VInstant) {
        self.vclock.fetch_max(t.as_nanos(), Ordering::Relaxed);
    }

    /// Append a completed span to the trace ring buffer. Oldest spans are
    /// evicted beyond the configured capacity and counted in
    /// `monster_obs_spans_dropped_total` so trace loss is visible.
    pub fn record_span(&self, record: SpanRecord) {
        let record = Arc::new(record);
        let capacity = self.span_capacity();
        let mut spans = self.spans.lock();
        while spans.len() >= capacity {
            spans.pop_front();
            self.spans_dropped.inc();
        }
        spans.push_back(record);
    }

    /// Snapshot of the retained spans, oldest first. Clones `Arc`s, not
    /// span payloads, so a `/debug/trace` scrape holds the ring lock for
    /// O(capacity) pointer copies rather than O(total string bytes).
    pub fn recent_spans(&self) -> Vec<Arc<SpanRecord>> {
        let spans = self.spans.lock();
        spans.iter().cloned().collect()
    }

    /// Every registered metric name with its kind (`"counter"`,
    /// `"gauge"`, or `"histogram"`), including the synthetic ring-drop
    /// counter. A name appearing twice means it was registered as two
    /// different kinds — the metrics-name lint fails on that.
    pub fn metric_kinds(&self) -> Vec<(String, &'static str)> {
        let mut out = vec![("monster_obs_spans_dropped_total".to_string(), "counter")];
        out.extend(self.counters.read().keys().map(|n| (n.clone(), "counter")));
        out.extend(self.gauges.read().keys().map(|n| (n.clone(), "gauge")));
        out.extend(self.histos.read().keys().map(|n| (n.clone(), "histogram")));
        out
    }

    /// Current value of a counter, or 0 if it has never been touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        if name == "monster_obs_spans_dropped_total" {
            return self.spans_dropped();
        }
        self.counters.read().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Current value of a gauge, or 0 if it has never been touched.
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.gauges.read().get(name).map(|g| g.get()).unwrap_or(0)
    }

    /// Render every metric in Prometheus/OpenMetrics text exposition.
    ///
    /// Counters and gauges emit `# HELP` (when described) and `# TYPE`
    /// lines followed by `name value`; histograms emit cumulative
    /// `name_bucket{le="..."}` lines plus `name_sum` / `name_count`.
    /// Buckets holding a traced observation append an OpenMetrics
    /// exemplar: `... # {trace_id="...",span_id="..."} value`. Output
    /// order is lexicographic within each metric kind, so successive
    /// scrapes diff cleanly.
    pub fn text_exposition(&self) -> String {
        let helps = self.helps.read();
        let help_line = |out: &mut String, name: &str| {
            if let Some(help) = helps.get(name) {
                let _ = writeln!(out, "# HELP {name} {help}");
            }
        };
        let mut out = String::new();
        help_line(&mut out, "monster_obs_spans_dropped_total");
        let _ = writeln!(
            out,
            "# TYPE monster_obs_spans_dropped_total counter\nmonster_obs_spans_dropped_total {}",
            self.spans_dropped()
        );
        for (name, c) in self.counters.read().iter() {
            help_line(&mut out, name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {}", c.get());
        }
        for (name, g) in self.gauges.read().iter() {
            help_line(&mut out, name);
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", g.get());
        }
        for (name, h) in self.histos.read().iter() {
            help_line(&mut out, name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let counts = h.counts();
            let exemplars = h.exemplars();
            let mut cumulative = 0u64;
            for (i, &c) in counts.iter().take(BUCKETS).enumerate() {
                cumulative += c;
                let _ =
                    write!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", Histo::upper_bound(i));
                if let Some(ex) = &exemplars[i] {
                    let _ = write!(
                        out,
                        " # {{trace_id=\"{}\",span_id=\"{}\"}} {}",
                        ex.trace,
                        ex.span,
                        ex.value_secs()
                    );
                }
                out.push('\n');
            }
            cumulative += counts[BUCKETS];
            let _ = write!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            if let Some(ex) = &exemplars[BUCKETS] {
                let _ = write!(
                    out,
                    " # {{trace_id=\"{}\",span_id=\"{}\"}} {}",
                    ex.trace,
                    ex.span,
                    ex.value_secs()
                );
            }
            out.push('\n');
            let _ = writeln!(out, "{name}_sum {}", h.sum_secs());
            let _ = writeln!(out, "{name}_count {cumulative}");
        }
        out
    }

    /// Render the retained spans as a chrome-trace JSON document
    /// (`{"traceEvents": [...]}`, complete `"X"` events, microsecond
    /// virtual timestamps). Trace lineage and attributes ride in each
    /// event's `args`. Load it in `chrome://tracing` or Perfetto.
    pub fn trace_json(&self) -> Value {
        self.trace_json_filtered(None)
    }

    /// [`Registry::trace_json`], optionally restricted to the spans of a
    /// single trace — the `GET /debug/trace?trace_id=<id>` drill-down from
    /// a flight-recorder record to its spans.
    pub fn trace_json_filtered(&self, trace: Option<crate::TraceId>) -> Value {
        let events: Vec<Value> = self
            .recent_spans()
            .iter()
            .filter(|s| trace.is_none_or(|t| s.trace == t))
            .map(|s| {
                let mut args = monster_json::Object::new();
                args.insert("trace_id", Value::Str(s.trace.to_string()));
                args.insert("span_id", Value::Str(s.span.to_string()));
                if let Some(parent) = s.parent {
                    args.insert("parent_span_id", Value::Str(parent.to_string()));
                }
                for (k, v) in &s.attrs {
                    args.insert(k, Value::Str(v.clone()));
                }
                jobj! {
                    "name" => s.name.as_str(),
                    "ph" => "X",
                    "ts" => (s.begin.as_nanos() / 1_000) as i64,
                    "dur" => (s.duration().as_nanos() / 1_000) as i64,
                    "pid" => 1,
                    "tid" => 1,
                    "args" => Value::Object(args),
                }
            })
            .collect();
        jobj! { "traceEvents" => Value::Array(events) }
    }
}

/// Parse one sample out of a text exposition: returns the value on the
/// line whose metric name (including any `{labels}` part) is exactly
/// `name`. OpenMetrics exemplar suffixes (`... # {...} value`) are
/// ignored. Intended for tests asserting on scraped `/metrics` bodies.
pub fn sample(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().filter(|l| !l.starts_with('#')).find_map(|line| {
        let line = line.split(" # ").next()?;
        let (metric, value) = line.rsplit_once(' ')?;
        if metric == name {
            value.parse().ok()
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceContext;
    use monster_sim::VDuration;

    fn rec(name: &str, begin: VInstant, end: VInstant) -> SpanRecord {
        let ctx = TraceContext::root();
        SpanRecord {
            name: name.into(),
            begin,
            end,
            trace: ctx.trace,
            span: ctx.span,
            parent: None,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").inc();
        assert_eq!(r.counter_value("a"), 3);
        r.gauge("g").set(-4);
        assert_eq!(r.gauge_value("g"), -4);
        assert_eq!(r.counter_value("never_touched"), 0);
    }

    #[test]
    fn exposition_format_and_order() {
        let r = Registry::new();
        r.counter("m_b_total").inc();
        r.counter("m_a_total").add(7);
        r.gauge("m_depth").set(3);
        r.histo("m_seconds").observe(1.5e-6);
        r.describe("m_a_total", "events of kind a");
        r.describe("m_a_total", "ignored re-registration");
        let text = r.text_exposition();
        // Lexicographic counter order.
        let a = text.find("m_a_total 7").unwrap();
        let b = text.find("m_b_total 1").unwrap();
        assert!(a < b);
        assert!(text.contains("# HELP m_a_total events of kind a"));
        assert!(!text.contains("ignored re-registration"));
        assert!(text.contains("# TYPE m_a_total counter"));
        assert!(text.contains("# TYPE m_depth gauge\nm_depth 3"));
        assert!(text.contains("# TYPE m_seconds histogram"));
        // The ring-drop counter is always exported.
        assert!(text.contains("# TYPE monster_obs_spans_dropped_total counter"));
        // Cumulative buckets: the 2 µs bucket already includes the 1.5 µs
        // observation, and +Inf equals the total count.
        assert!(text.contains("m_seconds_bucket{le=\"0.000002\"} 1"));
        assert!(text.contains("m_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("m_seconds_count 1"));
        // The helper reads plain samples back out.
        assert_eq!(sample(&text, "m_a_total"), Some(7.0));
        assert_eq!(sample(&text, "m_depth"), Some(3.0));
        assert_eq!(sample(&text, "m_seconds_count"), Some(1.0));
        assert_eq!(sample(&text, "m_seconds_bucket{le=\"+Inf\"}"), Some(1.0));
        assert_eq!(sample(&text, "nope"), None);
    }

    #[test]
    fn exposition_exemplars_parse_back_out() {
        let r = Registry::new();
        let ctx = TraceContext::root();
        r.histo("ex_seconds").observe_traced(0.5, Some(ctx));
        let text = r.text_exposition();
        let line = text
            .lines()
            .find(|l| l.starts_with("ex_seconds_bucket") && l.contains(" # "))
            .expect("exemplar line present");
        assert!(line.contains(&format!("trace_id=\"{}\"", ctx.trace)), "line: {line}");
        assert!(line.contains(&format!("span_id=\"{}\"", ctx.span)));
        assert!(line.ends_with(" 0.5"));
        // sample() ignores the exemplar suffix.
        let bucket = line.split(' ').next().unwrap();
        assert_eq!(sample(&text, bucket), Some(1.0));
    }

    #[test]
    fn vclock_is_monotone() {
        let r = Registry::new();
        r.set_vtime(VInstant::from_nanos(100));
        r.set_vtime(VInstant::from_nanos(50));
        assert_eq!(r.vtime(), VInstant::from_nanos(100));
    }

    #[test]
    fn span_ring_evicts_oldest_and_counts_drops() {
        let r = Registry::with_span_capacity(32);
        assert_eq!(r.span_capacity(), 32);
        for i in 0..42 {
            r.record_span(rec(
                &format!("s{i}"),
                VInstant::EPOCH,
                VInstant::EPOCH + VDuration::from_nanos(i as u64),
            ));
        }
        let spans = r.recent_spans();
        assert_eq!(spans.len(), 32);
        assert_eq!(spans[0].name, "s10");
        assert_eq!(r.spans_dropped(), 10);
        assert_eq!(r.counter_value("monster_obs_spans_dropped_total"), 10);

        // Shrinking trims immediately and counts the evictions.
        r.set_span_capacity(8);
        assert_eq!(r.recent_spans().len(), 8);
        assert_eq!(r.spans_dropped(), 34);

        // Growing allows the ring to fill further.
        r.set_span_capacity(64);
        for i in 0..40 {
            r.record_span(rec(&format!("t{i}"), VInstant::EPOCH, VInstant::EPOCH));
        }
        assert_eq!(r.recent_spans().len(), 48);
        assert_eq!(r.spans_dropped(), 34);
    }

    #[test]
    fn scrape_does_not_stall_writers() {
        // A /debug/trace snapshot while record_span runs from other
        // threads: everything lands, nothing deadlocks, and snapshots
        // are cheap Arc clones.
        let r = Registry::with_span_capacity(256);
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..500 {
                        r.record_span(rec(&format!("w{t}.{i}"), VInstant::EPOCH, VInstant::EPOCH));
                    }
                });
            }
            let r = &r;
            s.spawn(move || {
                for _ in 0..200 {
                    let snap = r.recent_spans();
                    assert!(snap.len() <= 256);
                    let _ = r.trace_json();
                }
            });
        });
        assert_eq!(r.recent_spans().len(), 256);
        assert_eq!(r.spans_dropped(), 4 * 500 - 256);
    }

    #[test]
    fn trace_json_shape() {
        let r = Registry::new();
        let mut record = rec("sweep", VInstant::from_nanos(2_000), VInstant::from_nanos(5_000));
        record.attrs.push(("SkipReason".into(), "BreakerOpen".into()));
        let expected_trace = record.trace.to_string();
        r.record_span(record);
        let v = r.trace_json();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("sweep"));
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("ts").unwrap().as_i64(), Some(2));
        assert_eq!(events[0].get("dur").unwrap().as_i64(), Some(3));
        let args = events[0].get("args").unwrap();
        assert_eq!(args.get("trace_id").unwrap().as_str(), Some(expected_trace.as_str()));
        assert_eq!(args.get("SkipReason").unwrap().as_str(), Some("BreakerOpen"));
        assert!(args.get("parent_span_id").is_none());
    }

    #[test]
    fn trace_json_filters_to_one_trace() {
        let r = Registry::new();
        let a = rec("api", VInstant::from_nanos(1_000), VInstant::from_nanos(2_000));
        let wanted = a.trace;
        let mut a2 = rec("execute", VInstant::from_nanos(2_000), VInstant::from_nanos(3_000));
        a2.trace = wanted;
        r.record_span(a);
        r.record_span(a2);
        r.record_span(rec("other", VInstant::from_nanos(1_000), VInstant::from_nanos(9_000)));

        let all = r.trace_json();
        assert_eq!(all.get("traceEvents").unwrap().as_array().unwrap().len(), 3);

        let one = r.trace_json_filtered(Some(wanted));
        let events = one.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2, "only the requested trace's spans survive");
        let hex = wanted.to_string();
        for ev in events {
            assert_eq!(
                ev.get("args").unwrap().get("trace_id").unwrap().as_str(),
                Some(hex.as_str())
            );
        }

        let none = r.trace_json_filtered(Some(crate::TraceId(0xdead)));
        assert!(none.get("traceEvents").unwrap().as_array().unwrap().is_empty());
    }
}
