//! `monster-obs` — self-monitoring for the monitor.
//!
//! MonSTer observes an HPC cluster; this crate observes MonSTer. It is a
//! dependency-light metrics and tracing layer threaded through the four
//! pipeline stages (Redfish client, collector, TSDB, scheduler) and
//! exported by the Metrics Builder service at `GET /metrics`
//! (Prometheus-style text) and `GET /debug/trace` (chrome-trace JSON).
//!
//! Three primitives, all lock-free on the update path:
//!
//! * [`Counter`] — monotone event counts (requests, retries, points
//!   written);
//! * [`Gauge`] — instantaneous values (pending queue depth, live series);
//! * [`Histo`] — latency distributions over fixed power-of-two buckets
//!   (per-request sweep latency, write-batch latency, query cost).
//!
//! Plus virtual-time-aware [`Span`]s: the registry carries a monotone
//! virtual clock (nanoseconds of `monster_sim` time), and spans stamp
//! their begin/end against it, so a trace of a simulated day lines up
//! with the simulated sweeps rather than host wall time.
//!
//! Since PR 5 the spans form a **distributed trace**: every span carries
//! a [`TraceId`]/[`SpanId`] pair with parent links (see [`trace`]),
//! propagated in-process via a thread-local [`TraceContext`] and over
//! HTTP as W3C `traceparent` headers. Histograms can park per-bucket
//! [`Exemplar`]s linking a latency bucket to the trace that produced it,
//! and the registry hosts a [`FreshnessTracker`] that turns per-series
//! last-good-ingest watermarks into staleness percentiles, SLO
//! attainment, and burn rates for `GET /debug/pipeline`.
//!
//! # Quick use
//!
//! ```
//! use monster_obs as obs;
//! use monster_sim::VDuration;
//!
//! // Hot path: resolve once, update lock-free.
//! let sweeps = obs::counter("doc_sweeps_total");
//! let latency = obs::histo("doc_sweep_seconds");
//! sweeps.inc();
//! latency.observe(4.2);
//!
//! // Bracket simulated work with a span.
//! let span = obs::Span::enter("doc.sweep");
//! span.finish_after(VDuration::from_secs(52));
//!
//! let text = obs::global().text_exposition();
//! assert_eq!(obs::sample(&text, "doc_sweeps_total"), Some(1.0));
//! ```

#![warn(missing_docs)]

mod metrics;
mod registry;
mod slo;
mod span;
pub mod trace;

pub use metrics::{Counter, Exemplar, Gauge, Histo, BUCKETS};
pub use registry::{sample, Registry, DEFAULT_SPAN_CAPACITY};
pub use slo::{percentile, FreshnessTracker, SloConfig};
pub use span::{Span, SpanRecord};
pub use trace::{SpanId, TraceContext, TraceId};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry that instrumented pipeline stages report to
/// and that `/metrics` / `/debug/trace` export.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Get or create a counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get or create a gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get or create a histogram in the global registry.
pub fn histo(name: &str) -> Arc<Histo> {
    global().histo(name)
}

/// Get or create a counter in the global registry, attaching a `# HELP`
/// string for the text exposition.
pub fn counter_help(name: &str, help: &str) -> Arc<Counter> {
    global().describe(name, help);
    global().counter(name)
}

/// Get or create a gauge in the global registry, attaching a `# HELP`
/// string for the text exposition.
pub fn gauge_help(name: &str, help: &str) -> Arc<Gauge> {
    global().describe(name, help);
    global().gauge(name)
}

/// Get or create a histogram in the global registry, attaching a `# HELP`
/// string for the text exposition.
pub fn histo_help(name: &str, help: &str) -> Arc<Histo> {
    global().describe(name, help);
    global().histo(name)
}

/// The global registry's freshness SLO tracker (watermarks, attainment,
/// burn rates).
pub fn freshness() -> &'static FreshnessTracker {
    global().freshness()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::thread;

    /// N threads hammering the same counter and histogram: totals must be
    /// exact — the registry loses no updates under contention.
    #[test]
    fn concurrent_registry_is_exact() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 5_000;
        let r = Registry::new();
        thread::scope(|s| {
            for t in 0..THREADS {
                let r = &r;
                s.spawn(move || {
                    let c = r.counter("hammer_total");
                    let h = r.histo("hammer_seconds");
                    let g = r.gauge("hammer_depth");
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.observe(1e-6 * (t * PER_THREAD + i) as f64);
                        g.add(1);
                        g.sub(1);
                    }
                });
            }
        });
        let total = (THREADS * PER_THREAD) as u64;
        assert_eq!(r.counter_value("hammer_total"), total);
        let h = r.histo("hammer_seconds");
        assert_eq!(h.count(), total);
        assert_eq!(h.counts().iter().sum::<u64>(), total);
        assert_eq!(r.gauge_value("hammer_depth"), 0);
    }

    #[test]
    fn global_handles_alias_one_registry() {
        counter("lib_alias_total").add(5);
        assert_eq!(global().counter_value("lib_alias_total"), 5);
        gauge("lib_alias_gauge").set(2);
        histo("lib_alias_seconds").observe(0.25);
        let text = global().text_exposition();
        assert_eq!(sample(&text, "lib_alias_total"), Some(5.0));
        assert_eq!(sample(&text, "lib_alias_gauge"), Some(2.0));
        assert_eq!(sample(&text, "lib_alias_seconds_count"), Some(1.0));
    }

    proptest! {
        /// Bucket counts always sum to the number of *finite* observations,
        /// whatever mix of magnitudes, signs, NaNs and infinities arrives.
        #[test]
        fn histo_buckets_sum_to_finite_observations(
            xs in proptest::collection::vec(
                prop_oneof![
                    any::<f64>(),
                    Just(f64::NAN),
                    Just(f64::INFINITY),
                    Just(f64::NEG_INFINITY),
                    -1e-3..1e3f64,
                ],
                0..200,
            )
        ) {
            let h = Histo::new();
            let finite = xs.iter().filter(|x| x.is_finite()).count() as u64;
            for x in xs {
                h.observe(x);
            }
            prop_assert_eq!(h.count(), finite);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), finite);
        }
    }
}
