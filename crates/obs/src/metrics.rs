//! Atomic metric primitives: [`Counter`], [`Gauge`], and [`Histo`].
//!
//! All three are lock-free and cheap under contention: a handful of
//! `Relaxed` atomic operations per update, no allocation, no locking.
//! They are shared via `Arc` handles obtained from a
//! [`Registry`](crate::Registry), so hot call sites can cache the handle
//! in a `OnceLock` and pay only the atomic update per event.

use crate::trace::{SpanId, TraceContext, TraceId};
use monster_sim::VDuration;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter starting at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depth, live series count, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtract a delta.
    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets. Bucket `i` covers observations in
/// `(bound(i-1), bound(i)]` seconds with `bound(i) = 1 µs × 2^i`; a final
/// overflow bucket catches everything above `bound(BUCKETS - 1)` (≈ 9.5 h).
pub const BUCKETS: usize = 36;

/// A trace reference attached to one histogram bucket: the most recent
/// traced observation that landed there. Exported in OpenMetrics exemplar
/// syntax (`... # {trace_id="...",span_id="..."} value`) so a dashboard
/// can jump from a suspicious latency bucket straight to the trace that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value, in nanoseconds (kept integral so the type stays
    /// `Eq`; render with [`Exemplar::value_secs`]).
    pub value_nanos: u64,
    /// Trace the observation belonged to.
    pub trace: TraceId,
    /// Span the observation belonged to.
    pub span: SpanId,
}

impl Exemplar {
    /// The observed value in seconds.
    pub fn value_secs(&self) -> f64 {
        self.value_nanos as f64 / 1e9
    }
}

/// A latency histogram with fixed log-scale (power-of-two) buckets.
///
/// The bucket layout is identical for every `Histo`, which keeps
/// [`observe`](Histo::observe) allocation-free and makes histograms from
/// different processes mergeable. Observations are in **seconds**;
/// non-finite values are ignored (the invariant tested by the crate's
/// proptest: bucket counts always sum to the number of *finite*
/// observations).
///
/// Observations made through [`observe_traced`](Histo::observe_traced)
/// with a live [`TraceContext`] additionally park an [`Exemplar`] on the
/// bucket they land in; plain [`observe`](Histo::observe) stays lock-free.
#[derive(Debug)]
pub struct Histo {
    counts: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    exemplars: Mutex<[Option<Exemplar>; BUCKETS + 1]>,
}

impl Default for Histo {
    fn default() -> Histo {
        Histo::new()
    }
}

impl Histo {
    /// New empty histogram.
    pub fn new() -> Histo {
        Histo {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            exemplars: Mutex::new([None; BUCKETS + 1]),
        }
    }

    /// Upper bound (inclusive, in seconds) of finite bucket `i`.
    ///
    /// # Panics
    /// If `i >= BUCKETS`.
    pub fn upper_bound(i: usize) -> f64 {
        assert!(i < BUCKETS, "bucket index {i} out of range");
        1e-6 * (1u64 << i) as f64
    }

    fn bucket_index(secs: f64) -> usize {
        for i in 0..BUCKETS {
            if secs <= Self::upper_bound(i) {
                return i;
            }
        }
        BUCKETS
    }

    /// Record one observation of `secs` seconds. NaN and infinite values
    /// are skipped; negative values clamp to zero (the smallest bucket).
    pub fn observe(&self, secs: f64) {
        if !secs.is_finite() {
            return;
        }
        let secs = secs.max(0.0);
        self.counts[Self::bucket_index(secs)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
    }

    /// Record a simulated duration (convenience for vtime call sites).
    pub fn observe_vdur(&self, d: VDuration) {
        self.observe(d.as_secs_f64());
    }

    /// Record one observation and, when `ctx` is present, park an
    /// [`Exemplar`] on the bucket the observation lands in (overwriting
    /// any previous one — each bucket keeps its most recent trace ref).
    pub fn observe_traced(&self, secs: f64, ctx: Option<TraceContext>) {
        self.observe(secs);
        if !secs.is_finite() {
            return;
        }
        if let Some(ctx) = ctx {
            let secs = secs.max(0.0);
            let slot = Self::bucket_index(secs);
            self.exemplars.lock()[slot] = Some(Exemplar {
                value_nanos: (secs * 1e9) as u64,
                trace: ctx.trace,
                span: ctx.span,
            });
        }
    }

    /// Record a simulated duration with an optional trace exemplar.
    pub fn observe_vdur_traced(&self, d: VDuration, ctx: Option<TraceContext>) {
        self.observe_traced(d.as_secs_f64(), ctx);
    }

    /// Snapshot of the per-bucket exemplars (length `BUCKETS + 1`,
    /// parallel to [`counts`](Histo::counts)).
    pub fn exemplars(&self) -> Vec<Option<Exemplar>> {
        self.exemplars.lock().to_vec()
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations, in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Mean observation in seconds, or `None` if empty.
    pub fn mean_secs(&self) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            None
        } else {
            Some(self.sum_secs() / n as f64)
        }
    }

    /// Snapshot of the per-bucket counts (length `BUCKETS + 1`; the last
    /// entry is the overflow bucket).
    pub fn counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn histo_bucket_layout() {
        assert_eq!(Histo::upper_bound(0), 1e-6);
        assert_eq!(Histo::upper_bound(1), 2e-6);
        // ~9.5 hours at the top of the finite range.
        assert!(Histo::upper_bound(BUCKETS - 1) > 30_000.0);

        let h = Histo::new();
        h.observe(0.5e-6); // bucket 0
        h.observe(1e-6); // bucket 0 (inclusive upper bound)
        h.observe(1.5e-6); // bucket 1
        h.observe(-3.0); // clamps into bucket 0
        h.observe(1e9); // overflow
        let counts = h.counts();
        assert_eq!(counts[0], 3);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[BUCKETS], 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histo_skips_non_finite() {
        let h = Histo::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        assert!(h.counts().iter().all(|&c| c == 0));
        assert_eq!(h.mean_secs(), None);
    }

    #[test]
    fn histo_sum_and_mean() {
        let h = Histo::new();
        h.observe(1.0);
        h.observe(3.0);
        assert!((h.sum_secs() - 4.0).abs() < 1e-9);
        assert!((h.mean_secs().unwrap() - 2.0).abs() < 1e-9);
        h.observe_vdur(VDuration::from_millis(500));
        assert!((h.sum_secs() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn exemplars_park_on_the_observed_bucket() {
        let h = Histo::new();
        // Untraced observations never set an exemplar.
        h.observe(0.5);
        assert!(h.exemplars().iter().all(|e| e.is_none()));

        let ctx = TraceContext::root();
        h.observe_traced(0.5, Some(ctx));
        let slot = (0..BUCKETS)
            .find(|&i| 0.5 <= Histo::upper_bound(i))
            .expect("0.5s fits a finite bucket");
        let ex = h.exemplars()[slot].expect("exemplar parked");
        assert_eq!(ex.trace, ctx.trace);
        assert_eq!(ex.span, ctx.span);
        assert!((ex.value_secs() - 0.5).abs() < 1e-9);

        // A later traced observation in the same bucket overwrites.
        let ctx2 = TraceContext::root();
        h.observe_traced(0.4, Some(ctx2));
        assert_eq!(h.exemplars()[slot].unwrap().trace, ctx2.trace);

        // Non-finite traced observations are skipped entirely.
        h.observe_traced(f64::NAN, Some(ctx2));
        assert_eq!(h.count(), 3);
    }
}
