//! `monster-builder` — the Metrics Builder (§II-C).
//!
//! The middleware between API consumers and the TSDB: it expands a
//! consumer request into per-node, per-measurement queries
//! ([`build_plan`]), executes them sequentially or concurrently
//! ([`exec::execute`], §IV-B3), reroutes coarse queries to maintained
//! roll-ups ([`rollup::reroute`]), marshals the results into a JSON
//! document, and encodes the response with optional compression
//! ([`encode_response`], §IV-B4). [`service::router`] exposes the whole
//! pipeline over HTTP, including the self-monitoring endpoints
//! `GET /metrics` and `GET /debug/trace` backed by `monster_obs`.
//!
//! Execution is instrumented end to end: request/query/point counters,
//! simulated query-latency histograms, cache hit/miss counters, and
//! vtime-stamped spans all land in the `monster_obs` global registry.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod exec;
pub mod flight;
pub mod materializer;
pub mod plan;
pub mod qlog;
pub mod response;
pub mod rollup;
pub mod service;

pub use admission::{Admission, AdmissionConfig, AdmissionController};
pub use cache::{ResponseCache, Validity, ValiditySnapshot};
pub use exec::{execute, BuilderOutcome, ExecMode};
pub use flight::{FlightGroup, Join};
pub use materializer::{Materializer, RollupSpec};
pub use plan::{build_plan, estimate_plan_cost, BuilderRequest, PlannedQuery, QueryGroup};
pub use qlog::{Disposition, QueryRecorder, RecordFilter, RequestRecord};
pub use response::{encode_response, EncodedResponse};
pub use rollup::RollupRoute;
