//! A small versioned response cache for the API service.
//!
//! Entries are keyed by the full request (range, window, aggregation,
//! compression) and stamped with the database's write-batch count at
//! build time; any subsequent write invalidates every cached response, so
//! consumers never see stale data after a collection interval lands.
//!
//! Eviction is LRU: every hit stamps the entry with a monotonic tick, and
//! a full cache evicts the least-recently-used entry — after first
//! purging entries whose stamped version no longer matches (stale entries
//! can never be served again, so they are the cheapest victims). Lookups
//! that find a stale entry drop it eagerly instead of letting it squat in
//! the map until capacity pressure.

use monster_http::Response;
use parking_lot::Mutex;
use std::collections::HashMap;

struct Entry {
    version: u64,
    last_used: u64,
    response: Response,
}

struct Inner {
    tick: u64,
    entries: HashMap<String, Entry>,
}

/// Versioned store of pre-built HTTP responses with LRU eviction.
pub struct ResponseCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses (0 disables caching).
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache { capacity, inner: Mutex::new(Inner { tick: 0, entries: HashMap::new() }) }
    }

    /// Fetch a response cached for `key` at data version `version`. A hit
    /// refreshes the entry's recency; a stale entry (older version) is
    /// removed on the spot.
    pub fn get(&self, key: &str, version: u64) -> Option<Response> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(e) if e.version == version => {
                e.last_used = tick;
                let resp = e.response.clone();
                drop(inner);
                monster_obs::counter("monster_builder_cache_hits_total").inc();
                Some(resp)
            }
            Some(_) => {
                // Stale: a write already invalidated it; free the slot now.
                inner.entries.remove(key);
                drop(inner);
                monster_obs::counter("monster_builder_cache_misses_total").inc();
                None
            }
            None => {
                drop(inner);
                monster_obs::counter("monster_builder_cache_misses_total").inc();
                None
            }
        }
    }

    /// Store a response for `key` at data version `version`.
    pub fn put(&self, key: &str, version: u64, response: Response) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(key) {
            // Stale versions can never be served again — purge them first.
            inner.entries.retain(|_, e| e.version == version);
            // Still full: evict the least-recently-used survivor.
            while inner.entries.len() >= self.capacity {
                let victim = inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty map has a minimum");
                inner.entries.remove(&victim);
                monster_obs::counter("monster_builder_cache_evictions_total").inc();
            }
        }
        inner.entries.insert(key.to_string(), Entry { version, last_used: tick, response });
    }

    /// Number of cached entries (test instrumentation).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_http::{Response, Status};

    fn resp(body: &str) -> Response {
        Response::bytes(body.as_bytes().to_vec(), "text/plain")
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let cache = ResponseCache::new(4);
        assert!(cache.get("k", 1).is_none());
        cache.put("k", 1, resp("a"));
        let hit = cache.get("k", 1).unwrap();
        assert_eq!(hit.status, Status::OK);
        assert_eq!(hit.body, b"a");
        // Same key, newer data version: stale entry is not served.
        assert!(cache.get("k", 2).is_none());
        cache.put("k", 2, resp("b"));
        assert_eq!(cache.get("k", 2).unwrap().body, b"b");
    }

    #[test]
    fn capacity_bounds_entries() {
        let cache = ResponseCache::new(2);
        cache.put("a", 1, resp("a"));
        cache.put("b", 1, resp("b"));
        cache.put("c", 1, resp("c"));
        assert!(cache.get("c", 1).is_some());
        assert_eq!(cache.len(), 2);
        let zero = ResponseCache::new(0);
        zero.put("a", 1, resp("a"));
        assert!(zero.get("a", 1).is_none());
    }

    #[test]
    fn eviction_is_lru_not_arbitrary() {
        let cache = ResponseCache::new(3);
        cache.put("a", 1, resp("a"));
        cache.put("b", 1, resp("b"));
        cache.put("c", 1, resp("c"));
        // Touch "a" and "c": "b" becomes the least recently used.
        assert!(cache.get("a", 1).is_some());
        assert!(cache.get("c", 1).is_some());
        cache.put("d", 1, resp("d"));
        assert!(cache.get("b", 1).is_none(), "LRU victim should be b");
        assert!(cache.get("a", 1).is_some());
        assert!(cache.get("c", 1).is_some());
        assert!(cache.get("d", 1).is_some());
    }

    #[test]
    fn stale_versions_are_purged_before_live_entries() {
        let cache = ResponseCache::new(3);
        cache.put("old1", 1, resp("x"));
        cache.put("old2", 1, resp("y"));
        cache.put("live", 2, resp("z"));
        // Full cache, new key at version 2: the two stale v1 entries go,
        // the live v2 entry survives even though it is not the newest.
        cache.put("new", 2, resp("w"));
        assert!(cache.get("live", 2).is_some());
        assert!(cache.get("new", 2).is_some());
        assert!(cache.get("old1", 1).is_none());
        assert!(cache.get("old2", 1).is_none());
    }

    #[test]
    fn stale_entries_are_dropped_eagerly_on_lookup() {
        let cache = ResponseCache::new(4);
        cache.put("k", 1, resp("a"));
        assert_eq!(cache.len(), 1);
        // The version moved on; the lookup itself frees the slot.
        assert!(cache.get("k", 2).is_none());
        assert_eq!(cache.len(), 0);
    }
}
