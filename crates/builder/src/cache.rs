//! Watermark-validity response cache.
//!
//! Dashboards are *repeated* queries over sliding windows, so the cache is
//! where a serving tier lives or dies. The first-generation cache stamped
//! every entry with the database's global write-batch count — any write
//! anywhere invalidated everything, so under a 60 s collection cadence the
//! hit rate was effectively zero. This version derives validity from the
//! per-measurement ingest watermarks the TSDB now tracks
//! ([`monster_tsdb::MeasurementMark`]):
//!
//! * an entry records, per measurement its plan touched, the mark observed
//!   *before* execution, plus the query's exclusive `end` bound;
//! * on probe, a measurement whose mark is unchanged proves nothing moved;
//! * if the mark advanced but only by in-order appends (`backfills`
//!   unchanged) and the entry's window was already **closed** (`end <=
//!   max_ts` at build time), the entry is still byte-valid — new points
//!   land strictly above the old watermark, outside `[start, end)`. Closed
//!   historical windows therefore never expire;
//! * any backfill, retention pass, or measurement drop invalidates.
//!
//! Bodies are shared: entries hold `Arc<Response>` and the response body
//! itself is a shared [`monster_http::Body`], so serving a hit clones a
//! reference count and a small header map — never the payload.
//!
//! Deterministic request rejections (unparsable parameters) are cached
//! too, with [`Validity::Always`] — the negative cache. They depend on no
//! data, only on the URL, and are capacity-bounded like everything else.

use crate::qlog::CacheVerdict;
use monster_http::Response;
use monster_tsdb::{Db, MeasurementMark};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The watermark state a cached entry was built against: one mark per
/// measurement the plan touched, the query's exclusive `end` bound, and
/// the database's retention epoch.
#[derive(Debug, Clone)]
pub struct ValiditySnapshot {
    retention_epoch: u64,
    end: i64,
    marks: Vec<(String, MeasurementMark)>,
}

impl ValiditySnapshot {
    /// Snapshot the current marks for `measurements` (deduplicated) and
    /// the window's exclusive `end`. Must be taken **before** the query
    /// executes: a write racing the execution then at worst invalidates a
    /// correct entry, never validates a stale one.
    pub fn capture<'m>(
        db: &Db,
        measurements: impl IntoIterator<Item = &'m str>,
        end: i64,
    ) -> ValiditySnapshot {
        let mut marks: Vec<(String, MeasurementMark)> = Vec::new();
        for m in measurements {
            if marks.iter().any(|(name, _)| name == m) {
                continue;
            }
            marks.push((m.to_string(), db.measurement_mark(m)));
        }
        ValiditySnapshot { retention_epoch: db.retention_epoch(), end, marks }
    }

    /// Is an entry built against this snapshot still byte-valid?
    pub fn still_valid(&self, db: &Db) -> bool {
        if db.retention_epoch() != self.retention_epoch {
            return false;
        }
        for (measurement, stamp) in &self.marks {
            let cur = db.measurement_mark(measurement);
            if cur == *stamp {
                continue;
            }
            if cur.backfills != stamp.backfills {
                return false;
            }
            // Closed window: everything since the snapshot was an in-order
            // append at a timestamp strictly above `stamp.max_ts >= end`,
            // outside this entry's half-open range.
            if self.end <= stamp.max_ts {
                continue;
            }
            return false;
        }
        true
    }
}

/// How long a cache entry stays servable.
#[derive(Debug, Clone)]
pub enum Validity {
    /// Forever (deterministic, data-independent responses — the negative
    /// cache for known-invalid requests). Bounded only by LRU capacity.
    Always,
    /// Until the watermark snapshot stops validating.
    Watermarks(ValiditySnapshot),
}

#[derive(Debug)]
struct Entry {
    validity: Validity,
    last_used: u64,
    response: Arc<Response>,
}

#[derive(Default)]
struct Inner {
    /// Monotonic use counter backing LRU ordering.
    tick: u64,
    entries: HashMap<String, Entry>,
}

/// A capacity-bounded LRU response cache with watermark validity. All
/// methods take `&self` (interior mutex); hits are clone-free on the body.
pub struct ResponseCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: Arc<monster_obs::Counter>,
    misses: Arc<monster_obs::Counter>,
    evictions: Arc<monster_obs::Counter>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: monster_obs::counter_help(
                "monster_builder_cache_hits_total",
                "Requests served from the response cache without executing.",
            ),
            misses: monster_obs::counter_help(
                "monster_builder_cache_misses_total",
                "Cache probes that found no still-valid entry.",
            ),
            evictions: monster_obs::counter_help(
                "monster_builder_cache_evictions_total",
                "Response-cache entries evicted (LRU pressure or staleness).",
            ),
        }
    }

    /// Look up `key`, validating the entry's watermark snapshot against
    /// `db`. Invalid entries are dropped eagerly. A hit shares the stored
    /// response — no body bytes are copied.
    pub fn get(&self, key: &str, db: &Db) -> Option<Arc<Response>> {
        self.probe(key, db).0
    }

    /// [`ResponseCache::get`] plus *why*: the [`CacheVerdict`] the flight
    /// recorder and `?explain=true` report. The response is `Some` exactly
    /// for [`CacheVerdict::Valid`] and [`CacheVerdict::Negative`].
    pub fn probe(&self, key: &str, db: &Db) -> (Option<Arc<Response>>, CacheVerdict) {
        if self.capacity == 0 {
            self.misses.inc();
            return (None, CacheVerdict::Absent);
        }
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let verdict = match inner.entries.get(key) {
            Some(entry) => match &entry.validity {
                Validity::Always => CacheVerdict::Negative,
                Validity::Watermarks(snap) if snap.still_valid(db) => CacheVerdict::Valid,
                Validity::Watermarks(_) => CacheVerdict::Invalidated,
            },
            None => {
                self.misses.inc();
                return (None, CacheVerdict::Absent);
            }
        };
        if verdict == CacheVerdict::Invalidated {
            inner.entries.remove(key);
            self.misses.inc();
            return (None, verdict);
        }
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(key).expect("checked above");
        entry.last_used = tick;
        self.hits.inc();
        (Some(Arc::clone(&entry.response)), verdict)
    }

    /// Insert a response under `key`, evicting the least-recently-used
    /// entry if at capacity. Returns the shared handle (callers complete
    /// coalesced flights with it). With capacity 0 the response is still
    /// wrapped and returned, just not retained.
    pub fn put(&self, key: &str, validity: Validity, response: Response) -> Arc<Response> {
        let response = Arc::new(response);
        if self.capacity == 0 {
            return response;
        }
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(key) && inner.entries.len() >= self.capacity {
            if let Some(victim) =
                inner.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
                self.evictions.inc();
            }
        }
        inner.entries.insert(
            key.to_string(),
            Entry { validity, last_used: tick, response: Arc::clone(&response) },
        );
        response
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_tsdb::{DataPoint, DbConfig};
    use monster_util::EpochSecs;

    fn resp(body: &str) -> Response {
        Response::bytes(body.as_bytes().to_vec(), "text/plain")
    }

    fn power_point(ts: i64) -> DataPoint {
        DataPoint::new("Power", EpochSecs::new(ts))
            .tag("NodeId", "10.101.1.1")
            .field_f64("Reading", 250.0)
    }

    fn snap(db: &Db, end: i64) -> Validity {
        Validity::Watermarks(ValiditySnapshot::capture(db, ["Power"], end))
    }

    #[test]
    fn open_window_invalidated_by_any_append() {
        let db = Db::new(DbConfig::default());
        db.write(power_point(100)).unwrap();
        let cache = ResponseCache::new(4);
        // Open window: end (1000) is above the watermark (100).
        cache.put("k", snap(&db, 1000), resp("a"));
        assert!(cache.get("k", &db).is_some());
        db.write(power_point(200)).unwrap();
        assert!(cache.get("k", &db).is_none(), "append into the open window must invalidate");
    }

    #[test]
    fn closed_window_survives_in_order_appends() {
        let db = Db::new(DbConfig::default());
        db.write(power_point(500)).unwrap();
        let cache = ResponseCache::new(4);
        // Closed window: end (300) is at/below the watermark (500).
        cache.put("k", snap(&db, 300), resp("a"));
        db.write(power_point(600)).unwrap();
        db.write(power_point(700)).unwrap();
        let hit = cache.get("k", &db).expect("closed window never expires on appends");
        assert_eq!(hit.body, b"a");
    }

    #[test]
    fn closed_window_invalidated_by_backfill() {
        let db = Db::new(DbConfig::default());
        db.write(power_point(500)).unwrap();
        let cache = ResponseCache::new(4);
        cache.put("k", snap(&db, 300), resp("a"));
        // Backfill at ts=100, inside history: rewrites the closed window.
        db.write(power_point(100)).unwrap();
        assert!(cache.get("k", &db).is_none(), "backfill must invalidate closed windows");
    }

    #[test]
    fn unrelated_measurement_writes_do_not_invalidate() {
        let db = Db::new(DbConfig::default());
        db.write(power_point(100)).unwrap();
        let cache = ResponseCache::new(4);
        cache.put("k", snap(&db, 1000), resp("a"));
        db.write(
            DataPoint::new("Thermal", EpochSecs::new(50))
                .tag("NodeId", "10.101.1.1")
                .field_f64("Reading", 40.0),
        )
        .unwrap();
        assert!(cache.get("k", &db).is_some(), "other measurements are irrelevant");
    }

    #[test]
    fn retention_invalidates_watermark_entries_only() {
        let db = Db::new(DbConfig::default());
        db.write(power_point(500)).unwrap();
        let cache = ResponseCache::new(4);
        cache.put("closed", snap(&db, 300), resp("a"));
        cache.put("negative", Validity::Always, resp("bad"));
        db.drop_shards_before(EpochSecs::new(90_000));
        assert!(cache.get("closed", &db).is_none(), "retention drops invalidate watermarks");
        assert!(cache.get("negative", &db).is_some(), "negative entries are data-independent");
    }

    #[test]
    fn negative_entries_valid_across_any_writes() {
        let db = Db::new(DbConfig::default());
        let cache = ResponseCache::new(4);
        cache.put("bad", Validity::Always, resp("nope"));
        db.write(power_point(100)).unwrap();
        db.write(power_point(50)).unwrap();
        assert_eq!(cache.get("bad", &db).unwrap().body, b"nope");
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let db = Db::new(DbConfig::default());
        let cache = ResponseCache::new(2);
        cache.put("a", Validity::Always, resp("a"));
        cache.put("b", Validity::Always, resp("b"));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get("a", &db).is_some());
        cache.put("c", Validity::Always, resp("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a", &db).is_some());
        assert!(cache.get("b", &db).is_none());
        assert!(cache.get("c", &db).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let db = Db::new(DbConfig::default());
        let cache = ResponseCache::new(0);
        let shared = cache.put("k", Validity::Always, resp("a"));
        assert_eq!(shared.body, b"a", "put still returns the shared handle");
        assert!(cache.get("k", &db).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn probe_verdicts_name_the_reason() {
        let db = Db::new(DbConfig::default());
        db.write(power_point(100)).unwrap();
        let cache = ResponseCache::new(4);

        let (resp0, verdict) = cache.probe("k", &db);
        assert!(resp0.is_none());
        assert_eq!(verdict, CacheVerdict::Absent);

        cache.put("k", snap(&db, 1000), resp("a"));
        let (resp1, verdict) = cache.probe("k", &db);
        assert!(resp1.is_some());
        assert_eq!(verdict, CacheVerdict::Valid);

        cache.put("bad", Validity::Always, resp("nope"));
        let (resp2, verdict) = cache.probe("bad", &db);
        assert!(resp2.is_some());
        assert_eq!(verdict, CacheVerdict::Negative);

        // Append into the open window: invalidated, then gone.
        db.write(power_point(200)).unwrap();
        let (resp3, verdict) = cache.probe("k", &db);
        assert!(resp3.is_none());
        assert_eq!(verdict, CacheVerdict::Invalidated);
        assert_eq!(cache.probe("k", &db).1, CacheVerdict::Absent, "invalid entries drop eagerly");
    }

    #[test]
    fn hits_share_one_body_allocation() {
        let db = Db::new(DbConfig::default());
        let cache = ResponseCache::new(4);
        cache.put("k", Validity::Always, resp("shared-body"));
        let a = cache.get("k", &db).unwrap();
        let b = cache.get("k", &db).unwrap();
        // Same Arc<Response>: the body bytes exist exactly once.
        assert!(Arc::ptr_eq(&a, &b));
        // And a per-request clone still shares the body storage.
        let served = (*a).clone();
        assert_eq!(served.body.as_ptr(), a.body.as_ptr());
    }
}
