//! A small versioned response cache for the API service.
//!
//! Entries are keyed by the full request (range, window, aggregation,
//! compression) and stamped with the database's write-batch count at
//! build time; any subsequent write invalidates every cached response, so
//! consumers never see stale data after a collection interval lands.

use monster_http::Response;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Versioned store of pre-built HTTP responses.
pub struct ResponseCache {
    capacity: usize,
    entries: Mutex<HashMap<String, (u64, Response)>>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses (0 disables caching).
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache { capacity, entries: Mutex::new(HashMap::new()) }
    }

    /// Fetch a response cached for `key` at data version `version`.
    pub fn get(&self, key: &str, version: u64) -> Option<Response> {
        let entries = self.entries.lock();
        match entries.get(key) {
            Some((v, resp)) if *v == version => {
                monster_obs::counter("monster_builder_cache_hits_total").inc();
                Some(resp.clone())
            }
            _ => {
                monster_obs::counter("monster_builder_cache_misses_total").inc();
                None
            }
        }
    }

    /// Store a response for `key` at data version `version`.
    pub fn put(&self, key: &str, version: u64, response: Response) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock();
        if entries.len() >= self.capacity && !entries.contains_key(key) {
            // Evict everything from older versions first, then fall back
            // to clearing: the cache is tiny and rebuild is cheap.
            entries.retain(|_, (v, _)| *v == version);
            if entries.len() >= self.capacity {
                entries.clear();
            }
        }
        entries.insert(key.to_string(), (version, response));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_http::{Response, Status};

    fn resp(body: &str) -> Response {
        Response::bytes(body.as_bytes().to_vec(), "text/plain")
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let cache = ResponseCache::new(4);
        assert!(cache.get("k", 1).is_none());
        cache.put("k", 1, resp("a"));
        let hit = cache.get("k", 1).unwrap();
        assert_eq!(hit.status, Status::OK);
        assert_eq!(hit.body, b"a");
        // Same key, newer data version: stale entry is not served.
        assert!(cache.get("k", 2).is_none());
        cache.put("k", 2, resp("b"));
        assert_eq!(cache.get("k", 2).unwrap().body, b"b");
    }

    #[test]
    fn capacity_bounds_entries() {
        let cache = ResponseCache::new(2);
        cache.put("a", 1, resp("a"));
        cache.put("b", 1, resp("b"));
        cache.put("c", 1, resp("c"));
        assert!(cache.get("c", 1).is_some());
        let zero = ResponseCache::new(0);
        zero.put("a", 1, resp("a"));
        assert!(zero.get("a", 1).is_none());
    }
}
