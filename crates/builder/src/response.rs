//! Response encoding: JSON serialization, optional compression
//! (§IV-B4), and simulated transfer cost.

use crate::exec::BuilderOutcome;
use monster_compress::Level;
use monster_sim::{NetModel, VDuration};

/// An encoded API response ready for the wire.
#[derive(Debug, Clone)]
pub struct EncodedResponse {
    /// The body as it would travel (compressed when requested).
    pub body: Vec<u8>,
    /// Size of the uncompressed JSON serialization.
    pub raw_bytes: usize,
    /// Whether `body` is compressed.
    pub compressed: bool,
    /// Simulated time to push `body` across the consumer's network.
    pub transfer_time: VDuration,
}

impl EncodedResponse {
    /// Bytes that actually cross the wire.
    pub fn wire_bytes(&self) -> usize {
        self.body.len()
    }

    /// Compression ratio (wire / raw); 1.0 when uncompressed.
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.body.len() as f64 / self.raw_bytes as f64
        }
    }
}

/// Serialize an outcome's document, optionally compress it, and price the
/// transfer against `net`.
pub fn encode_response(
    outcome: &BuilderOutcome,
    compress: bool,
    level: Level,
    net: &NetModel,
) -> EncodedResponse {
    let json = outcome.document.to_string_compact();
    let raw_bytes = json.len();
    let body = if compress {
        monster_compress::compress(json.as_bytes(), level)
    } else {
        json.into_bytes()
    };
    let transfer_time = net.transfer_cost(body.len() as u64);
    monster_obs::counter("monster_builder_responses_total").inc();
    monster_obs::counter("monster_builder_response_bytes_total").add(body.len() as u64);
    EncodedResponse { body, raw_bytes, compressed: compress, transfer_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_json::jobj;
    use monster_sim::VDuration;
    use monster_tsdb::QueryCost;

    fn outcome() -> BuilderOutcome {
        let doc = jobj! {
            "10.101.1.1" => jobj! {
                "power" => monster_json::Value::Array(
                    (0..200)
                        .map(|i| jobj! { "time" => i * 300, "value" => 250.0 })
                        .collect(),
                ),
            },
        };
        BuilderOutcome {
            document: doc,
            points_out: 200,
            cost: QueryCost::default(),
            query_time: VDuration::ZERO,
            processing_time: VDuration::ZERO,
        }
    }

    #[test]
    fn compression_shrinks_repetitive_documents() {
        let out = outcome();
        let plain = encode_response(&out, false, Level::default(), &NetModel::CAMPUS);
        let packed = encode_response(&out, true, Level::default(), &NetModel::CAMPUS);
        assert!(!plain.compressed);
        assert!(packed.compressed);
        assert_eq!(plain.raw_bytes, packed.raw_bytes);
        assert!(packed.wire_bytes() < plain.wire_bytes() / 2);
        assert!(packed.ratio() < 0.5);
        assert!(packed.transfer_time < plain.transfer_time);
        // Round-trips back to the same JSON.
        let restored = monster_compress::decompress(&packed.body).unwrap();
        assert_eq!(restored, plain.body);
    }
}
