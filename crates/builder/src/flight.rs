//! Request coalescing (single-flight).
//!
//! 10 000 dashboards refreshing the same panel in the same instant are
//! 10 000 identical requests; only one of them needs to touch storage.
//! The first request to [`FlightGroup::join`] a key becomes the **leader**
//! and executes; everyone arriving while the flight is open blocks on its
//! condvar and receives the leader's shared response (`X-Cache:
//! coalesced`). If the leader fails — execution error, panic (via the
//! `Drop` backstop), or an admission rejection it chooses not to share —
//! followers wake with `None` and fall back to executing themselves, so a
//! failed leader never wedges the key.
//!
//! Admission control runs on the *leader only*, after the join: a
//! coalesced burst drains one admission token, not one per request —
//! coalescing is exactly the mechanism that makes the burst cheap.

use monster_http::Response;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One in-flight execution: `None` while pending, `Some(result)` once the
/// leader completes (`result == None` means the leader failed).
#[derive(Default)]
struct Flight {
    state: Mutex<Option<Option<Arc<Response>>>>,
    done: Condvar,
}

type FlightMap = Arc<Mutex<HashMap<String, Arc<Flight>>>>;

/// The per-router registry of open flights.
#[derive(Default)]
pub struct FlightGroup {
    flights: FlightMap,
}

/// The outcome of joining a key.
pub enum Join {
    /// This request leads: execute, then call [`Leader::complete`].
    Leader(Leader),
    /// Another request led. `Some` carries its shared response; `None`
    /// means the leader failed and this request should execute directly.
    Follower(Option<Arc<Response>>),
}

impl FlightGroup {
    /// An empty flight group.
    pub fn new() -> FlightGroup {
        FlightGroup::default()
    }

    /// Join the flight for `key`: lead it if nobody else is, otherwise
    /// block until the leader completes and share its result.
    pub fn join(&self, key: &str) -> Join {
        let flight = {
            let mut map = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            match map.get(key) {
                Some(f) => Arc::clone(f),
                None => {
                    let f = Arc::new(Flight::default());
                    map.insert(key.to_string(), Arc::clone(&f));
                    return Join::Leader(Leader {
                        flights: Arc::clone(&self.flights),
                        key: key.to_string(),
                        flight: f,
                        completed: false,
                    });
                }
            }
        };
        let mut state = flight.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.is_none() {
            state = flight.done.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        Join::Follower(state.clone().expect("loop exits only once set"))
    }

    /// Number of currently open flights (for tests/metrics).
    pub fn open(&self) -> usize {
        self.flights.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// The leader's completion handle. Dropping it without calling
/// [`Leader::complete`] (an early return or panic on the execution path)
/// completes the flight with `None`, releasing followers to execute
/// themselves.
pub struct Leader {
    flights: FlightMap,
    key: String,
    flight: Arc<Flight>,
    completed: bool,
}

impl Leader {
    /// Publish the flight's result to every waiting follower and close
    /// the flight. `None` tells followers to execute directly.
    pub fn complete(mut self, result: Option<Arc<Response>>) {
        self.finish(result);
    }

    fn finish(&mut self, result: Option<Arc<Response>>) {
        if self.completed {
            return;
        }
        self.completed = true;
        // Remove the key first: requests arriving from here on start a new
        // flight instead of piling onto a finished one.
        self.flights.lock().unwrap_or_else(|e| e.into_inner()).remove(&self.key);
        let mut state = self.flight.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = Some(result);
        self.flight.done.notify_all();
    }
}

impl Drop for Leader {
    fn drop(&mut self) {
        self.finish(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_http::Response as Resp;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn resp(body: &str) -> Arc<Resp> {
        Arc::new(Resp::bytes(body.as_bytes().to_vec(), "text/plain"))
    }

    #[test]
    fn first_join_leads_later_joins_follow() {
        let group = Arc::new(FlightGroup::new());
        let leader = match group.join("k") {
            Join::Leader(l) => l,
            Join::Follower(_) => panic!("first join must lead"),
        };
        assert_eq!(group.open(), 1);

        let executions = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let group = Arc::clone(&group);
            let executions = Arc::clone(&executions);
            handles.push(thread::spawn(move || match group.join("k") {
                Join::Leader(_) => {
                    executions.fetch_add(1, Ordering::SeqCst);
                    String::new()
                }
                Join::Follower(Some(shared)) => String::from_utf8(shared.body.to_vec()).unwrap(),
                Join::Follower(None) => panic!("leader completed successfully"),
            }));
        }
        // Give the followers a moment to park, then publish.
        thread::sleep(std::time::Duration::from_millis(20));
        leader.complete(Some(resp("the-answer")));
        for h in handles {
            assert_eq!(h.join().unwrap(), "the-answer");
        }
        assert_eq!(executions.load(Ordering::SeqCst), 0, "nobody re-executed");
        assert_eq!(group.open(), 0, "flight closed");
    }

    #[test]
    fn dropped_leader_releases_followers_to_execute() {
        let group = Arc::new(FlightGroup::new());
        let leader = match group.join("k") {
            Join::Leader(l) => l,
            Join::Follower(_) => panic!("first join must lead"),
        };
        let follower = {
            let group = Arc::clone(&group);
            thread::spawn(move || match group.join("k") {
                Join::Follower(result) => result.is_none(),
                Join::Leader(_) => false,
            })
        };
        thread::sleep(std::time::Duration::from_millis(20));
        drop(leader); // early return / panic path
        assert!(follower.join().unwrap(), "follower must get None and self-serve");
        // The key is free again: the next join leads.
        assert!(matches!(group.join("k"), Join::Leader(_)));
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let group = FlightGroup::new();
        let a = match group.join("a") {
            Join::Leader(l) => l,
            Join::Follower(_) => panic!(),
        };
        let b = match group.join("b") {
            Join::Leader(l) => l,
            Join::Follower(_) => panic!(),
        };
        assert_eq!(group.open(), 2);
        a.complete(Some(resp("a")));
        b.complete(None);
        assert_eq!(group.open(), 0);
    }
}
